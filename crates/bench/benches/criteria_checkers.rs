//! Bench F2/A3 — consistency-criteria checkers: the naive O(n²) vs sorted
//! O(n log n) Strong-Prefix checkers (ablation A3), plus the liveness
//! checkers, across history sizes.

use btadt_core::chain::Blockchain;
use btadt_core::criteria::{eventual_prefix, ever_growing_tree, strong_prefix, LivenessMode};
use btadt_core::history::{History, Invocation, Response};
use btadt_core::ids::{splitmix64_at, BlockId, ProcessId, Time};
use btadt_core::score::LengthScore;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// A history of `n` reads over a linear chain (comparable: SP holds).
fn linear_history(n: u64) -> History {
    let mut h = History::new();
    for i in 0..n {
        let len = (i / 2 + 1) as u32;
        let chain = Blockchain::from_ids((0..=len).map(BlockId).collect());
        h.push_complete(
            ProcessId((i % 4) as u32),
            Invocation::Read,
            Time(i * 10),
            Response::Chain(chain),
            Time(i * 10 + 1),
        );
    }
    h
}

/// A history of `n` reads over two diverging branches (SP fails late).
fn forked_history(n: u64, seed: u64) -> History {
    let mut h = History::new();
    for i in 0..n {
        let len = (i / 2 + 1) as u32;
        let branch = splitmix64_at(seed, i) % 2;
        let mut ids = vec![BlockId::GENESIS];
        // Branch blocks: even ids for branch 0, odd for branch 1.
        for d in 1..=len {
            ids.push(BlockId(d * 2 + branch as u32));
        }
        h.push_complete(
            ProcessId((i % 4) as u32),
            Invocation::Read,
            Time(i * 10),
            Response::Chain(Blockchain::from_ids(ids)),
            Time(i * 10 + 1),
        );
    }
    h
}

fn bench_strong_prefix(c: &mut Criterion) {
    let mut g = c.benchmark_group("criteria/strong_prefix");
    for &n in &[50u64, 200, 800] {
        let linear = linear_history(n);
        let forked = forked_history(n, 7);
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("sorted/linear", n), &linear, |b, h| {
            b.iter(|| black_box(strong_prefix::check(h).holds));
        });
        g.bench_with_input(BenchmarkId::new("naive/linear", n), &linear, |b, h| {
            b.iter(|| black_box(strong_prefix::check_naive(h).holds));
        });
        g.bench_with_input(BenchmarkId::new("sorted/forked", n), &forked, |b, h| {
            b.iter(|| black_box(strong_prefix::check(h).holds));
        });
        g.bench_with_input(BenchmarkId::new("naive/forked", n), &forked, |b, h| {
            b.iter(|| black_box(strong_prefix::check_naive(h).holds));
        });
    }
    g.finish();
}

fn bench_liveness_checkers(c: &mut Criterion) {
    let mut g = c.benchmark_group("criteria/liveness");
    for &n in &[200u64, 800] {
        let h = linear_history(n);
        let cut = LivenessMode::ConvergenceCut(Time(n * 5));
        g.bench_with_input(BenchmarkId::new("ever_growing_tree", n), &h, |b, h| {
            b.iter(|| black_box(ever_growing_tree::check(h, &LengthScore, cut).holds));
        });
        g.bench_with_input(BenchmarkId::new("eventual_prefix", n), &h, |b, h| {
            b.iter(|| black_box(eventual_prefix::check(h, &LengthScore, cut).holds));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_strong_prefix, bench_liveness_checkers);
criterion_main!(benches);
