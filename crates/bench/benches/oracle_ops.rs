//! Bench F5/F6 — token-oracle operations: tape evaluation, getToken /
//! consumeToken across fork bounds, and the refined append.

use btadt_core::block::Payload;
use btadt_core::ids::{BlockId, ProcessId};
use btadt_core::selection::LongestChain;
use btadt_core::validity::AcceptAll;
use btadt_oracle::{Merits, RefinedBlockTree, Tape, ThetaOracle};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_tape(c: &mut Criterion) {
    let mut g = c.benchmark_group("oracle/tape");
    let tape = Tape::new(0xFEED, 0.3);
    g.throughput(Throughput::Elements(1));
    g.bench_function("cell_at", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(tape.cell_at(i).is_token())
        });
    });
    g.bench_function("pop", |b| {
        let mut t = Tape::new(1, 0.3);
        b.iter(|| black_box(t.pop().is_token()));
    });
    g.finish();
}

fn bench_token_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("oracle/get_consume_cycle");
    for (label, k) in [("k1", Some(1u32)), ("k4", Some(4)), ("prodigal", None)] {
        g.bench_function(label, |b| {
            let merits = Merits::uniform(4);
            let mut oracle = match k {
                Some(k) => ThetaOracle::frugal(k, merits, 4.0, 9),
                None => ThetaOracle::prodigal(merits, 4.0, 9),
            };
            let mut parent = 0u32;
            b.iter(|| {
                parent += 1;
                // Fresh parent every iteration so K never saturates.
                let p = BlockId(parent);
                if let Some(grant) = oracle.get_token((parent % 4) as usize, p) {
                    black_box(
                        oracle
                            .consume_token(&grant, BlockId(parent + 1_000_000))
                            .len(),
                    );
                }
            });
        });
    }
    g.finish();
}

fn bench_refined_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("oracle/refined_append");
    for &n in &[100u64, 1_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let oracle = ThetaOracle::frugal(1, Merits::uniform(4), 4.0, 11);
                let mut tree = RefinedBlockTree::new(LongestChain, AcceptAll, oracle);
                for i in 0..n {
                    black_box(
                        tree.append(ProcessId((i % 4) as u32), Payload::Empty)
                            .succeeded(),
                    );
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tape, bench_token_cycle, bench_refined_append);
criterion_main!(benches);
