//! Bench A1/A2 — the design-choice ablations DESIGN.md calls out:
//!
//! * A1 — fork pressure vs the oracle bound `k` and operation latency
//!   (how much synchronization the frugal oracle buys);
//! * A2 — longest-chain vs GHOST selection under fork pressure
//!   (what the Ethereum rule buys at high block rates).

use btadt_core::criteria::{check_strong_consistency, ConsistencyParams, LivenessMode};
use btadt_core::score::LengthScore;
use btadt_core::validity::AcceptAll;
use btadt_oracle::{run_workload, Merits, ThetaOracle, WorkloadConfig};
use btadt_protocols::{bitcoin, ethereum};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_a1_k_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_a1/k_sweep");
    g.sample_size(15);
    for (label, k) in [
        ("k1", Some(1u32)),
        ("k2", Some(2)),
        ("k4", Some(4)),
        ("prodigal", None),
    ] {
        for &latency in &[2u64, 8] {
            g.bench_with_input(
                BenchmarkId::new(label, latency),
                &(k, latency),
                |b, &(k, latency)| {
                    b.iter(|| {
                        let merits = Merits::uniform(4);
                        let oracle = match k {
                            Some(k) => ThetaOracle::frugal(k, merits, 2.0, 3),
                            None => ThetaOracle::prodigal(merits, 2.0, 3),
                        };
                        let out = run_workload(
                            oracle,
                            &WorkloadConfig {
                                max_latency: latency,
                                seed: 3,
                                ..Default::default()
                            },
                        );
                        let params = ConsistencyParams {
                            store: &out.store,
                            predicate: &AcceptAll,
                            score: &LengthScore,
                            liveness: LivenessMode::ConvergenceCut(out.suggested_cut),
                        };
                        black_box((
                            out.fork_points,
                            check_strong_consistency(&out.history, &params).holds(),
                        ))
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_a2_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_a2/selection");
    g.sample_size(10);
    for &rate in &[0.6f64, 1.2] {
        g.bench_with_input(
            BenchmarkId::new("longest", format!("r{rate}")),
            &rate,
            |b, &rate| {
                b.iter(|| {
                    let run = bitcoin::run(&bitcoin::BitcoinConfig {
                        rate,
                        seed: 4,
                        ..Default::default()
                    });
                    black_box((run.blocks_minted, run.max_fork_degree))
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("ghost", format!("r{rate}")),
            &rate,
            |b, &rate| {
                b.iter(|| {
                    let run = ethereum::run(&ethereum::EthereumConfig {
                        rate,
                        seed: 4,
                        ..Default::default()
                    });
                    black_box((run.blocks_minted, run.max_fork_degree))
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_a1_k_sweep, bench_a2_selection);
criterion_main!(benches);
