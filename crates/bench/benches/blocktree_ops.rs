//! Bench F1 — BlockTree primitive operations (the substrate behind the
//! Fig. 1 transition system): append, read, graft, ancestor queries, and
//! prefix tests as the tree grows.

use btadt_core::blocktree::{BlockTree, CandidateBlock};
use btadt_core::chain::Blockchain;
use btadt_core::ids::{BlockId, ProcessId};
use btadt_core::selection::{Ghost, HeaviestWork, LongestChain, SelectionFn};
use btadt_core::store::{BlockStore, TreeMembership};
use btadt_core::validity::AcceptAll;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn linear_tree(n: u64) -> BlockTree<LongestChain, AcceptAll> {
    let mut bt = BlockTree::new(LongestChain, AcceptAll);
    for i in 0..n {
        bt.append(CandidateBlock::simple(ProcessId(0), i));
    }
    bt
}

/// A store with a comb shape: a trunk of length n with a fork at every
/// vertex (worst-ish case for leaves/selection scans).
fn comb_store(n: u32) -> (BlockStore, TreeMembership) {
    use btadt_core::block::Payload;
    let mut s = BlockStore::new();
    let mut trunk = BlockId::GENESIS;
    for i in 0..n {
        let next = s.mint(trunk, ProcessId(0), 0, 1, i as u64 * 2, Payload::Empty);
        s.mint(trunk, ProcessId(1), 1, 1, i as u64 * 2 + 1, Payload::Empty);
        trunk = next;
    }
    let m = TreeMembership::full(&s);
    (s, m)
}

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("blocktree/append");
    for &n in &[100u64, 1_000, 10_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(linear_tree(n).len()));
        });
    }
    g.finish();
}

fn bench_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("blocktree/read");
    for &n in &[100u64, 1_000, 10_000] {
        let bt = linear_tree(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &bt, |b, bt| {
            b.iter(|| black_box(bt.read().len()));
        });
    }
    g.finish();
}

fn bench_selection_functions(c: &mut Criterion) {
    let mut g = c.benchmark_group("blocktree/selection");
    let (store, members) = comb_store(500);
    let fns: Vec<(&str, Box<dyn SelectionFn>)> = vec![
        ("longest", Box::new(LongestChain)),
        ("heaviest", Box::new(HeaviestWork)),
        ("ghost", Box::new(Ghost::default())),
    ];
    for (name, f) in &fns {
        g.bench_function(*name, |b| {
            b.iter(|| black_box(f.select_tip(&store, &members)));
        });
    }
    g.finish();
}

/// The F1 headline: an append+read loop (the canonical BT-ADT client) at
/// 10k/100k blocks, incremental selection cache vs the full Def. 3.1
/// rescan (`selected_tip_full_scan` + `Blockchain::from_tip`, the seed's
/// original read path). The acceptance bar for the incremental refactor
/// is ≥10x at 100k.
fn bench_append_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("blocktree/append_read");
    g.sample_size(10);
    for &n in &[10_000u64, 100_000] {
        g.throughput(Throughput::Elements(2 * n)); // one append + one read per block
        g.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, &n| {
            b.iter(|| black_box(btadt_bench::append_read_incremental(n)));
        });
        g.bench_with_input(BenchmarkId::new("full_scan", n), &n, |b, &n| {
            b.iter(|| black_box(btadt_bench::append_read_full_scan(n)));
        });
    }
    g.finish();
}

/// The two-stage drain's scoring step in isolation: fold a fork-heavy
/// 64-insert batch through the serial per-insert `on_insert` path vs the
/// partition→shard-score→merge→apply batched path (`batch_score`), per
/// rule. The batched path is what stage 1 runs under the selection lock,
/// so its margin here is critical-section time saved per drain.
fn bench_batch_scoring(c: &mut Criterion) {
    use btadt_core::selection::{batch_score, SelectionAux, TipUpdate};

    let mut g = c.benchmark_group("blocktree/batch_score");
    let (store, members) = comb_store(500);
    // The batch: the last 32 comb teeth (trunk + fork per vertex) — 64
    // blocks spread across two subtrees with interleaved parents.
    let n = store.len() as u32;
    let batch: Vec<BlockId> = (n - 64..n).map(BlockId).collect();
    let tip_before = BlockId(n - 65);
    let fns: Vec<(&str, Box<dyn SelectionFn>)> = vec![
        ("longest", Box::new(LongestChain)),
        ("heaviest", Box::new(HeaviestWork)),
        ("ghost", Box::new(Ghost::default())),
    ];
    for (name, f) in &fns {
        // Warm auxes outside the timed loop: both paths measure steady
        // state, not the one-off full rebuild.
        let mut serial_aux = SelectionAux::new();
        let mut t = tip_before;
        for &id in &batch {
            match f.on_insert(&store, &members, &mut serial_aux, id, t) {
                TipUpdate::Unchanged => {}
                TipUpdate::Extended(nt) | TipUpdate::Switched(nt) => t = nt,
            }
        }
        let mut batched_aux = serial_aux.clone();
        g.bench_function(BenchmarkId::new("serial_fold", name), |b| {
            b.iter(|| {
                let mut t = tip_before;
                for &id in &batch {
                    match f.on_insert(&store, &members, &mut serial_aux, id, t) {
                        TipUpdate::Unchanged => {}
                        TipUpdate::Extended(nt) | TipUpdate::Switched(nt) => t = nt,
                    }
                }
                black_box(t)
            });
        });
        g.bench_function(BenchmarkId::new("batched", name), |b| {
            b.iter(|| {
                black_box(batch_score(
                    f.as_ref(),
                    &store,
                    &members,
                    &mut batched_aux,
                    &batch,
                    tip_before,
                ))
            });
        });
    }
    g.finish();
}

fn bench_ancestry(c: &mut Criterion) {
    let mut g = c.benchmark_group("blocktree/ancestry");
    let bt = linear_tree(10_000);
    let store = bt.store();
    let tip = bt.selected_tip();
    g.bench_function("is_ancestor_depth_10k", |b| {
        b.iter(|| black_box(store.is_ancestor(BlockId(1), tip)));
    });
    g.bench_function("common_ancestor_depth_10k", |b| {
        b.iter(|| black_box(store.common_ancestor(tip, BlockId(5_000))));
    });
    let chain_a = Blockchain::from_tip(store, tip);
    let chain_b = Blockchain::from_tip(store, BlockId(9_000));
    g.bench_function("prefix_test_len_10k", |b| {
        b.iter(|| black_box(chain_b.is_prefix_of(&chain_a)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_append,
    bench_read,
    bench_selection_functions,
    bench_append_read,
    bench_batch_scoring,
    bench_ancestry
);
criterion_main!(benches);
