//! Bench F13/F14 — the message-passing substrate: simulation throughput
//! vs process count and synchrony model, plus the trace checkers
//! (Update Agreement, LRC) on grown traces.

use btadt_core::selection::LongestChain;
use btadt_oracle::{Merits, ThetaOracle};
use btadt_sim::{check_lrc, check_update_agreement, NetworkModel, SimpleMiner, Synchrony, World};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn gossip_world(n: usize, net: NetworkModel, seed: u64) -> World<SimpleMiner> {
    let oracle = ThetaOracle::prodigal(Merits::uniform(n), 0.5, seed);
    let miners = (0..n).map(|_| SimpleMiner::gossiping()).collect();
    World::new(miners, oracle, net, Box::new(LongestChain), seed)
}

fn bench_ticks(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/ticks");
    g.sample_size(20);
    for &n in &[4usize, 8, 16] {
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("synchronous", n), &n, |b, &n| {
            b.iter(|| {
                let mut w = gossip_world(n, NetworkModel::synchronous(3, 1), 1);
                w.run_ticks(100);
                black_box(w.store.len())
            });
        });
        g.bench_with_input(BenchmarkId::new("asynchronous", n), &n, |b, &n| {
            b.iter(|| {
                let mut w = gossip_world(
                    n,
                    NetworkModel::new(Synchrony::Asynchronous { max: 12 }, 1),
                    1,
                );
                w.run_ticks(100);
                black_box(w.store.len())
            });
        });
    }
    g.finish();
}

fn bench_trace_checkers(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/trace_checkers");
    let mut w = gossip_world(8, NetworkModel::synchronous(3, 2), 2);
    w.read_every = Some(4);
    w.run_ticks(200);
    let correct = w.correct_mask();
    g.bench_function("update_agreement", |b| {
        b.iter(|| black_box(check_update_agreement(&w.trace, &w.store, &correct).holds()));
    });
    g.bench_function("lrc", |b| {
        b.iter(|| black_box(check_lrc(&w.trace, &correct).holds()));
    });
    g.finish();
}

criterion_group!(benches, bench_ticks, bench_trace_checkers);
criterion_main!(benches);
