//! Bench F8 — hierarchy sampling: generating one refined workload history
//! and classifying it, per oracle model (the unit of the Fig. 8
//! empirical-inclusion experiment).

use btadt_core::criteria::{classify, ConsistencyParams, LivenessMode};
use btadt_core::score::LengthScore;
use btadt_core::validity::AcceptAll;
use btadt_oracle::{run_workload, Merits, ThetaOracle, WorkloadConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_generate_and_classify(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy/generate_classify");
    g.sample_size(20);
    for (label, k) in [("k1", Some(1u32)), ("k2", Some(2)), ("prodigal", None)] {
        for &steps in &[200u64, 600] {
            g.bench_with_input(
                BenchmarkId::new(label, steps),
                &(k, steps),
                |b, &(k, steps)| {
                    b.iter(|| {
                        let merits = Merits::uniform(4);
                        let oracle = match k {
                            Some(k) => ThetaOracle::frugal(k, merits, 2.0, 5),
                            None => ThetaOracle::prodigal(merits, 2.0, 5),
                        };
                        let out = run_workload(
                            oracle,
                            &WorkloadConfig {
                                steps,
                                seed: 5,
                                ..Default::default()
                            },
                        );
                        let params = ConsistencyParams {
                            store: &out.store,
                            predicate: &AcceptAll,
                            score: &LengthScore,
                            liveness: LivenessMode::ConvergenceCut(out.suggested_cut),
                        };
                        black_box(classify(&out.history, &params))
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_generate_and_classify);
criterion_main!(benches);
