//! Bench F11 — Protocol A (Fig. 11): wait-free consensus from Θ_F,k=1,
//! latency vs proposer count, against the CAS-consensus baseline.

use btadt_oracle::{Merits, SharedOracle, ThetaOracle};
use btadt_registers::{run_trial, CasConsensus, OracleConsensus};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_protocol_a(c: &mut Criterion) {
    let mut g = c.benchmark_group("consensus/protocol_a");
    g.sample_size(20);
    for &n in &[2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let oracle = ThetaOracle::frugal(1, Merits::uniform(n), n as f64 * 0.8, n as u64);
                let consensus = OracleConsensus::new(SharedOracle::new(oracle));
                let report = run_trial(&consensus, n);
                assert!(report.agreement());
                black_box(report.decided())
            });
        });
    }
    g.finish();
}

fn bench_cas_consensus_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("consensus/cas_baseline");
    g.sample_size(20);
    for &n in &[2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let consensus = CasConsensus::new();
                let report = run_trial(&consensus, n);
                assert!(report.agreement());
                black_box(report.decided())
            });
        });
    }
    g.finish();
}

fn bench_token_grant_probability(c: &mut Criterion) {
    // How the getToken loop length scales with per-attempt probability:
    // the oracle-side cost model of Protocol A's termination argument.
    let mut g = c.benchmark_group("consensus/token_loop");
    for &rate in &[0.1f64, 0.5, 0.9] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("p{rate}")),
            &rate,
            |b, &rate| {
                b.iter(|| {
                    let mut oracle = ThetaOracle::frugal(1, Merits::uniform(1), rate, 0xDEAD);
                    let mut tries = 0u64;
                    loop {
                        tries += 1;
                        if oracle
                            .get_token(0, btadt_core::ids::BlockId::GENESIS)
                            .is_some()
                        {
                            break;
                        }
                    }
                    black_box(tries)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_protocol_a,
    bench_cas_consensus_baseline,
    bench_token_grant_probability
);
criterion_main!(benches);
