//! Bench F12 — the wait-free Atomic Snapshot behind the prodigal
//! consumeToken (Fig. 12): update/scan cost vs component count and under
//! concurrent writers.

use btadt_registers::{AtomicSnapshot, ProdigalCtCell};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_sequential_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot/sequential");
    for &n in &[4usize, 16, 64] {
        let snap = AtomicSnapshot::new(n, 0u64);
        g.bench_with_input(BenchmarkId::new("scan", n), &snap, |b, snap| {
            b.iter(|| black_box(snap.scan().len()));
        });
        g.bench_with_input(BenchmarkId::new("update", n), &snap, |b, snap| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                snap.update((i % n as u64) as usize, i);
            });
        });
    }
    g.finish();
}

fn bench_contended_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot/contended_scan");
    g.sample_size(20);
    for &writers in &[1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(writers),
            &writers,
            |b, &writers| {
                b.iter(|| {
                    let snap = Arc::new(AtomicSnapshot::new(8, 0u64));
                    std::thread::scope(|s| {
                        for w in 0..writers {
                            let snap = Arc::clone(&snap);
                            s.spawn(move || {
                                for i in 1..=200u64 {
                                    snap.update(w, i);
                                }
                            });
                        }
                        let snap = Arc::clone(&snap);
                        s.spawn(move || {
                            for _ in 0..200 {
                                black_box(snap.scan().len());
                            }
                        });
                    });
                });
            },
        );
    }
    g.finish();
}

fn bench_prodigal_ct(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot/prodigal_ct");
    g.sample_size(30);
    for &n in &[4usize, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let cell = Arc::new(ProdigalCtCell::new(n));
                std::thread::scope(|s| {
                    for m in 0..n {
                        let cell = Arc::clone(&cell);
                        s.spawn(move || {
                            black_box(cell.consume_token(m, m as u64 + 1).len());
                        });
                    }
                });
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_sequential_ops,
    bench_contended_scan,
    bench_prodigal_ct
);
criterion_main!(benches);
