//! Bench T1 — the Table-1 system models: full classified run per system
//! (the unit of the Table-1 experiment).

use btadt_protocols::{algorand, bitcoin, byzcoin, ethereum, hyperledger, peercensus, redbelly};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_systems(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocols/full_run");
    g.sample_size(10);
    g.bench_function("bitcoin", |b| {
        b.iter(|| {
            let run = bitcoin::run(&bitcoin::BitcoinConfig::default());
            black_box(run.consistency_class())
        });
    });
    g.bench_function("ethereum", |b| {
        b.iter(|| {
            let run = ethereum::run(&ethereum::EthereumConfig::default());
            black_box(run.consistency_class())
        });
    });
    g.bench_function("algorand", |b| {
        b.iter(|| {
            let run = algorand::run(&algorand::AlgorandConfig::default());
            black_box(run.consistency_class())
        });
    });
    g.bench_function("byzcoin", |b| {
        b.iter(|| {
            let run = byzcoin::run(&byzcoin::ByzCoinConfig::default());
            black_box(run.consistency_class())
        });
    });
    g.bench_function("peercensus", |b| {
        b.iter(|| {
            let run = peercensus::run(&peercensus::PeerCensusConfig::default());
            black_box(run.consistency_class())
        });
    });
    g.bench_function("redbelly", |b| {
        b.iter(|| {
            let run = redbelly::run(&redbelly::RedBellyConfig::default());
            black_box(run.consistency_class())
        });
    });
    g.bench_function("hyperledger", |b| {
        b.iter(|| {
            let run = hyperledger::run(&hyperledger::FabricConfig::default());
            black_box(run.consistency_class())
        });
    });
    g.finish();
}

fn bench_security_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocols/peercensus_security");
    g.bench_function("monte_carlo_2k_trials", |b| {
        b.iter(|| black_box(peercensus::secure_state_probability(0.25, 30, 10, 2_000, 7)));
    });
    g.finish();
}

criterion_group!(benches, bench_systems, bench_security_analysis);
criterion_main!(benches);
