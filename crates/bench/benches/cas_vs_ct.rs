//! Bench F9/F10 — the Fig. 9 objects under real contention: native CAS,
//! the k = 1 consumeToken cell, and the Fig. 10 CAS-from-CT reduction.

use btadt_registers::{CasFromCt, CasRegister, ConsumeTokenCell, EMPTY};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn race_cas(threads: usize) -> u64 {
    let cell = Arc::new(CasRegister::new(EMPTY));
    std::thread::scope(|s| {
        for v in 1..=threads as u64 {
            let cell = Arc::clone(&cell);
            s.spawn(move || {
                black_box(cell.compare_and_swap(EMPTY, v));
            });
        }
    });
    cell.read()
}

fn race_ct(threads: usize) -> u64 {
    let cell = Arc::new(ConsumeTokenCell::new());
    std::thread::scope(|s| {
        for v in 1..=threads as u64 {
            let cell = Arc::clone(&cell);
            s.spawn(move || {
                black_box(cell.consume_token(v));
            });
        }
    });
    cell.get()
}

fn race_reduced(threads: usize) -> u64 {
    let cell = Arc::new(CasFromCt::new());
    std::thread::scope(|s| {
        for v in 1..=threads as u64 {
            let cell = Arc::clone(&cell);
            s.spawn(move || {
                black_box(cell.compare_and_swap_from_empty(v));
            });
        }
    });
    cell.read()
}

fn bench_one_shot_race(c: &mut Criterion) {
    let mut g = c.benchmark_group("registers/one_shot_race");
    g.sample_size(30);
    for &threads in &[2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("cas", threads), &threads, |b, &t| {
            b.iter(|| black_box(race_cas(t)));
        });
        g.bench_with_input(BenchmarkId::new("ct", threads), &threads, |b, &t| {
            b.iter(|| black_box(race_ct(t)));
        });
        g.bench_with_input(
            BenchmarkId::new("cas_from_ct", threads),
            &threads,
            |b, &t| {
                b.iter(|| black_box(race_reduced(t)));
            },
        );
    }
    g.finish();
}

fn bench_uncontended_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("registers/uncontended");
    g.bench_function("cas_fail_path", |b| {
        let cell = CasRegister::new(7);
        b.iter(|| black_box(cell.compare_and_swap(EMPTY, 9)));
    });
    g.bench_function("ct_occupied_path", |b| {
        let cell = ConsumeTokenCell::new();
        cell.consume_token(7);
        b.iter(|| black_box(cell.consume_token(9)));
    });
    g.finish();
}

criterion_group!(benches, bench_one_shot_race, bench_uncontended_ops);
criterion_main!(benches);
