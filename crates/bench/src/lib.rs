//! Experiment drivers regenerating every figure and table of
//! *Blockchain Abstract Data Type* as text output (see EXPERIMENTS.md for
//! the recorded results). Each `fig*`/`table*` function prints one
//! artifact; the `experiments` binary dispatches on names.

use btadt_core::adt::{check_sequential_history, AbstractDataType, Operation};
use btadt_core::blocktree::{BlockTreeAdt, BtInput, BtOutput, CandidateBlock};
use btadt_core::chain::Blockchain;
use btadt_core::criteria::{
    check_eventual_consistency, check_strong_consistency, ConsistencyParams, LivenessMode,
};
use btadt_core::hierarchy::{figure8_edges, figure_nodes};
use btadt_core::history::{History, Invocation, Response};
use btadt_core::ids::{BlockId, ProcessId, Time};
use btadt_core::score::LengthScore;
use btadt_core::selection::LongestChain;
use btadt_core::store::BlockStore;
use btadt_core::validity::{AcceptAll, DigestPrefix};
use btadt_oracle::{
    run_workload, KBound, Merits, RefinedBlockTree, SharedOracle, ThetaOracle, WorkloadConfig,
};
use btadt_registers::adversary::{divergent_schedule, PickRule};
use btadt_registers::{
    run_trial, CasFromCt, CasRegister, ConsumeTokenCell, OracleConsensus, ProdigalCtCell, EMPTY,
};
use btadt_sim::{
    check_lrc, check_update_agreement, lemma_4_4, lemma_4_5, theorem_4_8, update_agreement_positive,
};
use std::time::Instant;

const SEED: u64 = 0xB10C;

fn hr(title: &str) {
    println!("\n──────────────────────────────────────────────────────────────");
    println!("{title}");
    println!("──────────────────────────────────────────────────────────────");
}

/// Fig. 1 — a path of the BT-ADT transition system.
pub fn fig1() {
    hr("Figure 1 — BT-ADT transition system path (Def. 3.1)");
    let adt = BlockTreeAdt::new(LongestChain, DigestPrefix { zero_bits: 1 });
    // Digests commit to ancestry, so candidate validity depends on the
    // state a block is appended in: probe each step against the *current*
    // state while building the path.
    let probe = |state: &<BlockTreeAdt<LongestChain, DigestPrefix> as AbstractDataType>::State,
                 want: bool| {
        (0..256u64)
            .find(|&nonce| {
                let cand = CandidateBlock::simple(ProcessId(0), nonce);
                adt.output(state, &BtInput::Append(cand)) == BtOutput::Appended(want)
            })
            .expect("a 1-bit digest condition flips within 256 nonces")
    };
    let s0 = adt.initial_state();
    let b1 = probe(&s0, true);
    let s1 = adt.transition(
        &s0,
        &BtInput::Append(CandidateBlock::simple(ProcessId(0), b1)),
    );
    // Both the failing and the second successful append execute in ξ1.
    let b3 = probe(&s1, false);
    let b2 = probe(&s1, true);
    let word = vec![
        Operation::with_output(
            BtInput::Append(CandidateBlock::simple(ProcessId(0), b1)),
            BtOutput::Appended(true),
        ),
        Operation::with_output(
            BtInput::Append(CandidateBlock::simple(ProcessId(0), b3)),
            BtOutput::Appended(false),
        ),
        Operation::input_only(BtInput::Read),
        Operation::with_output(
            BtInput::Append(CandidateBlock::simple(ProcessId(0), b2)),
            BtOutput::Appended(true),
        ),
        Operation::input_only(BtInput::Read),
    ];
    let states = check_sequential_history(&adt, &word).expect("path is in L(T)");
    let labels = [
        format!("append(b1)/true   (nonce {b1}, b1 ∈ B')"),
        format!("append(b3)/false  (nonce {b3}, b3 ∉ B')"),
        "read()/b0⌢b1".to_string(),
        format!("append(b2)/true   (nonce {b2}, b2 ∈ B')"),
        "read()/b0⌢b1⌢b2".to_string(),
    ];
    for (i, label) in labels.iter().enumerate() {
        println!(
            "ξ{i} (|bt| = {}) ── {label} ──▶ ξ{} (|bt| = {})",
            states[i].tree().len(),
            i + 1,
            states[i + 1].tree().len()
        );
    }
    println!("\nword ∈ L(BT-ADT): ✓  (replayed by check_sequential_history)");
}

fn render_reads(history: &History, cut: Time) {
    println!(
        "{:<6} {:<5} {:>10} {:>7}  chain",
        "op", "proc", "responded", "score"
    );
    for v in history.read_views(&LengthScore) {
        let marker = if v.responded_at <= cut { " " } else { "*" };
        let chain = format!("{}", v.chain);
        let chain: String = if chain.chars().count() > 42 {
            let tail: String = chain
                .chars()
                .rev()
                .take(41)
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            format!("…{tail}")
        } else {
            chain
        };
        println!(
            "{:<6} {:<5} {:>10} {:>7}{marker} {chain}",
            format!("{:?}", v.op),
            format!("{}", v.process),
            format!("{}", v.responded_at),
            v.score
        );
    }
    println!("(* = after the convergence cut {cut})");
}

/// Fig. 2 — a concurrent history satisfying BT Strong Consistency.
pub fn fig2() {
    hr("Figure 2 — SC-admissible history (Θ_F,k=1 workload)");
    let oracle = ThetaOracle::frugal(1, Merits::uniform(2), 2.0, SEED);
    let out = run_workload(
        oracle,
        &WorkloadConfig {
            processes: 2,
            steps: 60,
            append_prob: 0.4,
            read_prob: 0.3,
            max_latency: 4,
            seed: SEED,
        },
    );
    render_reads(&out.history, out.suggested_cut);
    let params = ConsistencyParams {
        store: &out.store,
        predicate: &AcceptAll,
        score: &LengthScore,
        liveness: LivenessMode::ConvergenceCut(out.suggested_cut),
    };
    println!("\n{}", check_strong_consistency(&out.history, &params));
}

/// The paper's literal Fig. 3 / Fig. 4 histories.
fn paper_history(converging: bool) -> (BlockStore, History) {
    use btadt_core::block::Payload;
    let mut store = BlockStore::new();
    // odd branch 1-3-5, even branch 2-4-6 (the paper's vertex labels).
    let mut odd = vec![BlockId::GENESIS];
    let mut even = vec![BlockId::GENESIS];
    for i in 0..3 {
        odd.push(store.mint(
            *odd.last().unwrap(),
            ProcessId(1),
            1,
            1,
            100 + i,
            Payload::Empty,
        ));
        even.push(store.mint(
            *even.last().unwrap(),
            ProcessId(0),
            0,
            1,
            200 + i,
            Payload::Empty,
        ));
    }
    let mut h = History::new();
    let mut t = 0u64;
    for i in 1..=3 {
        for &b in &[odd[i], even[i]] {
            t += 2;
            h.push_complete(
                ProcessId(9),
                Invocation::Append { block: b },
                Time(t - 1),
                Response::Appended(true),
                Time(t),
            );
        }
    }
    let read = |h: &mut History, p: u32, t0: u64, ids: &[BlockId], n: usize| {
        h.push_complete(
            ProcessId(p),
            Invocation::Read,
            Time(t0),
            Response::Chain(Blockchain::from_ids(ids[..n].to_vec())),
            Time(t0 + 1),
        );
    };
    // Early divergence (as drawn: i on the even branch, j on the odd).
    read(&mut h, 0, 20, &even, 3); // b0⌢2⌢4
    read(&mut h, 1, 22, &odd, 2); // b0⌢1
    read(&mut h, 1, 24, &odd, 3); // b0⌢1⌢3
    if converging {
        // Fig. 3: everybody adopts the odd branch.
        read(&mut h, 0, 40, &odd, 4);
        read(&mut h, 1, 42, &odd, 4);
    } else {
        // Fig. 4: the branches never merge.
        read(&mut h, 0, 40, &even, 4);
        read(&mut h, 1, 42, &odd, 4);
    }
    (store, h)
}

/// Fig. 3 — the paper's EC-but-not-SC history.
pub fn fig3() {
    hr("Figure 3 — Eventual-but-not-Strong history (paper's drawing)");
    let (store, h) = paper_history(true);
    let cut = Time(30);
    render_reads(&h, cut);
    let params = ConsistencyParams {
        store: &store,
        predicate: &AcceptAll,
        score: &LengthScore,
        liveness: LivenessMode::ConvergenceCut(cut),
    };
    println!("\n{}", check_strong_consistency(&h, &params));
    println!("{}", check_eventual_consistency(&h, &params));
}

/// Fig. 4 — the paper's history violating both criteria.
pub fn fig4() {
    hr("Figure 4 — history violating every BT consistency criterion");
    let (store, h) = paper_history(false);
    let cut = Time(30);
    render_reads(&h, cut);
    let params = ConsistencyParams {
        store: &store,
        predicate: &AcceptAll,
        score: &LengthScore,
        liveness: LivenessMode::ConvergenceCut(cut),
    };
    println!("\n{}", check_strong_consistency(&h, &params));
    println!("{}", check_eventual_consistency(&h, &params));
}

/// Fig. 5 — the Θ_F abstract state.
pub fn fig5() {
    hr("Figure 5 — Θ_F abstract state (tapes + K array)");
    let merits = Merits::from_weights(vec![3.0, 1.0]);
    let mut oracle = ThetaOracle::frugal(2, merits, 1.2, SEED);
    let mut grants = Vec::new();
    for attempt in 0..8 {
        let who = attempt % 2;
        if let Some(g) = oracle.get_token(who, BlockId::GENESIS) {
            grants.push(g);
        }
    }
    for (i, g) in grants.iter().take(3).enumerate() {
        oracle.consume_token(g, BlockId(i as u32 + 1));
    }
    println!("merits: α_0 = 0.75 (p = 0.90), α_1 = 0.25 (p = 0.30), k = 2\n");
    for i in 0..2usize {
        let tape = btadt_oracle::Tape::new(
            btadt_core::ids::mix2(SEED, i as u64),
            oracle.merits().token_probability(i, oracle.rate()),
        );
        let cells: String = (0..16)
            .map(|j| {
                if tape.cell_at(j).is_token() {
                    "tkn "
                } else {
                    " ⊥  "
                }
            })
            .collect();
        println!(
            "tape_α{i} (consumed {:>2} cells): {cells}…",
            oracle.attempts(i)
        );
    }
    println!("\nK array:");
    let mut degrees: Vec<_> = oracle.fork_degrees().collect();
    degrees.sort();
    for (parent, deg) in degrees {
        println!(
            "  K[{parent}] = {:?} (|K| = {deg} ≤ k = 2)",
            oracle.consumed_for(parent)
        );
    }
    println!("\nk-fork coherent (Thm 3.2): {}", oracle.fork_coherent());
}

/// Fig. 6 — a path of the Θ transition system.
pub fn fig6() {
    hr("Figure 6 — Θ_F/Θ_P transition path (getToken / consumeToken)");
    let mut oracle = ThetaOracle::frugal(1, Merits::uniform(1), 1.0, 7);
    println!("ξ0: K[b0] = {{}}, tape head = tkn (p = 1)");
    let g = oracle.get_token(0, BlockId::GENESIS).expect("p = 1");
    println!(
        "ξ0 ── getToken(b0, b_k)/b_k^tkn (serial {}) ──▶ ξ1 (tape popped)",
        g.serial
    );
    let set = oracle.consume_token(&g, BlockId(1));
    println!(
        "ξ1 ── consumeToken(b_k^tkn)/{{{}}} ──▶ ξ2 (K[b0] = {set:?})",
        set[0]
    );
    let g2 = oracle.get_token(0, BlockId::GENESIS).expect("p = 1");
    let set2 = oracle.consume_token(&g2, BlockId(2));
    println!("ξ2 ── consumeToken(second token)/{set2:?} ──▶ ξ2 (|K[b0]| = k = 1: unchanged)");
}

/// Fig. 7 — the refined append path.
pub fn fig7() {
    hr("Figure 7 — refinement of append() (Def. 3.7)");
    let oracle = ThetaOracle::frugal(1, Merits::uniform(1), 0.4, 3);
    let mut tree = RefinedBlockTree::new(LongestChain, AcceptAll, oracle);
    println!("state: bt = {{b0}}, K[b0] = {{}}");
    let out = tree.append(ProcessId(0), btadt_core::block::Payload::Empty);
    println!(
        "append(b): getToken* looped {} tape cells, then consumeToken — {out:?}",
        tree.oracle().attempts(0)
    );
    println!("read() = {}", tree.read(ProcessId(0)));
    println!(
        "K[b0]  = {:?}",
        tree.oracle().consumed_for(BlockId::GENESIS)
    );
}

/// Fig. 8 — the hierarchy with empirical inclusion sampling.
pub fn fig8() {
    hr("Figure 8 — hierarchy of refinements R(BT-ADT, Θ)");
    for node in figure_nodes(2) {
        println!("  {}", node.label());
    }
    println!("\nedges:");
    for e in figure8_edges(2) {
        println!("  {} ⊆ {}   [{}]", e.from, e.to, e.justification);
    }
    println!("\nempirical sampling (12 seeds × 3 oracles, 4-process workloads):");
    println!("{:<10} {:>8} {:>8}", "oracle", "SC runs", "EC runs");
    for (label, k) in [("Θ_F,k=1", Some(1u32)), ("Θ_F,k=2", Some(2)), ("Θ_P", None)] {
        let (mut sc, mut ec) = (0, 0);
        for seed in 0..12u64 {
            let merits = Merits::uniform(4);
            let oracle = match k {
                Some(k) => ThetaOracle::frugal(k, merits, 2.0, seed),
                None => ThetaOracle::prodigal(merits, 2.0, seed),
            };
            let out = run_workload(
                oracle,
                &WorkloadConfig {
                    seed,
                    ..Default::default()
                },
            );
            let params = ConsistencyParams {
                store: &out.store,
                predicate: &AcceptAll,
                score: &LengthScore,
                liveness: LivenessMode::ConvergenceCut(out.suggested_cut),
            };
            sc += check_strong_consistency(&out.history, &params).holds() as u32;
            ec += check_eventual_consistency(&out.history, &params).holds() as u32;
        }
        println!("{label:<10} {sc:>7}/12 {ec:>7}/12");
    }
}

/// Fig. 9 — CAS and consumeToken objects under contention.
pub fn fig9() {
    hr("Figure 9 — Compare&Swap and consumeToken (k = 1) objects");
    let cas = CasRegister::new(EMPTY);
    println!(
        "cas(EMPTY→7)  returned {:>2} (success: old value)",
        cas.compare_and_swap(EMPTY, 7)
    );
    println!(
        "cas(EMPTY→9)  returned {:>2} (failure: incumbent)",
        cas.compare_and_swap(EMPTY, 9)
    );
    let ct = ConsumeTokenCell::new();
    println!(
        "consume(3)    returned {:>2} (installed)",
        ct.consume_token(3)
    );
    println!(
        "consume(5)    returned {:>2} (k = 1: incumbent)",
        ct.consume_token(5)
    );

    let winners: usize = {
        let c = std::sync::Arc::new(ConsumeTokenCell::new());
        std::thread::scope(|s| {
            (1..=8u64)
                .map(|v| {
                    let c = std::sync::Arc::clone(&c);
                    s.spawn(move || (c.consume_token(v) == v) as usize)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        })
    };
    println!("\n8 threads racing consumeToken: {winners} winner (expected 1)");
}

/// Fig. 10 — CAS from CT (Thm. 4.1).
pub fn fig10() {
    hr("Figure 10 — wait-free CAS from consumeToken (Thm 4.1)");
    let reduced = CasFromCt::new();
    let native = CasRegister::new(EMPTY);
    println!("{:<14} {:>10} {:>10}", "operation", "reduced", "native");
    for v in [5u64, 9, 13] {
        println!(
            "cas({{}}, {v:<2})    {:>10} {:>10}",
            reduced.compare_and_swap_from_empty(v),
            native.compare_and_swap(EMPTY, v)
        );
    }
    println!(
        "final values:  {:>10} {:>10}",
        reduced.read(),
        native.read()
    );
}

/// Fig. 11 — Protocol A (consensus from Θ_F,k=1, Thm. 4.2).
pub fn fig11() {
    hr("Figure 11 — Protocol A: consensus from Θ_F,k=1 (Thm 4.2)");
    println!(
        "{:>8} {:>10} {:>11} {:>9} {:>9} {:>12}",
        "threads", "decided", "agreement", "validity", "term.", "wall time"
    );
    for &n in &[2usize, 4, 8, 16] {
        let oracle = ThetaOracle::frugal(1, Merits::uniform(n), n as f64 * 0.8, n as u64);
        let consensus = OracleConsensus::new(SharedOracle::new(oracle));
        let start = Instant::now();
        let report = run_trial(&consensus, n);
        let dt = start.elapsed();
        println!(
            "{n:>8} {:>10} {:>11} {:>9} {:>9} {:>12}",
            report
                .decided()
                .map(|d| d.to_string())
                .unwrap_or_else(|| "—".into()),
            tick(report.agreement()),
            tick(report.validity()),
            tick(report.termination()),
            format!("{dt:.1?}")
        );
    }
}

fn tick(b: bool) -> &'static str {
    if b {
        "✓"
    } else {
        "✗"
    }
}

/// Fig. 12 — prodigal CT from Atomic Snapshot (Thm. 4.3).
pub fn fig12() {
    hr("Figure 12 — consumeToken from Atomic Snapshot (Θ_P, Thm 4.3)");
    let cell = ProdigalCtCell::new(4);
    for m in 0..4usize {
        let view = cell.consume_token(m, (m as u64 + 1) * 10);
        println!(
            "consumeToken(slot {m}, token {:>2}) -> K = {view:?}",
            (m + 1) * 10
        );
    }
    println!("\nall four consumes succeeded: Θ_P exercises no synchronization power.");
    let (a, b) = divergent_schedule(PickRule::MinSlot);
    println!("naive consensus over it admits divergence: A decided {a}, B decided {b}");
}

/// Fig. 13 — Update Agreement.
pub fn fig13() {
    hr("Figure 13 — Update Agreement (R1/R2/R3, Def. 4.3)");
    let out = update_agreement_positive(SEED);
    let ua = check_update_agreement(&out.trace, &out.store, &out.correct);
    let lrc = check_lrc(&out.trace, &out.correct);
    println!(
        "gossip-echo run: {} sends, {} receives, {} updates\n",
        out.trace.sends().count(),
        out.trace.receives().count(),
        out.trace.updates().count()
    );
    println!("{ua}");
    println!("{lrc}");
    let (_, ec) = out.consistency();
    println!(
        "Eventual Consistency: {}",
        if ec.holds() { "SATISFIED" } else { "VIOLATED" }
    );
}

/// Fig. 14 — the hierarchy after the impossibility results.
pub fn fig14() {
    hr("Figure 14 — message-passing frontier (Thm 4.8, Lemmas 4.4/4.5, Thm 4.7)");
    println!("Thm 4.8 schedules (2 procs, synchronous, simultaneous PoW wins):");
    for (label, k) in [
        ("Θ_F,k=1", KBound::Finite(1)),
        ("Θ_F,k=2", KBound::Finite(2)),
        ("Θ_P    ", KBound::Infinite),
    ] {
        let out = theorem_4_8(k, 42);
        let (sc, ec) = out.consistency();
        println!(
            "  {label}: Strong Prefix {}  Eventual Consistency {}",
            if sc.strong_prefix.as_ref().map(|v| v.holds).unwrap_or(true) {
                "preserved"
            } else {
                "VIOLATED "
            },
            tick(ec.holds())
        );
    }
    println!("\nnecessity chain:");
    let out = lemma_4_4(SEED);
    let ua = check_update_agreement(&out.trace, &out.store, &out.correct);
    let (_, ec) = out.consistency();
    println!(
        "  Lemma 4.4 (silent miner):  R1 {}  ⇒ EC {}",
        tick(ua.r1),
        tick(ec.holds())
    );
    let out = lemma_4_5(SEED);
    let ua = check_update_agreement(&out.trace, &out.store, &out.correct);
    let lrc = check_lrc(&out.trace, &out.correct);
    let (_, ec) = out.consistency();
    println!(
        "  Lemma 4.5 (dropped link):  LRC-Agreement {}  R3 {}  ⇒ EC {}",
        tick(lrc.agreement),
        tick(ua.r3),
        tick(ec.holds())
    );
    println!("\nsurviving message-passing classes:");
    for node in figure_nodes(2) {
        if node.message_passing_implementable() {
            println!("  {}", node.label());
        } else {
            println!("  {}   [impossible: Thm 4.8]", node.label());
        }
    }
}

/// Table 1 — the system mapping.
pub fn table1_exp() {
    hr("Table 1 — mapping of existing systems");
    println!(
        "{:<12} {:<28} {:<8} {:<9} {:<11} match",
        "system", "paper mapping", "observed", "max-fork", "blocks"
    );
    for row in btadt_protocols::table1(SEED) {
        println!("{row}");
    }
}

/// Ablation A1 — fork rate vs k and operation latency.
pub fn ablate_k() {
    hr("Ablation A1 — fork pressure vs oracle bound k and latency");
    println!(
        "{:<8} {:>10} {:>12} {:>14} {:>10}",
        "k", "latency", "fork points", "max degree", "SC?"
    );
    for &k in &[Some(1u32), Some(2), Some(4), None] {
        for &lat in &[2u64, 6, 12] {
            let (mut forks, mut deg, mut sc_runs) = (0usize, 0usize, 0u32);
            let runs = 6u64;
            for seed in 0..runs {
                let merits = Merits::uniform(4);
                let oracle = match k {
                    Some(k) => ThetaOracle::frugal(k, merits, 2.0, seed),
                    None => ThetaOracle::prodigal(merits, 2.0, seed),
                };
                let out = run_workload(
                    oracle,
                    &WorkloadConfig {
                        max_latency: lat,
                        seed,
                        ..Default::default()
                    },
                );
                forks += out.fork_points;
                deg = deg.max(out.max_fork_degree);
                let params = ConsistencyParams {
                    store: &out.store,
                    predicate: &AcceptAll,
                    score: &LengthScore,
                    liveness: LivenessMode::ConvergenceCut(out.suggested_cut),
                };
                sc_runs += check_strong_consistency(&out.history, &params).holds() as u32;
            }
            let klabel = k
                .map(|k| format!("k={k}"))
                .unwrap_or_else(|| "∞".to_string());
            println!(
                "{:<8} {:>10} {:>12.1} {:>14} {:>9}/6",
                klabel,
                lat,
                forks as f64 / runs as f64,
                deg,
                sc_runs
            );
        }
    }
}

/// Ablation A2 — longest-chain vs GHOST under fork pressure.
pub fn ablate_selection() {
    hr("Ablation A2 — longest-chain vs GHOST (Ethereum §5.2) under forks");
    use btadt_protocols::{bitcoin, ethereum};
    println!(
        "{:<16} {:>8} {:>12} {:>12} {:>10}",
        "selection", "blocks", "chain len", "orphan rate", "class"
    );
    for rate in [0.6f64, 1.2] {
        let b = bitcoin::run(&bitcoin::BitcoinConfig {
            rate,
            seed: SEED,
            ..Default::default()
        });
        let e = ethereum::run(&ethereum::EthereumConfig {
            rate,
            seed: SEED,
            ..Default::default()
        });
        for (name, run) in [
            (format!("longest r={rate}"), b),
            (format!("ghost   r={rate}"), e),
        ] {
            let chain_len = run.final_chains[0].len() - 1;
            let orphans = run.blocks_minted.saturating_sub(chain_len);
            println!(
                "{:<16} {:>8} {:>12} {:>11.1}% {:>10}",
                name,
                run.blocks_minted,
                chain_len,
                100.0 * orphans as f64 / run.blocks_minted.max(1) as f64,
                format!("{}", run.consistency_class())
            );
        }
    }
}

/// Ablation A4 — PeerCensus secure-state probability vs adversary power.
pub fn peercensus_security() {
    hr("Ablation A4 — PeerCensus secure state vs adversarial power (§5.5)");
    use btadt_protocols::peercensus::secure_state_probability;
    println!("{:>8} {:>22}", "α_A", "P[10 secure quorums]");
    for a in [0.05f64, 0.10, 0.15, 0.20, 0.25, 0.30, 0.33] {
        let p = secure_state_probability(a, 30, 10, 2_000, SEED);
        let bar = "█".repeat((p * 40.0) as usize);
        println!("{a:>8.2} {p:>10.3}  {bar}");
    }
    println!("\n(committee size 30, 10 successive quorums, 2000 Monte-Carlo trials)");
}

/// Ablation A5 — oracle & reward fairness (the paper's §6 future-work
/// thread plus the FruitChain §5.1 comparison).
pub fn fairness() {
    hr("Ablation A5 — merit fairness: token grants & FruitChain rewards");
    use btadt_oracle::token_fairness;
    use btadt_protocols::fruitchain::{run as run_fruit, FruitChainConfig};

    println!("token-grant fairness (Θ_P, 4000 attempts per process):");
    for (label, weights) in [
        ("uniform", vec![1.0, 1.0, 1.0, 1.0]),
        ("3:1:1:1", vec![3.0, 1.0, 1.0, 1.0]),
        ("8:4:2:1", vec![8.0, 4.0, 2.0, 1.0]),
    ] {
        let rep = token_fairness(Merits::from_weights(weights), 1.0, SEED, 4_000);
        println!(
            "  {label:<8} max deviation {:.4} over {} grants",
            rep.max_deviation, rep.total
        );
    }

    println!("\nreward fairness, skewed power 4:1:1:1 (FruitChain [27] vs Bitcoin):");
    println!(
        "{:>6} {:>18} {:>18}",
        "seed", "fruit max-dev", "block max-dev"
    );
    let merits = Merits::from_weights(vec![4.0, 1.0, 1.0, 1.0]);
    for seed in [1u64, 2, 3, 4] {
        let out = run_fruit(&FruitChainConfig {
            n: 4,
            hash_power: Some(vec![4.0, 1.0, 1.0, 1.0]),
            seed,
            ..Default::default()
        });
        println!(
            "{seed:>6} {:>18.4} {:>18.4}",
            out.fruit_fairness(&merits).max_deviation,
            out.block_fairness(&merits).max_deviation
        );
    }
    println!("\n(per-fruit rewards track merit more tightly: the FruitChain claim)");
}

/// The canonical append+read client loop on the incremental path
/// (`append` + cached `read`). Returns a fold of the observed chain
/// lengths so callers can cross-check both paths saw identical chains.
/// Shared by `bench_selection` and the `blocktree_ops` criterion bench
/// so both always measure the same workload.
pub fn append_read_incremental(n: u64) -> usize {
    use btadt_core::validity::AcceptAll;
    let mut bt = btadt_core::blocktree::BlockTree::new(LongestChain, AcceptAll);
    let mut acc = 0usize;
    for i in 0..n {
        bt.append(CandidateBlock::simple(ProcessId(0), i));
        acc += bt.read().len();
    }
    acc
}

/// The same client loop forced through the full Def. 3.1 rescan
/// (`selected_tip_full_scan` for the append parent and again for the
/// read, plus a `path_from_genesis` walk) — the seed's original cost
/// model, kept as the benchmark baseline.
pub fn append_read_full_scan(n: u64) -> usize {
    use btadt_core::validity::AcceptAll;
    let mut bt = btadt_core::blocktree::BlockTree::new(LongestChain, AcceptAll);
    let mut acc = 0usize;
    for i in 0..n {
        let parent = bt.selected_tip_full_scan();
        bt.graft(parent, CandidateBlock::simple(ProcessId(0), i));
        let chain = Blockchain::from_tip(bt.store(), bt.selected_tip_full_scan());
        acc += chain.len();
    }
    acc
}

/// Bench S — incremental selection & zero-copy reads vs the full Def. 3.1
/// rescan, on the canonical append+read client loop. Prints a table and
/// emits `BENCH_selection.json` for trend tracking. Run under `--release`;
/// the full-scan baseline at 100k blocks is O(n²) by construction (that
/// is the point).
pub fn bench_selection() {
    hr("Bench S — incremental vs full-scan selection (append+read loop)");

    fn incremental_loop(n: u64) -> (std::time::Duration, usize) {
        let start = Instant::now();
        let acc = append_read_incremental(n);
        (start.elapsed(), acc)
    }

    fn full_scan_loop(n: u64) -> (std::time::Duration, usize) {
        let start = Instant::now();
        let acc = append_read_full_scan(n);
        (start.elapsed(), acc)
    }

    if cfg!(debug_assertions) {
        println!("note: unoptimized build — run with --release for honest numbers");
    }
    println!(
        "{:>9} {:>18} {:>18} {:>9}",
        "blocks", "incremental", "full-scan", "speedup"
    );
    let mut rows = Vec::new();
    for &n in &[10_000u64, 100_000] {
        let (t_inc, a1) = incremental_loop(n);
        let (t_full, a2) = full_scan_loop(n);
        assert_eq!(a1, a2, "both paths must observe identical chains");
        let ops = 2 * n; // one append + one read per block
        let inc_rate = ops as f64 / t_inc.as_secs_f64();
        let full_rate = ops as f64 / t_full.as_secs_f64();
        let speedup = inc_rate / full_rate;
        println!(
            "{n:>9} {:>13.0} op/s {:>13.0} op/s {speedup:>8.1}x",
            inc_rate, full_rate
        );
        rows.push(format!(
            "    {{\"blocks\": {n}, \"ops\": {ops}, \
             \"incremental_ops_per_sec\": {inc_rate:.1}, \
             \"full_scan_ops_per_sec\": {full_rate:.1}, \
             \"speedup\": {speedup:.2}}}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"selection_append_read\",\n  \
         \"selection\": \"longest-chain\",\n  \
         \"optimized\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        !cfg!(debug_assertions),
        rows.join(",\n")
    );
    match std::fs::write("BENCH_selection.json", &json) {
        Ok(()) => println!("\nwrote BENCH_selection.json"),
        Err(e) => println!("\ncould not write BENCH_selection.json: {e}"),
    }
}

/// Sizing override for the bench drivers (the CI bench-smoke step runs
/// them at tiny sizes so the binaries cannot bit-rot between manual
/// runs): a positive integer in the named env var wins over `default`.
fn env_size(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Bench C — the concurrent BT-ADT under 1/2/4/8 appender+reader thread
/// pairs, against the sequential incremental `BlockTree` on the same
/// total operation budget, plus a forced-overlap **contended** row.
/// Prints a table and emits `BENCH_concurrent.json`. Run under
/// `--release` (debug builds also carry the per-insert full-scan
/// cross-check, which is the bulk of the cost there). Sizes honor
/// `BTADT_BENCH_APPENDS` / `BTADT_BENCH_TRIALS` /
/// `BTADT_BENCH_DURABLE` for the CI smoke run.
///
/// The `durable` rows rerun the append workload on an
/// [`open_durable`](btadt_core::concurrent::ConcurrentBlockTree::open_durable)
/// tree (WAL + fsync before ack) and report the group-commit evidence:
/// appends/s with durability on, plus records-per-fsync from
/// `wal_stats`.
///
/// Appends and reads are reported as **separate series** per thread
/// count: PR 2's combined ops/sec number hid append serialization behind
/// the read volume. Appends are two-speed — inline commits when the
/// selection mutex is free on the first CAS (the `inline` count), the
/// staged batching queue when a drainer is at work (the `batch` column
/// is the mean commits per drain) — and reads are epoch-pinned borrows
/// with no shared refcount line. Each row also reports the epoch
/// domain's `retired_bytes_peak` — the reclamation high-water mark over
/// the run.
///
/// The plain thread rows rarely overlap on a single-core container
/// (appends serialize by time slice, so `mean_batch` pins at 1.0); the
/// `contended` row forces overlap from a start barrier with a metadata
/// scanner thread holding the selection lock in bursts
/// (`commit_log()` clones under it), so queue pile-ups — and batches —
/// form even time-sliced.
pub fn bench_concurrent() {
    use btadt_core::concurrent::ConcurrentBlockTree;
    use btadt_core::validity::AcceptAll;
    use std::sync::Barrier;

    hr("Bench C — concurrent BT-ADT: thread scaling vs sequential baseline");
    if cfg!(debug_assertions) {
        println!("note: unoptimized build — run with --release for honest numbers");
    }
    let total_appends: u64 = env_size(
        "BTADT_BENCH_APPENDS",
        if cfg!(debug_assertions) {
            2_000
        } else {
            100_000
        },
    );
    let total_reads: u64 = 4 * total_appends;

    // Sequential baselines: the same budgets on the single-threaded
    // incremental path, appends and reads timed separately.
    let (base_append_rate, base_read_rate) = {
        let mut bt = btadt_core::blocktree::BlockTree::new(LongestChain, AcceptAll);
        let start = Instant::now();
        for i in 0..total_appends {
            bt.append(CandidateBlock::simple(ProcessId(0), i));
        }
        let append_rate = total_appends as f64 / start.elapsed().as_secs_f64();
        let start = Instant::now();
        let mut acc = 0usize;
        for _ in 0..total_reads {
            acc += bt.read().len();
        }
        std::hint::black_box(acc);
        let read_rate = total_reads as f64 / start.elapsed().as_secs_f64();
        (append_rate, read_rate)
    };
    println!(
        "{:>22} {:>10} {:>13} {:>10} {:>13} {:>12} {:>7}",
        "configuration", "appends", "appends/s", "reads", "reads/s", "retired peak", "batch"
    );
    println!(
        "{:>22} {total_appends:>10} {base_append_rate:>13.0} {total_reads:>10} \
         {base_read_rate:>13.0} {:>12} {:>7}",
        "sequential (1 thread)", "-", "-"
    );

    let mut rows = vec![format!(
        "    {{\"threads\": 0, \"label\": \"sequential\", \"appends\": {total_appends}, \
         \"appends_per_sec\": {base_append_rate:.1}, \"reads\": {total_reads}, \
         \"reads_per_sec\": {base_read_rate:.1}}}"
    )];
    // Scheduler noise dwarfs the effect under test on small machines
    // (this container has one core), so each configuration reports the
    // per-series best over the trials (each series' max taken
    // independently — the conventional throughput-bench answer to "how
    // fast can this configuration go"; retired_bytes_peak takes its max
    // as the worst case observed). Trials are interleaved round-robin
    // across the configurations so frequency/thermal drift over the
    // bench's runtime does not systematically penalize the later, larger
    // thread counts.
    let trials = env_size("BTADT_BENCH_TRIALS", 5) as usize;
    let configs = [1usize, 2, 4, 8];
    let mut best = [(0f64, 0f64, 0usize, 0f64, 0u64, 0usize); 4];
    let mut tip_series = [(0u64, 0f64); 4];
    for trial in 0..trials {
        for (ci, &threads) in configs.iter().enumerate() {
            let appends_each = total_appends / threads as u64;
            let reads_each = total_reads / threads as u64;
            let done_appends = appends_each * threads as u64;
            let done_reads = reads_each * threads as u64;
            let tree = ConcurrentBlockTree::new(LongestChain, AcceptAll);
            // Each thread group is timed to its own last finisher: the
            // appends/s and reads/s series measure the phases that
            // actually ran, not whichever group straggled.
            let barrier = Barrier::new(2 * threads);
            let (append_wall, read_wall) = std::thread::scope(|s| {
                let mut appenders = Vec::new();
                let mut readers = Vec::new();
                for t in 0..threads as u32 {
                    let (tree, barrier) = (&tree, &barrier);
                    appenders.push(s.spawn(move || {
                        barrier.wait();
                        let start = Instant::now();
                        for i in 0..appends_each {
                            let nonce = ((t as u64) << 40) | i;
                            let _ = tree.append(CandidateBlock::simple(ProcessId(t), nonce));
                        }
                        start.elapsed().as_secs_f64()
                    }));
                    readers.push(s.spawn(move || {
                        barrier.wait();
                        let start = Instant::now();
                        let mut acc = 0usize;
                        for _ in 0..reads_each {
                            acc += tree.read().len();
                        }
                        std::hint::black_box(acc);
                        start.elapsed().as_secs_f64()
                    }));
                }
                let a = appenders
                    .into_iter()
                    .map(|h| h.join().expect("appender"))
                    .fold(0f64, f64::max);
                let r = readers
                    .into_iter()
                    .map(|h| h.join().expect("reader"))
                    .fold(0f64, f64::max);
                (a, r)
            });
            assert_eq!(
                tree.read().len() as u64,
                done_appends + 1,
                "every append must have committed"
            );
            best[ci].0 = best[ci].0.max(done_appends as f64 / append_wall);
            best[ci].1 = best[ci].1.max(done_reads as f64 / read_wall);
            best[ci].2 = best[ci].2.max(tree.epochs().retired_bytes_peak());
            best[ci].3 = best[ci].3.max(tree.pipeline_stats().mean_batch());
            best[ci].4 = best[ci].4.max(tree.pipeline_stats().inline_appends);
            best[ci].5 = best[ci].5.max(tree.store().approx_heap_bytes());
            if trial == trials - 1 {
                // Tip-read scaling on the now-populated tree:
                // `selected_tip` is the refcount-free half of the read
                // path (one atomic load), so it shows the parallelism
                // headroom without the shared-`Arc` cache-line traffic
                // that bounds full-chain reads. Measured here, on the
                // configuration's final trial, so the ~100k-block tree
                // drops at the end of this iteration — keeping all four
                // populated trees alive until after the trial loop
                // inflated the bench footprint (and cache pressure on
                // this one-core container) for no measurement benefit.
                let tip_reads_each = 4 * total_reads / threads as u64;
                let start = Instant::now();
                std::thread::scope(|s| {
                    for _ in 0..threads {
                        let tree = &tree;
                        s.spawn(move || {
                            let mut acc = 0u64;
                            for _ in 0..tip_reads_each {
                                acc ^= tree.selected_tip().0 as u64;
                            }
                            std::hint::black_box(acc);
                        });
                    }
                });
                let tip_total = tip_reads_each * threads as u64;
                tip_series[ci] = (tip_total, tip_total as f64 / start.elapsed().as_secs_f64());
            }
        }
    }
    for (ci, &threads) in configs.iter().enumerate() {
        let appends_each = total_appends / threads as u64;
        let reads_each = total_reads / threads as u64;
        let done_appends = appends_each * threads as u64;
        let done_reads = reads_each * threads as u64;
        let (append_rate, read_rate, retired_peak, mean_batch, inline, arena) = best[ci];
        println!(
            "{:>18} +{threads}r {done_appends:>10} {append_rate:>13.0} {done_reads:>10} \
             {read_rate:>13.0} {retired_peak:>10} B {mean_batch:>7.2}",
            format!("concurrent {threads}a"),
        );
        rows.push(format!(
            "    {{\"threads\": {threads}, \"label\": \"concurrent\", \"appends\": {done_appends}, \
             \"appends_per_sec\": {append_rate:.1}, \"reads\": {done_reads}, \
             \"reads_per_sec\": {read_rate:.1}, \"retired_bytes_peak\": {retired_peak}, \
             \"mean_batch\": {mean_batch:.2}, \"inline_appends\": {inline}, \
             \"arena_bytes\": {arena}}}"
        ));
        let (tip_total, tip_rate) = tip_series[ci];
        println!(
            "{:>22} {:>10} {:>13} {tip_total:>10} {tip_rate:>13.0} {:>12} {:>7}",
            format!("tip reads ({threads} thr)"),
            "-",
            "-",
            "-",
            "-"
        );
        rows.push(format!(
            "    {{\"threads\": {threads}, \"label\": \"tip_reads\", \"appends\": 0, \
             \"reads\": {tip_total}, \"reads_per_sec\": {tip_rate:.1}}}"
        ));
    }

    // Forced-overlap contended configuration: 4 appenders released from
    // one start barrier race a metadata scanner that repeatedly clones
    // the commit log *under the selection lock*. Appenders that hit the
    // held lock fall back to the staged queue and pile up; whoever gets
    // the lock next drains them as one batch — so `mean_batch` can
    // exceed 1.0 even on a single-core container, which is what makes
    // the batching path measurable here at all (the plain rows above
    // only batch when the scheduler happens to preempt a lock holder).
    {
        use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
        let threads = 4usize;
        let appends_each = total_appends / (2 * threads as u64);
        let done_appends = appends_each * threads as u64;
        let mut best_rate = 0f64;
        let (mut mean_batch, mut max_batch, mut inline) = (0f64, 0u64, 0u64);
        let (mut drain_ns, mut score_ns, mut publish_ns) = (0u64, 0u64, 0u64);
        for _ in 0..trials {
            let tree = ConcurrentBlockTree::new(LongestChain, AcceptAll);
            let done = AtomicBool::new(false);
            // Appenders + scanner + the timing (main) thread.
            let barrier = Barrier::new(threads + 2);
            // Whole-phase wall clock (barrier release → last appender
            // joined), not per-thread spans: this row exists to measure
            // forced overlap, and per-thread spans overstate a run whose
            // threads happened to time-slice sequentially.
            let wall = std::thread::scope(|s| {
                let mut appenders = Vec::new();
                for t in 0..threads as u32 {
                    let (tree, barrier) = (&tree, &barrier);
                    appenders.push(s.spawn(move || {
                        barrier.wait();
                        for i in 0..appends_each {
                            let nonce = (1u64 << 50) | ((t as u64) << 40) | i;
                            let _ = tree.append(CandidateBlock::simple(ProcessId(t), nonce));
                        }
                    }));
                }
                let (tree, barrier, done) = (&tree, &barrier, &done);
                let scanner = s.spawn(move || {
                    barrier.wait();
                    let mut acc = 0usize;
                    while !done.load(AtomicOrdering::Relaxed) {
                        acc += tree.commit_log().len();
                    }
                    std::hint::black_box(acc);
                });
                barrier.wait();
                let start = Instant::now();
                for h in appenders {
                    h.join().expect("appender");
                }
                let wall = start.elapsed().as_secs_f64();
                done.store(true, AtomicOrdering::Relaxed);
                scanner.join().expect("scanner");
                wall
            });
            assert_eq!(tree.read().len() as u64, done_appends + 1);
            let stats = tree.pipeline_stats();
            best_rate = best_rate.max(done_appends as f64 / wall);
            // Independent maxima, like the plain configs: the best-rate
            // trial is often the one the scanner barely touched (batch
            // 0), while the batching evidence this row exists for comes
            // from the trials where the overlap actually happened.
            mean_batch = mean_batch.max(stats.mean_batch());
            max_batch = max_batch.max(stats.max_batch);
            inline = inline.max(stats.inline_appends);
            drain_ns = drain_ns.max(stats.drain_lock_ns);
            score_ns = score_ns.max(stats.score_ns);
            publish_ns = publish_ns.max(stats.publish_ns);
        }
        // The pipeline's whole point: of the time a drained batch spends
        // in the machinery, how much still serializes on the selection
        // lock (stage 1) vs the publication lock (stage 2, overlappable
        // with the next drain). Pre-pipeline this ratio was 1.00 by
        // construction — everything ran under the one selection lock.
        let sel_lock_share = drain_ns as f64 / (drain_ns + publish_ns).max(1) as f64;
        println!(
            "{:>22} {done_appends:>10} {best_rate:>13.0} {:>10} {:>13} {:>12} {mean_batch:>7.2}",
            format!("contended {threads}a+scan"),
            format!("{:.2} sl", sel_lock_share),
            "-",
            "-"
        );
        rows.push(format!(
            "    {{\"threads\": {threads}, \"label\": \"contended\", \"appends\": {done_appends}, \
             \"appends_per_sec\": {best_rate:.1}, \"mean_batch\": {mean_batch:.2}, \
             \"max_batch\": {max_batch}, \"inline_appends\": {inline}, \
             \"drain_lock_ns\": {drain_ns}, \"score_ns\": {score_ns}, \
             \"publish_ns\": {publish_ns}, \"sel_lock_share\": {sel_lock_share:.3}}}"
        ));
    }

    // Fork-heavy GHOST contended configuration: the same forced-overlap
    // recipe, but under the rule whose scoring actually walks the tree —
    // 4 appenders extending the GHOST tip race a forker grafting at
    // random depths of the published chain (real reorg pressure, so the
    // batched scoring path exercises subtree partitioning and the
    // converging weight walk, not just the chain-rule max).
    {
        use btadt_core::selection::Ghost;
        use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
        let threads = 4usize;
        let appends_each = total_appends / (2 * threads as u64);
        let grafts: u64 = appends_each / 4;
        let done_appends = appends_each * threads as u64;
        let mut best_rate = 0f64;
        let (mut mean_batch, mut max_batch, mut inline) = (0f64, 0u64, 0u64);
        let (mut drain_ns, mut score_ns, mut publish_ns) = (0u64, 0u64, 0u64);
        for _ in 0..trials {
            let tree = ConcurrentBlockTree::new(Ghost::default(), AcceptAll);
            let done = AtomicBool::new(false);
            let barrier = Barrier::new(threads + 3);
            let wall = std::thread::scope(|s| {
                let mut appenders = Vec::new();
                for t in 0..threads as u32 {
                    let (tree, barrier) = (&tree, &barrier);
                    appenders.push(s.spawn(move || {
                        barrier.wait();
                        for i in 0..appends_each {
                            let nonce = (1u64 << 51) | ((t as u64) << 40) | i;
                            let _ = tree.append(CandidateBlock::simple(ProcessId(t), nonce));
                        }
                    }));
                }
                let (tree, barrier, done) = (&tree, &barrier, &done);
                let forker = s.spawn(move || {
                    barrier.wait();
                    let mut seed = 0xF0_4Cu64;
                    for i in 0..grafts {
                        seed = seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let chain = tree.read();
                        let ids = chain.ids();
                        let parent = ids[(seed >> 33) as usize % ids.len()];
                        let nonce = (1u64 << 53) | i;
                        let _ = tree.graft(parent, CandidateBlock::simple(ProcessId(9), nonce));
                    }
                });
                let scanner = s.spawn(move || {
                    barrier.wait();
                    let mut acc = 0usize;
                    while !done.load(AtomicOrdering::Relaxed) {
                        acc += tree.commit_log().len();
                    }
                    std::hint::black_box(acc);
                });
                barrier.wait();
                let start = Instant::now();
                for h in appenders {
                    h.join().expect("appender");
                }
                let wall = start.elapsed().as_secs_f64();
                done.store(true, AtomicOrdering::Relaxed);
                forker.join().expect("forker");
                scanner.join().expect("scanner");
                wall
            });
            assert_eq!(
                tree.commit_log().len() as u64,
                done_appends + grafts,
                "every append and graft must have committed"
            );
            assert_eq!(tree.selected_tip(), tree.selected_tip_full_scan());
            let stats = tree.pipeline_stats();
            best_rate = best_rate.max(done_appends as f64 / wall);
            mean_batch = mean_batch.max(stats.mean_batch());
            max_batch = max_batch.max(stats.max_batch);
            inline = inline.max(stats.inline_appends);
            drain_ns = drain_ns.max(stats.drain_lock_ns);
            score_ns = score_ns.max(stats.score_ns);
            publish_ns = publish_ns.max(stats.publish_ns);
        }
        let sel_lock_share = drain_ns as f64 / (drain_ns + publish_ns).max(1) as f64;
        println!(
            "{:>22} {done_appends:>10} {best_rate:>13.0} {:>10} {:>13} {:>12} {mean_batch:>7.2}",
            format!("ghost-fork {threads}a+f+s"),
            format!("{:.2} sl", sel_lock_share),
            "-",
            "-"
        );
        rows.push(format!(
            "    {{\"threads\": {threads}, \"label\": \"contended_ghost\", \
             \"appends\": {done_appends}, \"grafts\": {grafts}, \
             \"appends_per_sec\": {best_rate:.1}, \"mean_batch\": {mean_batch:.2}, \
             \"max_batch\": {max_batch}, \"inline_appends\": {inline}, \
             \"drain_lock_ns\": {drain_ns}, \"score_ns\": {score_ns}, \
             \"publish_ns\": {publish_ns}, \"sel_lock_share\": {sel_lock_share:.3}}}"
        ));
    }
    // Deep-tree configuration: the same chain grown to `BTADT_BENCH_DEEP`
    // blocks twice — once with flattening disabled (the PR-5 arena as it
    // was: every block a spine `Entry` plus a live child list forever),
    // once with the finality watermark trailing the tip by
    // `BTADT_BENCH_FINALITY` — and measured on the axes the tiered arena
    // exists for: ancestry-walk latency from the tip into the finalized
    // prefix, resident arena bytes, and append throughput with the
    // flattener running on the commit path. Exactly one populated deep
    // tree is alive at any moment (phase A drops before phase B builds);
    // at the release default of one million blocks, keeping both would
    // double the bench's resident footprint for no measurement benefit.
    {
        use btadt_core::commit::FinalityWatermark;
        use btadt_core::store::BlockView;

        let deep_blocks: u64 = env_size(
            "BTADT_BENCH_DEEP",
            if cfg!(debug_assertions) {
                4_000
            } else {
                1_000_000
            },
        );
        let finality_depth = env_size("BTADT_BENCH_FINALITY", 1_024) as u32;
        let walks: u64 = env_size(
            "BTADT_BENCH_WALKS",
            if cfg!(debug_assertions) {
                2_000
            } else {
                50_000
            },
        );

        let grow = |watermark: FinalityWatermark| {
            let tree = ConcurrentBlockTree::with_config(4, watermark, LongestChain, AcceptAll);
            let start = Instant::now();
            for i in 0..deep_blocks {
                let _ = tree.append(CandidateBlock::simple(ProcessId(0), (1u64 << 52) | i));
            }
            let rate = deep_blocks as f64 / start.elapsed().as_secs_f64();
            (tree, rate)
        };
        // Random-depth ancestry walks from the tip: the jump-pointer
        // descent crosses the whole finalized prefix, so this is the
        // cache-locality metric the slab tier targets.
        let walk_ns = |store: &btadt_core::concurrent::ShardedStore| {
            let tip = BlockId(store.block_count() as u32 - 1);
            let tip_h = store.height(tip) as u64;
            let mut seed = 0x5EED_D15Cu64;
            let mut acc = 0u64;
            let start = Instant::now();
            for _ in 0..walks {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let h = ((seed >> 33) % (tip_h + 1)) as u32;
                acc ^= store.ancestor_at(tip, h).0 as u64;
            }
            std::hint::black_box(acc);
            start.elapsed().as_nanos() as f64 / walks as f64
        };

        let (tree, append_unflat) = grow(FinalityWatermark::disabled());
        let walk_unflat = walk_ns(tree.store());
        let arena_peak = tree.store().approx_heap_bytes();
        drop(tree);

        let (tree, append_flat) = grow(FinalityWatermark::new(finality_depth));
        // Drain the flattener to its watermark, then drive the grace
        // period so every retired spine chunk is actually freed before
        // the resident-bytes reading.
        while tree.store().flatten_some(4096) > 0 {}
        tree.store().reclaim_domain().reclaim_quiescent();
        let walk_flat = walk_ns(tree.store());
        let arena_final = tree.store().approx_heap_bytes();
        let flattened = tree.store().flattened_count();
        let retired_peak = tree.store().reclaim_domain().retired_bytes_peak();

        println!(
            "{:>22} {deep_blocks:>10} {append_unflat:>13.0} {walks:>10} {:>10.0} ns/walk \
             {arena_peak:>10} B {:>7}",
            "deep tree (unflat)", walk_unflat, "-"
        );
        println!(
            "{:>22} {deep_blocks:>10} {append_flat:>13.0} {walks:>10} {:>10.0} ns/walk \
             {arena_final:>10} B {:>7}",
            format!("deep tree (d={finality_depth})"),
            walk_flat,
            "-"
        );
        rows.push(format!(
            "    {{\"threads\": 1, \"label\": \"deep_tree\", \"blocks\": {deep_blocks}, \
             \"finality_depth\": {finality_depth}, \
             \"append_per_sec_unflattened\": {append_unflat:.1}, \
             \"append_per_sec_flattening\": {append_flat:.1}, \
             \"walks\": {walks}, \"walk_ns_unflattened\": {walk_unflat:.1}, \
             \"walk_ns_flattened\": {walk_flat:.1}, \
             \"arena_bytes_peak\": {arena_peak}, \"arena_bytes_final\": {arena_final}, \
             \"flattened_blocks\": {flattened}, \"retired_bytes_peak\": {retired_peak}}}"
        ));
    }

    // Durable configuration: the same append workload with the WAL on —
    // every publication fsynced before its appends return
    // (persist-then-ack). The number to watch is records-per-fsync:
    // group commit rides the one-publication-per-batch cadence, so the
    // fsync count tracks publications, not appends. One appender is the
    // worst case (every append can be its own publication); four
    // appenders show queue pile-ups amortizing the fsync across a batch.
    {
        use btadt_core::commit::FinalityWatermark;
        use btadt_core::wal::WalConfig;

        let durable_appends: u64 = env_size(
            "BTADT_BENCH_DURABLE",
            if cfg!(debug_assertions) {
                2_000
            } else {
                50_000
            },
        );
        for &threads in &[1usize, 4] {
            let appends_each = durable_appends / threads as u64;
            let done_appends = appends_each * threads as u64;
            let mut best_rate = 0f64;
            let mut stats_at_best = None;
            for trial in 0..trials {
                let dir = std::env::temp_dir().join(format!(
                    "btadt-bench-wal-{}-{threads}-{trial}",
                    std::process::id()
                ));
                let _ = std::fs::remove_dir_all(&dir);
                let tree = ConcurrentBlockTree::open_durable(
                    4,
                    FinalityWatermark::disabled(),
                    LongestChain,
                    AcceptAll,
                    WalConfig::new(&dir),
                )
                .expect("bench WAL opens");
                let barrier = Barrier::new(threads);
                let wall = std::thread::scope(|s| {
                    let handles: Vec<_> = (0..threads as u32)
                        .map(|t| {
                            let (tree, barrier) = (&tree, &barrier);
                            s.spawn(move || {
                                barrier.wait();
                                let start = Instant::now();
                                for i in 0..appends_each {
                                    let nonce = (1u64 << 54) | ((t as u64) << 40) | i;
                                    let _ =
                                        tree.append(CandidateBlock::simple(ProcessId(t), nonce));
                                }
                                start.elapsed().as_secs_f64()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("appender"))
                        .fold(0f64, f64::max)
                });
                assert_eq!(tree.read().len() as u64, done_appends + 1);
                let stats = tree.wal_stats().expect("durable tree reports stats");
                // Seam sanity: these rows run through the default StdVfs,
                // which must be a pure passthrough — every append logged
                // exactly once, no injected-failure machinery engaged. A
                // regression here (missing records, surprise retries or
                // failure counts on a healthy disk) means the VFS seam
                // changed the durable path, not just its timing.
                assert_eq!(
                    stats.records, done_appends,
                    "StdVfs seam must log exactly one record per append"
                );
                assert!(
                    stats.checkpoint_failures == 0
                        && stats.segment_unlink_failures == 0
                        && stats.rotation_failures == 0
                        && stats.last_error.is_none(),
                    "StdVfs seam recorded IO failures on a healthy disk: {stats:?}"
                );
                // Group commit's cadence check: stage 2 fsyncs once per
                // publication (a publication may cover several staged
                // batches, never the reverse), so the fsync count must
                // track publications — small slack for segment-rotation
                // fsyncs riding on top.
                let publications = tree.commit_generation();
                assert!(
                    stats.fsyncs <= publications + publications / 10 + 8
                        && publications <= stats.fsyncs + stats.fsyncs / 10 + 8,
                    "wal fsyncs ({}) should track publications ({})",
                    stats.fsyncs,
                    publications
                );
                let rate = done_appends as f64 / wall;
                if rate > best_rate {
                    best_rate = rate;
                    stats_at_best = Some((stats, publications));
                }
                drop(tree);
                let _ = std::fs::remove_dir_all(&dir);
            }
            let (stats, publications) = stats_at_best.expect("at least one trial ran");
            let per_fsync = stats.records as f64 / stats.fsyncs.max(1) as f64;
            println!(
                "{:>22} {done_appends:>10} {best_rate:>13.0} {:>10} {:>13} {:>12} {per_fsync:>7.2}",
                format!("durable {threads}a (fsync)"),
                format!("{} fs", stats.fsyncs),
                "-",
                "-"
            );
            rows.push(format!(
                "    {{\"threads\": {threads}, \"label\": \"durable\", \
                 \"appends\": {done_appends}, \"appends_per_sec\": {best_rate:.1}, \
                 \"wal_records\": {}, \"wal_fsyncs\": {}, \"publications\": {publications}, \
                 \"records_per_fsync\": {per_fsync:.2}, \"wal_bytes\": {}}}",
                stats.records, stats.fsyncs, stats.bytes
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"concurrent_append_read\",\n  \
         \"selection\": \"longest-chain\",\n  \
         \"optimized\": {},\n  \"cpus\": {},\n  \"trials_per_config\": {trials},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        !cfg!(debug_assertions),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        rows.join(",\n")
    );
    match std::fs::write("BENCH_concurrent.json", &json) {
        Ok(()) => println!("\nwrote BENCH_concurrent.json"),
        Err(e) => println!("\ncould not write BENCH_concurrent.json: {e}"),
    }
}

/// Bench A — Protocol A end to end: decisions/sec through the
/// `ConcurrentBlockTree` + Θ_F,k=1 pair vs proposer-thread count, via
/// `run_consensus_workload` (real threads, chained instances, recorded
/// histories). Prints a table and emits `BENCH_consensus.json`. Each round
/// decides one block among N proposers, so decisions/sec is rounds over
/// the wall clock and proposes/sec is N× that; the readerless config
/// isolates the decide path, the `+2r` rows add read-side pressure.
pub fn bench_consensus() {
    use btadt_sim::mtrun::{run_consensus_workload, ConsensusConfig};

    hr("Bench A — tree-backed consensus (Protocol A): thread scaling");
    if cfg!(debug_assertions) {
        println!("note: unoptimized build — run with --release for honest numbers");
    }
    let rounds: usize = env_size(
        "BTADT_BENCH_ROUNDS",
        if cfg!(debug_assertions) { 50 } else { 2_000 },
    ) as usize;
    println!(
        "{:>16} {:>8} {:>14} {:>14} {:>10}",
        "configuration", "rounds", "decisions/s", "proposes/s", "coherent"
    );
    let mut rows = Vec::new();
    let trials = env_size("BTADT_BENCH_TRIALS", 3);
    for &(proposers, readers) in &[(1usize, 0usize), (2, 0), (4, 0), (4, 2), (8, 2)] {
        let cfg = ConsensusConfig {
            seed: SEED,
            proposers,
            readers,
            rounds,
            reads_per_round: if readers == 0 { 0 } else { 8 },
            rate: None,
        };
        // Best-of-trials, like bench-concurrent: scheduler noise dwarfs
        // the effect under test on small containers. `threads_wall` times
        // spawn→join only, so post-join evidence assembly (arena
        // snapshot, history merge) does not deflate the decide-path rate.
        let mut best_rate = 0f64;
        let mut coherent = true;
        for _ in 0..trials {
            let run = run_consensus_workload(LongestChain, &cfg);
            let wall = run.threads_wall.as_secs_f64();
            assert_eq!(run.decisions.len(), rounds, "every round decides");
            coherent &= run.fork_coherent;
            best_rate = best_rate.max(rounds as f64 / wall);
        }
        let propose_rate = best_rate * proposers as f64;
        println!(
            "{:>13}p +{readers}r {rounds:>8} {best_rate:>14.0} {propose_rate:>14.0} {coherent:>10}",
            proposers
        );
        rows.push(format!(
            "    {{\"proposers\": {proposers}, \"readers\": {readers}, \"rounds\": {rounds}, \
             \"decisions_per_sec\": {best_rate:.1}, \"proposes_per_sec\": {propose_rate:.1}, \
             \"fork_coherent\": {coherent}}}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"tree_consensus_decide_path\",\n  \
         \"selection\": \"longest-chain\",\n  \"k\": 1,\n  \
         \"optimized\": {},\n  \"cpus\": {},\n  \"trials_per_config\": {trials},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        !cfg!(debug_assertions),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        rows.join(",\n")
    );
    match std::fs::write("BENCH_consensus.json", &json) {
        Ok(()) => println!("\nwrote BENCH_consensus.json"),
        Err(e) => println!("\ncould not write BENCH_consensus.json: {e}"),
    }
}

/// Runs every experiment in paper order.
pub fn all() {
    fig1();
    fig2();
    fig3();
    fig4();
    fig5();
    fig6();
    fig7();
    fig8();
    fig9();
    fig10();
    fig11();
    fig12();
    fig13();
    fig14();
    table1_exp();
    ablate_k();
    ablate_selection();
    peercensus_security();
    fairness();
}

#[cfg(test)]
mod tests {
    // Smoke-test every experiment driver end to end (they assert
    // internally via expect/unwrap on the paper-predicted outcomes).
    #[test]
    fn figures_1_to_7_run() {
        super::fig1();
        super::fig2();
        super::fig3();
        super::fig4();
        super::fig5();
        super::fig6();
        super::fig7();
    }

    #[test]
    fn figures_8_to_14_run() {
        super::fig8();
        super::fig9();
        super::fig10();
        super::fig11();
        super::fig12();
        super::fig13();
        super::fig14();
    }

    #[test]
    fn tables_and_ablations_run() {
        super::table1_exp();
        super::ablate_selection();
    }
}
