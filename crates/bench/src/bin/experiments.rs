//! Regenerates the paper's figures and tables as text.
//!
//! ```sh
//! cargo run -p btadt-bench --release --bin experiments -- all
//! cargo run -p btadt-bench --release --bin experiments -- fig8 table1
//! ```

use std::env;

fn usage() -> ! {
    eprintln!("usage: experiments <exp>…");
    eprintln!("experiments: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10");
    eprintln!("             fig11 fig12 fig13 fig14 table1 ablate-k");
    eprintln!("             ablate-selection peercensus-security fairness");
    eprintln!("             bench-selection bench-concurrent bench-consensus all");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    for arg in &args {
        match arg.as_str() {
            "fig1" => btadt_bench::fig1(),
            "fig2" => btadt_bench::fig2(),
            "fig3" => btadt_bench::fig3(),
            "fig4" => btadt_bench::fig4(),
            "fig5" => btadt_bench::fig5(),
            "fig6" => btadt_bench::fig6(),
            "fig7" => btadt_bench::fig7(),
            "fig8" => btadt_bench::fig8(),
            "fig9" => btadt_bench::fig9(),
            "fig10" => btadt_bench::fig10(),
            "fig11" => btadt_bench::fig11(),
            "fig12" => btadt_bench::fig12(),
            "fig13" => btadt_bench::fig13(),
            "fig14" => btadt_bench::fig14(),
            "table1" => btadt_bench::table1_exp(),
            "ablate-k" => btadt_bench::ablate_k(),
            "ablate-selection" => btadt_bench::ablate_selection(),
            "peercensus-security" => btadt_bench::peercensus_security(),
            "fairness" => btadt_bench::fairness(),
            "bench-selection" => btadt_bench::bench_selection(),
            "bench-concurrent" => btadt_bench::bench_concurrent(),
            "bench-consensus" => btadt_bench::bench_consensus(),
            "all" => btadt_bench::all(),
            other => {
                eprintln!("unknown experiment: {other}");
                usage();
            }
        }
    }
}
