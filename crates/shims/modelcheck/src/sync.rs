//! Instrumented sync primitives: the same API surface as the vendored
//! `parking_lot` shim (plus `std::sync::atomic`), with every operation a
//! schedule point when an exploration is running and plain `std`
//! behavior otherwise.

use crate::{block_current, ctx, schedule_op, schedule_op_with, wake_blocked, wake_condvar};
use crate::{BlockOn, Op};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, RwLock as StdRwLock};
use std::time::Duration;

fn addr<T: ?Sized>(t: &T) -> usize {
    t as *const T as *const u8 as usize
}

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// Instrumented mutex. The inner `std` mutex provides real mutual
/// exclusion (so degraded, non-explored use is sound); under exploration
/// the baton serializes threads, `try_lock` on the inner lock can only
/// fail when a model thread genuinely holds it, and contenders park in
/// the model scheduler instead of the OS.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    // `Option` so drop and `Condvar::wait` can take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex {
            inner: StdMutex::new(t),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    fn id(&self) -> usize {
        addr(self)
    }

    fn raw_lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn raw_try_lock(&self) -> Option<std::sync::MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        loop {
            if !schedule_op(Op::MutexLock(self.id())) {
                return MutexGuard {
                    lock: self,
                    inner: Some(self.raw_lock()),
                };
            }
            if let Some(g) = self.raw_try_lock() {
                return MutexGuard {
                    lock: self,
                    inner: Some(g),
                };
            }
            block_current(BlockOn::Mutex(self.id()), Op::MutexLock(self.id()));
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if !schedule_op(Op::MutexTryLock(self.id())) {
            return self.raw_try_lock().map(|g| MutexGuard {
                lock: self,
                inner: Some(g),
            });
        }
        self.raw_try_lock().map(|g| MutexGuard {
            lock: self,
            inner: Some(g),
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(t) => t,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized> MutexGuard<'_, T> {
    fn release(&mut self) {
        if self.inner.take().is_some() {
            let id = self.lock.id();
            // Degraded (or aborting) mode: dropping the std guard above
            // already released the lock; nothing to schedule.
            schedule_op_with(Op::MutexUnlock(id), |st| {
                wake_blocked(st, |on| on == BlockOn::Mutex(id));
            });
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.release();
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard already released")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

/// Instrumented condition variable. Model semantics are deliberately
/// *strict*: no spurious wakeups, `notify_one` wakes the FIFO head —
/// the explorer must be able to prove a protocol never needed luck, and
/// a timed wait's deadline only "fires" when the whole system would
/// otherwise deadlock (so suites can assert the timeout path was never
/// load-bearing).
#[derive(Default)]
pub struct Condvar {
    std: StdCondvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            std: StdCondvar::new(),
        }
    }

    fn id(&self) -> usize {
        addr(self)
    }

    pub fn notify_one(&self) {
        let id = self.id();
        if schedule_op_with(Op::CvNotify(id), |st| wake_condvar(st, id, false)) {
            return;
        }
        self.std.notify_one();
    }

    pub fn notify_all(&self) {
        let id = self.id();
        if schedule_op_with(Op::CvNotify(id), |st| wake_condvar(st, id, true)) {
            return;
        }
        self.std.notify_all();
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let lock = guard.lock;
        if ctx().is_none() {
            let std_guard = guard.inner.take().expect("guard already released");
            let g = self.std.wait(std_guard).unwrap_or_else(|e| e.into_inner());
            return MutexGuard {
                lock,
                inner: Some(g),
            };
        }
        // Two schedule points. First, a pre-park point while we still
        // hold the mutex: in real code the caller's predicate check and
        // the wait's enqueue are separate instructions, so a lock-free
        // notifier can land between them (the classic missed wakeup) —
        // without this point that window would be inexpressible.
        let id = self.id();
        let mid = lock.id();
        schedule_op(Op::CvWait(id));
        // Second: atomically (w.r.t. the schedule) release the mutex,
        // register as a waiter, and park. The guard's std lock is
        // dropped *before* taking the scheduler lock — no other model
        // thread runs in between, the baton is still ours.
        drop(guard.inner.take());
        // The release wakes mutex contenders; the same schedule point
        // parks us on the condvar, so notify cannot slip between them.
        let _ = block_with_unlock(BlockOn::Condvar(id), mid, Op::CvWait(id));
        lock.lock()
    }

    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let lock = guard.lock;
        if ctx().is_none() {
            let std_guard = guard.inner.take().expect("guard already released");
            let (g, res) = self
                .std
                .wait_timeout(std_guard, timeout)
                .unwrap_or_else(|e| e.into_inner());
            return (
                MutexGuard {
                    lock,
                    inner: Some(g),
                },
                res.timed_out(),
            );
        }
        let id = self.id();
        let mid = lock.id();
        // Same pre-park point as `wait`: the check-to-enqueue window.
        schedule_op(Op::CvWait(id));
        drop(guard.inner.take());
        let timed_out = block_with_unlock(BlockOn::CondvarTimed(id), mid, Op::CvWait(id));
        (lock.lock(), timed_out)
    }
}

/// Parks on `on` and, under the same scheduler lock, releases waiters of
/// the mutex `mid` that the caller just dropped — the condvar's
/// "atomically release and wait".
fn block_with_unlock(on: BlockOn, mid: usize, op: Op) -> bool {
    // `block_current` marks us blocked before choosing the next thread;
    // the mutex waiters must be flipped runnable in that same critical
    // section. Reuse schedule_op_with for the wake, then block without
    // an extra decision point in between would be ideal — but a
    // schedule point *is* due here anyway (the unlock), and the park
    // must be atomic with it. So: perform the wake inside
    // `block_current`'s section via a pre-registered effect.
    crate::block_current_with(on, op, move |st| {
        wake_blocked(st, |b| b == BlockOn::Mutex(mid));
    })
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

/// Instrumented reader-writer lock over `std::sync::RwLock`, same
/// pattern as [`Mutex`]: real exclusion from the inner lock, contention
/// routed through the model scheduler.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        RwLock {
            inner: StdRwLock::new(t),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    fn id(&self) -> usize {
        addr(self)
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        loop {
            if !schedule_op(Op::RwRead(self.id())) {
                let g = self.inner.read().unwrap_or_else(|e| e.into_inner());
                return RwLockReadGuard {
                    lock: self,
                    inner: Some(g),
                };
            }
            match self.inner.try_read() {
                Ok(g) => {
                    return RwLockReadGuard {
                        lock: self,
                        inner: Some(g),
                    }
                }
                Err(std::sync::TryLockError::Poisoned(e)) => {
                    return RwLockReadGuard {
                        lock: self,
                        inner: Some(e.into_inner()),
                    }
                }
                Err(std::sync::TryLockError::WouldBlock) => {
                    block_current(BlockOn::RwRead(self.id()), Op::RwRead(self.id()));
                }
            }
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        loop {
            if !schedule_op(Op::RwWrite(self.id())) {
                let g = self.inner.write().unwrap_or_else(|e| e.into_inner());
                return RwLockWriteGuard {
                    lock: self,
                    inner: Some(g),
                };
            }
            match self.inner.try_write() {
                Ok(g) => {
                    return RwLockWriteGuard {
                        lock: self,
                        inner: Some(g),
                    }
                }
                Err(std::sync::TryLockError::Poisoned(e)) => {
                    return RwLockWriteGuard {
                        lock: self,
                        inner: Some(e.into_inner()),
                    }
                }
                Err(std::sync::TryLockError::WouldBlock) => {
                    block_current(BlockOn::RwWrite(self.id()), Op::RwWrite(self.id()));
                }
            }
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(t) => t,
            Err(e) => e.into_inner(),
        }
    }
}

fn rw_release(id: usize) {
    schedule_op_with(Op::RwUnlock(id), |st| {
        wake_blocked(st, |on| {
            on == BlockOn::RwRead(id) || on == BlockOn::RwWrite(id)
        });
    });
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            rw_release(self.lock.id());
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            rw_release(self.lock.id());
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard already released")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------

/// Instrumented `std::sync::atomic` stand-ins. Every operation is a
/// schedule point; the value semantics come from the real `std` atomic
/// underneath (the baton already guarantees sequential consistency
/// between model threads, so the user's `Ordering` is forwarded
/// verbatim but does not affect exploration).
pub mod atomic {
    use super::addr;
    use crate::{schedule_op, Op};
    pub use std::sync::atomic::Ordering;

    /// An instrumented SC fence: a schedule point plus the real fence.
    pub fn fence(order: Ordering) {
        schedule_op(Op::Fence);
        std::sync::atomic::fence(order);
    }

    macro_rules! int_atomic {
        ($name:ident, $std:ident, $ty:ty) => {
            #[derive(Default, Debug)]
            #[repr(transparent)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                pub const fn new(v: $ty) -> Self {
                    $name {
                        inner: std::sync::atomic::$std::new(v),
                    }
                }

                fn pt(&self) {
                    schedule_op(Op::Atomic(addr(self)));
                }

                pub fn load(&self, order: Ordering) -> $ty {
                    self.pt();
                    self.inner.load(order)
                }

                pub fn store(&self, val: $ty, order: Ordering) {
                    self.pt();
                    self.inner.store(val, order)
                }

                pub fn swap(&self, val: $ty, order: Ordering) -> $ty {
                    self.pt();
                    self.inner.swap(val, order)
                }

                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.pt();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.pt();
                    // The model never fails spuriously: weak CAS retry
                    // loops would otherwise generate schedule points
                    // with no semantic content.
                    self.inner.compare_exchange(current, new, success, failure)
                }

                pub fn fetch_add(&self, val: $ty, order: Ordering) -> $ty {
                    self.pt();
                    self.inner.fetch_add(val, order)
                }

                pub fn fetch_sub(&self, val: $ty, order: Ordering) -> $ty {
                    self.pt();
                    self.inner.fetch_sub(val, order)
                }

                pub fn fetch_and(&self, val: $ty, order: Ordering) -> $ty {
                    self.pt();
                    self.inner.fetch_and(val, order)
                }

                pub fn fetch_or(&self, val: $ty, order: Ordering) -> $ty {
                    self.pt();
                    self.inner.fetch_or(val, order)
                }

                pub fn fetch_max(&self, val: $ty, order: Ordering) -> $ty {
                    self.pt();
                    self.inner.fetch_max(val, order)
                }

                pub fn fetch_min(&self, val: $ty, order: Ordering) -> $ty {
                    self.pt();
                    self.inner.fetch_min(val, order)
                }

                pub fn into_inner(self) -> $ty {
                    self.inner.into_inner()
                }

                pub fn get_mut(&mut self) -> &mut $ty {
                    self.inner.get_mut()
                }
            }
        };
    }

    int_atomic!(AtomicU32, AtomicU32, u32);
    int_atomic!(AtomicU64, AtomicU64, u64);
    int_atomic!(AtomicUsize, AtomicUsize, usize);
    int_atomic!(AtomicU8, AtomicU8, u8);
    int_atomic!(AtomicI64, AtomicI64, i64);

    #[derive(Default, Debug)]
    #[repr(transparent)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            AtomicBool {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        fn pt(&self) {
            schedule_op(Op::Atomic(addr(self)));
        }

        pub fn load(&self, order: Ordering) -> bool {
            self.pt();
            self.inner.load(order)
        }

        pub fn store(&self, val: bool, order: Ordering) {
            self.pt();
            self.inner.store(val, order)
        }

        pub fn swap(&self, val: bool, order: Ordering) -> bool {
            self.pt();
            self.inner.swap(val, order)
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            self.pt();
            self.inner.compare_exchange(current, new, success, failure)
        }

        pub fn fetch_or(&self, val: bool, order: Ordering) -> bool {
            self.pt();
            self.inner.fetch_or(val, order)
        }

        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }

        pub fn get_mut(&mut self) -> &mut bool {
            self.inner.get_mut()
        }
    }

    #[derive(Debug)]
    #[repr(transparent)]
    pub struct AtomicPtr<T> {
        inner: std::sync::atomic::AtomicPtr<T>,
    }

    impl<T> Default for AtomicPtr<T> {
        fn default() -> Self {
            AtomicPtr::new(std::ptr::null_mut())
        }
    }

    impl<T> AtomicPtr<T> {
        pub const fn new(p: *mut T) -> Self {
            AtomicPtr {
                inner: std::sync::atomic::AtomicPtr::new(p),
            }
        }

        fn pt(&self) {
            schedule_op(Op::Atomic(addr(self)));
        }

        pub fn load(&self, order: Ordering) -> *mut T {
            self.pt();
            self.inner.load(order)
        }

        pub fn store(&self, val: *mut T, order: Ordering) {
            self.pt();
            self.inner.store(val, order)
        }

        pub fn swap(&self, val: *mut T, order: Ordering) -> *mut T {
            self.pt();
            self.inner.swap(val, order)
        }

        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            self.pt();
            self.inner.compare_exchange(current, new, success, failure)
        }

        pub fn compare_exchange_weak(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            self.pt();
            self.inner.compare_exchange(current, new, success, failure)
        }

        pub fn into_inner(self) -> *mut T {
            self.inner.into_inner()
        }

        pub fn get_mut(&mut self) -> &mut *mut T {
            self.inner.get_mut()
        }
    }
}
