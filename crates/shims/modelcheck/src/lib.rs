//! A vendored, offline, loom-style **deterministic interleaving
//! explorer** for the BT-ADT concurrency core.
//!
//! The crate provides instrumented drop-in sync primitives
//! ([`sync::Mutex`], [`sync::Condvar`], [`sync::RwLock`], the
//! [`sync::atomic`] types) and a model [`thread::spawn`]. Inside
//! [`explore`], every synchronization operation is a **schedule point**:
//! the calling thread hands a baton to a cooperative scheduler, which
//! decides — by depth-first search over the tree of schedules — which
//! model thread runs next. Outside an exploration the same types degrade
//! to their `std` equivalents, so a `--cfg btadt_model` build of the
//! whole workspace still behaves normally when code runs on ordinary
//! threads.
//!
//! # Model
//!
//! * **Sequential consistency over interleavings.** Exactly one model
//!   thread runs at a time; the baton handoff is a real mutex+condvar
//!   pair, so every write a thread makes is visible to whichever thread
//!   the scheduler picks next. This explores *interleavings* (lost
//!   wakeups, lock-order deadlocks, use-after-free windows, atomicity
//!   violations), not weak-memory reorderings — `Ordering` arguments are
//!   executed verbatim but do not constrain the search.
//! * **Bounded preemptions** (CHESS-style). Switching away from a thread
//!   that could still run costs one unit of the preemption budget;
//!   switches at blocking points are free. Small bounds hit most real
//!   bugs while keeping the schedule tree exhaustively enumerable.
//! * **Deterministic and replayable.** The DFS enumerates schedules in a
//!   fixed order derived from [`Config::seed`]; a failing run reports
//!   the exact decision vector, and [`Config::replay`] re-executes it.
//!   Each branch decision also records a fingerprint of the operation
//!   it was taken at, so a program that is *not* a deterministic
//!   function of the schedule is diagnosed instead of silently
//!   mis-explored.
//! * **Failure detection.** A panic on any model thread, a global
//!   deadlock (no thread runnable, counting a timed `wait_timeout` as
//!   wake-eligible only as a last resort), or a runaway execution
//!   ([`Config::max_steps`]) aborts the exploration and reports the
//!   triggering schedule.
//!
//! # Adding a model-check target
//!
//! A target is an ordinary function that builds shared state, spawns
//! model threads, joins them, and asserts invariants — using the
//! instrumented primitives (via the `btadt_core::sync` facade under
//! `--cfg btadt_model`, or this crate's [`sync`] module directly):
//!
//! ```ignore
//! use btadt_modelcheck::{explore, thread, Config};
//! use std::sync::Arc;
//!
//! let report = explore(Config::new("my-target").preemptions(3), || {
//!     let v = Arc::new(btadt_modelcheck::sync::atomic::AtomicU64::new(0));
//!     let w = {
//!         let v = v.clone();
//!         thread::spawn(move || v.fetch_add(1, std::sync::atomic::Ordering::SeqCst))
//!     };
//!     v.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
//!     w.join();
//!     assert_eq!(v.load(std::sync::atomic::Ordering::SeqCst), 2);
//! });
//! assert!(report.failure.is_none(), "{:?}", report.failure);
//! assert!(report.complete, "budget too small for exhaustive DFS");
//! println!("{report}"); // the exploration certificate
//! ```
//!
//! Keep targets *small*: the schedule tree grows combinatorially with
//! the number of schedule points and threads. Model the protocol kernel
//! (the lock/CAS/condvar skeleton), not the whole subsystem, unless the
//! subsystem itself is small enough to enumerate (the epoch domain is;
//! the full commit pipeline is not). Tune [`Config::preemptions`] until
//! the run is exhaustive (`report.complete`) at ≥ the schedule count
//! your certificate asserts.

pub mod sync;
pub mod thread;

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering as StdOrd};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Exploration parameters. Construct with [`Config::new`], then chain
/// setters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Target name, echoed in certificates and failure reports.
    pub name: String,
    /// Preemption budget per execution (CHESS bound). Switches at
    /// blocking points are always free.
    pub preemptions: usize,
    /// Stop (with `complete = false`) after this many schedules.
    pub max_schedules: usize,
    /// Per-execution schedule-point budget — a tripwire for livelocks
    /// in the modeled code, not a tuning knob.
    pub max_steps: usize,
    /// Deterministic tie-break seed: permutes the order DFS children are
    /// visited in. Any value is exhaustive; the certificate prints it so
    /// a run is reproducible verbatim.
    pub seed: u64,
    /// Re-execute exactly this decision vector instead of exploring —
    /// the replay handle printed by a failure report.
    pub replay: Option<Vec<u8>>,
}

impl Config {
    pub fn new(name: &str) -> Self {
        Config {
            name: name.to_string(),
            preemptions: 2,
            max_schedules: 1_000_000,
            max_steps: 100_000,
            seed: 0,
            replay: None,
        }
    }

    pub fn preemptions(mut self, p: usize) -> Self {
        self.preemptions = p;
        self
    }

    pub fn max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n;
        self
    }

    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    pub fn replay(mut self, schedule: Vec<u8>) -> Self {
        self.replay = Some(schedule);
        self
    }
}

/// Why an execution failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked; the payload's `Display` if it was a
    /// string, `"<non-string panic>"` otherwise.
    Panic(String),
    /// No thread was runnable and none could be woken: every thread
    /// blocked on a mutex, condvar, or join.
    Deadlock,
    /// An execution exceeded [`Config::max_steps`] schedule points.
    StepLimit,
}

/// A failing schedule: the DFS decision vector that reproduces it via
/// [`Config::replay`].
#[derive(Clone, Debug)]
pub struct Failure {
    pub kind: FailureKind,
    pub schedule: Vec<u8>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sched: Vec<String> = self.schedule.iter().map(|c| c.to_string()).collect();
        write!(
            f,
            "{:?} at schedule [{}] (pin with Config::replay)",
            self.kind,
            sched.join(",")
        )
    }
}

/// Exploration certificate: how many distinct schedules ran, whether the
/// DFS was exhausted within budget, and the first failure (if any).
#[derive(Debug)]
pub struct Report {
    /// Target name from the [`Config`].
    pub name: String,
    /// Distinct schedules executed (every DFS leaf reached).
    pub schedules: usize,
    /// `true` iff the DFS enumerated *every* schedule within the
    /// preemption bound before `max_schedules` ran out.
    pub complete: bool,
    /// The seed the enumeration order was derived from.
    pub seed: u64,
    /// First failing schedule, or `None` if all passed.
    pub failure: Option<Failure>,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "modelcheck[{}]: {} schedules, complete={}, seed={}{}",
            self.name,
            self.schedules,
            self.complete,
            self.seed,
            match &self.failure {
                Some(fa) => format!(", FAILED: {fa}"),
                None => ", ok".to_string(),
            }
        )
    }
}

// ---------------------------------------------------------------------
// Scheduler internals
// ---------------------------------------------------------------------

/// What a blocked thread is waiting for. Ids are stable addresses of the
/// primitive for the duration of an execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BlockOn {
    Mutex(usize),
    RwRead(usize),
    RwWrite(usize),
    Condvar(usize),
    /// Timed condvar wait: wake-eligible (with `timed_out = true`) when
    /// the system would otherwise deadlock.
    CondvarTimed(usize),
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TState {
    Runnable,
    Blocked(BlockOn),
    Finished,
}

#[derive(Clone, Copy, Debug)]
struct Thread {
    state: TState,
    /// FIFO ticket for condvar queues.
    blocked_seq: u64,
    /// Set when a timed wait was released by the deadlock-avoidance
    /// timeout rather than a notify.
    woke_timeout: bool,
}

/// One branch point: which candidate was taken, out of how many.
#[derive(Clone, Copy, Debug)]
struct Decision {
    chosen: u8,
    num: u8,
    /// Fingerprint of (active thread, operation) at the branch — replay
    /// divergence is detected by comparing these along the forced
    /// prefix.
    fp: u64,
}

/// Operation descriptor, used for fingerprints and diagnostics only.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Op {
    Atomic(usize),
    Fence,
    MutexLock(usize),
    MutexTryLock(usize),
    MutexUnlock(usize),
    RwRead(usize),
    RwWrite(usize),
    RwUnlock(usize),
    CvWait(usize),
    CvNotify(usize),
    Spawn(usize),
    Join(usize),
    Yield,
    Finish,
}

impl Op {
    fn fp(&self, tid: usize) -> u64 {
        let (code, id) = match *self {
            Op::Atomic(a) => (1u64, a),
            Op::Fence => (2, 0),
            Op::MutexLock(a) => (3, a),
            Op::MutexTryLock(a) => (4, a),
            Op::MutexUnlock(a) => (5, a),
            Op::RwRead(a) => (6, a),
            Op::RwWrite(a) => (7, a),
            Op::RwUnlock(a) => (8, a),
            Op::CvWait(a) => (9, a),
            Op::CvNotify(a) => (10, a),
            Op::Spawn(t) => (11, t),
            Op::Join(t) => (12, t),
            Op::Yield => (13, 0),
            Op::Finish => (14, 0),
        };
        // Addresses vary run to run; fingerprint only the op class and
        // thread, which is stable for a deterministic program. The id
        // still disambiguates same-class ops on different primitives
        // within one run, so fold in a small stable hash of its low
        // bits' *rank* — omitted: class+tid suffices to catch gross
        // divergence without false positives from allocator noise.
        let _ = id;
        code ^ (tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

pub(crate) struct St {
    threads: Vec<Thread>,
    active: usize,
    seq: u64,
    steps: usize,
    used_preemptions: usize,
    decisions: Vec<Decision>,
    forced: Vec<u8>,
    expected_fps: Vec<u64>,
    failure: Option<FailureKind>,
    abort: bool,
    timeouts_fired: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Join-result rendezvous is per-handle (in `thread`); this counts
    /// live (not Finished) threads for done detection.
    live: usize,
    cfg_preemptions: usize,
    cfg_max_steps: usize,
    cfg_seed: u64,
}

pub(crate) struct Exec {
    mu: StdMutex<St>,
    cv: StdCondvar,
}

/// Sentinel unwind payload used to tear model threads down after a
/// failure was recorded elsewhere.
struct Abort;

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Exec>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

pub(crate) fn ctx() -> Option<(Arc<Exec>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Whether the calling thread is a model thread inside an exploration.
pub fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

impl Exec {
    fn new(cfg: &Config, forced: Vec<u8>, expected_fps: Vec<u64>) -> Arc<Exec> {
        Arc::new(Exec {
            mu: StdMutex::new(St {
                threads: vec![Thread {
                    state: TState::Runnable,
                    blocked_seq: 0,
                    woke_timeout: false,
                }],
                active: 0,
                seq: 0,
                steps: 0,
                used_preemptions: 0,
                decisions: Vec::new(),
                forced,
                expected_fps,
                failure: None,
                abort: false,
                timeouts_fired: 0,
                handles: Vec::new(),
                live: 1,
                cfg_preemptions: cfg.preemptions,
                cfg_max_steps: cfg.max_steps,
                cfg_seed: cfg.seed,
            }),
            cv: StdCondvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, St> {
        self.mu.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records a failure, flips the abort flag, and wakes every parked
    /// model thread so the execution can tear itself down.
    fn fail(&self, st: &mut St, kind: FailureKind) {
        if st.failure.is_none() {
            st.failure = Some(kind);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Picks the next thread to run. `cur_runnable` says whether the
    /// thread currently holding the baton could continue (switching away
    /// from it then costs a preemption). Called with the scheduler lock
    /// held; updates `st.active`. Returns `false` if the execution is
    /// over (all finished, or failed).
    fn advance(&self, st: &mut St, cur_runnable: bool, op: Op) -> bool {
        if st.abort {
            return false;
        }
        let me = st.active;
        let mut runnable: Vec<usize> = Vec::with_capacity(st.threads.len());
        for (t, th) in st.threads.iter().enumerate() {
            if th.state == TState::Runnable && t != me {
                runnable.push(t);
            }
        }
        let mut timeout_wake = false;
        let cands: Vec<usize> = if cur_runnable {
            if st.used_preemptions < st.cfg_preemptions && !runnable.is_empty() {
                let mut c = vec![me];
                c.extend(runnable);
                c
            } else {
                vec![me]
            }
        } else if !runnable.is_empty() {
            runnable
        } else {
            // Nothing runnable. Timed condvar waiters are wake-eligible
            // as a last resort (this is how a `wait_timeout` deadline
            // "fires" in the model); otherwise this is a deadlock.
            let timed: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, th)| matches!(th.state, TState::Blocked(BlockOn::CondvarTimed(_))))
                .map(|(t, _)| t)
                .collect();
            if timed.is_empty() {
                if st.live == 0 {
                    self.cv.notify_all();
                    return false;
                }
                self.fail(st, FailureKind::Deadlock);
                return false;
            }
            timeout_wake = true;
            timed
        };
        let choice = self.pick(st, &cands, op);
        let next = cands[choice];
        if timeout_wake {
            st.threads[next].state = TState::Runnable;
            st.threads[next].woke_timeout = true;
            st.timeouts_fired += 1;
        }
        if cur_runnable && next != me {
            st.used_preemptions += 1;
        }
        st.active = next;
        if next != me {
            self.cv.notify_all();
        }
        true
    }

    /// DFS branch selection: forced prefix first, then the first child;
    /// single-candidate points are not branches. The candidate order is
    /// rotated by a seed-derived offset so different seeds enumerate the
    /// same tree in different orders.
    fn pick(&self, st: &mut St, cands: &[usize], op: Op) -> usize {
        if cands.len() <= 1 {
            return 0;
        }
        let d = st.decisions.len();
        let fp = op.fp(st.active);
        let rot = if st.cfg_seed == 0 {
            0
        } else {
            let mut h = st.cfg_seed ^ (d as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            h ^= h >> 33;
            (h % cands.len() as u64) as usize
        };
        let raw = if d < st.forced.len() {
            if st.expected_fps.len() > d && st.expected_fps[d] != fp {
                // The modeled program is not a deterministic function of
                // the schedule — exploring it would be meaningless.
                self.fail(
                    st,
                    FailureKind::Panic(format!(
                        "nondeterministic target: replay diverged at decision {d} \
                         (op {op:?} on thread {})",
                        st.active
                    )),
                );
                return 0;
            }
            let f = st.forced[d] as usize;
            if f >= cands.len() {
                self.fail(
                    st,
                    FailureKind::Panic(format!(
                        "nondeterministic target: decision {d} has {} candidates, \
                         schedule wants {f}",
                        cands.len()
                    )),
                );
                return 0;
            }
            f
        } else {
            0
        };
        st.decisions.push(Decision {
            chosen: raw as u8,
            num: cands.len() as u8,
            fp,
        });
        // Apply the seed rotation when *interpreting* the logical choice,
        // so forced prefixes and reported schedules stay seed-portable
        // within one run (the same seed must be used to replay).
        (raw + rot) % cands.len()
    }

    /// Parks the calling model thread until the scheduler hands it the
    /// baton again. Must be called with the scheduler lock held; returns
    /// with it held. Unwinds with [`Abort`] if the execution died.
    fn wait_for_baton<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, St>,
        tid: usize,
    ) -> std::sync::MutexGuard<'a, St> {
        while st.active != tid || st.threads[tid].state != TState::Runnable {
            if st.abort {
                drop(st);
                resume_unwind(Box::new(Abort));
            }
            if st.live == 0 {
                // Execution completed while we were parked — only
                // possible during teardown.
                drop(st);
                resume_unwind(Box::new(Abort));
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.abort {
            drop(st);
            resume_unwind(Box::new(Abort));
        }
        st
    }
}

/// The schedule point every instrumented operation funnels through.
/// Returns `true` if the op should run instrumented (model semantics),
/// `false` if the caller must degrade to plain `std` behavior (no
/// exploration in progress, or the execution is aborting).
pub(crate) fn schedule_op(op: Op) -> bool {
    schedule_op_with(op, |_| {})
}

/// [`schedule_op`] with a pre-switch effect run under the scheduler
/// lock — used by unlock/notify/finish to flip waiters runnable *before*
/// the next-thread decision, so they are immediately eligible.
pub(crate) fn schedule_op_with<E: FnOnce(&mut St)>(op: Op, effect: E) -> bool {
    let Some((exec, tid)) = ctx() else {
        return false;
    };
    let mut st = exec.lock();
    if st.abort {
        return false;
    }
    debug_assert_eq!(st.active, tid, "baton violation");
    st.steps += 1;
    if st.steps > st.cfg_max_steps {
        exec.fail(&mut st, FailureKind::StepLimit);
        drop(st);
        resume_unwind(Box::new(Abort));
    }
    effect(&mut st);
    if !exec.advance(&mut st, true, op) {
        drop(st);
        resume_unwind(Box::new(Abort));
    }
    if st.active != tid {
        let st = exec.wait_for_baton(st, tid);
        drop(st);
    }
    true
}

/// Blocks the calling model thread on `on`, handing the baton away.
/// Returns whether the wake came from the timeout fallback, or panics
/// with [`Abort`] on teardown. Calling this outside a model context is
/// a bug.
pub(crate) fn block_current(on: BlockOn, op: Op) -> bool {
    block_current_with(on, op, |_| {})
}

/// [`block_current`] with a pre-block effect run under the scheduler
/// lock — the condvar's "atomically release the mutex and wait" needs
/// the mutex wake and the park in one critical section.
pub(crate) fn block_current_with<E: FnOnce(&mut St)>(on: BlockOn, op: Op, effect: E) -> bool {
    let (exec, tid) = ctx().expect("block_current outside a model context");
    let mut st = exec.lock();
    if st.abort {
        drop(st);
        resume_unwind(Box::new(Abort));
    }
    debug_assert_eq!(st.active, tid, "baton violation");
    st.steps += 1;
    if st.steps > st.cfg_max_steps {
        exec.fail(&mut st, FailureKind::StepLimit);
        drop(st);
        resume_unwind(Box::new(Abort));
    }
    effect(&mut st);
    st.seq += 1;
    let seq = st.seq;
    st.threads[tid].state = TState::Blocked(on);
    st.threads[tid].blocked_seq = seq;
    st.threads[tid].woke_timeout = false;
    if !exec.advance(&mut st, false, op) {
        drop(st);
        resume_unwind(Box::new(Abort));
    }
    let mut st = exec.wait_for_baton(st, tid);
    let timed_out = st.threads[tid].woke_timeout;
    st.threads[tid].woke_timeout = false;
    drop(st);
    timed_out
}

/// Wakes every thread blocked on a predicate (mutex unlock, rwlock
/// release): they become runnable and re-contend when scheduled.
pub(crate) fn wake_blocked(st: &mut St, pred: impl Fn(BlockOn) -> bool) {
    for th in st.threads.iter_mut() {
        if let TState::Blocked(on) = th.state {
            if pred(on) {
                th.state = TState::Runnable;
            }
        }
    }
}

/// Wakes condvar waiters on `id`: the FIFO head for `notify_one`
/// (`all = false`), everyone for `notify_all`. Timed and untimed waiters
/// share the queue.
pub(crate) fn wake_condvar(st: &mut St, id: usize, all: bool) {
    if all {
        wake_blocked(
            st,
            |on| matches!(on, BlockOn::Condvar(i) | BlockOn::CondvarTimed(i) if i == id),
        );
        return;
    }
    let mut best: Option<(u64, usize)> = None;
    for (t, th) in st.threads.iter().enumerate() {
        if let TState::Blocked(BlockOn::Condvar(i) | BlockOn::CondvarTimed(i)) = th.state {
            if i == id && best.map(|(s, _)| th.blocked_seq < s).unwrap_or(true) {
                best = Some((th.blocked_seq, t));
            }
        }
    }
    if let Some((_, t)) = best {
        st.threads[t].state = TState::Runnable;
    }
}

// Spawning/joining/finishing live here so `thread` can stay a thin
// facade over the scheduler.

pub(crate) fn register_thread(exec: &Arc<Exec>) -> usize {
    let mut st = exec.lock();
    let tid = st.threads.len();
    st.threads.push(Thread {
        state: TState::Runnable,
        blocked_seq: 0,
        woke_timeout: false,
    });
    st.live += 1;
    tid
}

pub(crate) fn push_handle(exec: &Arc<Exec>, h: std::thread::JoinHandle<()>) {
    exec.lock().handles.push(h);
}

/// Body wrapper for every model OS thread (root and spawned).
pub(crate) fn model_thread_main(exec: Arc<Exec>, tid: usize, body: impl FnOnce()) {
    CTX.with(|c| *c.borrow_mut() = Some((exec.clone(), tid)));
    // Wait to be scheduled for the first time (the root starts active).
    {
        let st = exec.lock();
        if st.active != tid {
            match catch_unwind(AssertUnwindSafe(|| {
                let st = exec.wait_for_baton(st, tid);
                drop(st);
            })) {
                Ok(()) => {}
                Err(_) => {
                    finish_thread(&exec, tid, true);
                    CTX.with(|c| *c.borrow_mut() = None);
                    return;
                }
            }
        }
    }
    let result = catch_unwind(AssertUnwindSafe(body));
    match result {
        Ok(()) => finish_thread(&exec, tid, false),
        Err(p) => {
            if p.downcast_ref::<Abort>().is_none() {
                let msg = panic_message(&p);
                let mut st = exec.lock();
                exec.fail(&mut st, FailureKind::Panic(msg));
            }
            finish_thread(&exec, tid, true);
        }
    }
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Marks `tid` finished, wakes joiners, and hands the baton on (or
/// declares the execution done/deadlocked). `teardown` skips scheduling
/// during an abort.
pub(crate) fn finish_thread(exec: &Arc<Exec>, tid: usize, teardown: bool) {
    let mut st = exec.lock();
    if st.threads[tid].state != TState::Finished {
        st.threads[tid].state = TState::Finished;
        st.live -= 1;
    }
    wake_blocked(&mut st, |on| on == BlockOn::Join(tid));
    if st.abort || teardown {
        exec.cv.notify_all();
        return;
    }
    if st.live == 0 {
        exec.cv.notify_all();
        return;
    }
    let _ = exec.advance(&mut st, false, Op::Finish);
}

pub(crate) fn thread_finished(exec: &Arc<Exec>, tid: usize) -> bool {
    exec.lock().threads[tid].state == TState::Finished
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

/// One exploration at a time per process: model threads use process-wide
/// thread-locals and the panic hook, and the suites' schedule counts
/// assume an otherwise quiet scheduler.
static EXPLORE_LOCK: StdMutex<()> = StdMutex::new(());

/// Model threads panic freely while the DFS probes failing schedules;
/// keep the default hook from spamming stderr for them. Installed once,
/// chains to the previous hook for non-model threads. The hook also
/// records the failure and flips the abort flag *before* the unwind
/// starts dropping guards, so every parked thread is woken and releases
/// its locks while the panicking thread's drops degrade to plain `std`
/// operations — teardown cannot deadlock on a lock a parked thread
/// still holds.
static HOOK_INSTALLED: AtomicBool = AtomicBool::new(false);

fn install_hook() {
    if HOOK_INSTALLED.swap(true, StdOrd::SeqCst) {
        return;
    }
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if let Some((exec, _)) = ctx() {
            let msg = if let Some(s) = info.payload().downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = info.payload().downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string panic>".to_string()
            };
            let mut st = exec.lock();
            exec.fail(&mut st, FailureKind::Panic(msg));
            return;
        }
        prev(info);
    }));
}

/// Explores every schedule of `body` within the configured preemption
/// bound, or replays one schedule if [`Config::replay`] is set. The
/// closure runs once per schedule on a fresh OS thread (so thread-locals
/// start clean every execution); it must be a deterministic function of
/// the schedule.
pub fn explore<F>(cfg: Config, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let _g = EXPLORE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    install_hook();
    let body = Arc::new(body);
    let replay_mode = cfg.replay.is_some();
    let mut forced: Vec<u8> = cfg.replay.clone().unwrap_or_default();
    let mut expected_fps: Vec<u64> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let exec = Exec::new(
            &cfg,
            std::mem::take(&mut forced),
            std::mem::take(&mut expected_fps),
        );
        run_one(&exec, body.clone());
        schedules += 1;
        let mut st = exec.lock();
        if let Some(kind) = st.failure.take() {
            let schedule = st.decisions.iter().map(|d| d.chosen).collect();
            return Report {
                name: cfg.name.clone(),
                schedules,
                complete: false,
                seed: cfg.seed,
                failure: Some(Failure { kind, schedule }),
            };
        }
        if replay_mode {
            return Report {
                name: cfg.name.clone(),
                schedules,
                complete: true,
                seed: cfg.seed,
                failure: None,
            };
        }
        // Backtrack: advance the deepest decision with an unvisited
        // sibling; drop everything below it.
        let mut dec = std::mem::take(&mut st.decisions);
        drop(st);
        while let Some(last) = dec.last() {
            if (last.chosen as usize) + 1 < last.num as usize {
                break;
            }
            dec.pop();
        }
        let Some(last) = dec.last_mut() else {
            return Report {
                name: cfg.name.clone(),
                schedules,
                complete: true,
                seed: cfg.seed,
                failure: None,
            };
        };
        last.chosen += 1;
        forced = dec.iter().map(|d| d.chosen).collect();
        expected_fps = dec.iter().map(|d| d.fp).collect();
        if schedules >= cfg.max_schedules {
            return Report {
                name: cfg.name.clone(),
                schedules,
                complete: false,
                seed: cfg.seed,
                failure: None,
            };
        }
    }
}

/// Replays one schedule (from a failure report) and returns its failure,
/// if it still fails — the building block for pinned regression tests.
pub fn replay<F>(name: &str, schedule: Vec<u8>, body: F) -> Option<Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    explore(Config::new(name).replay(schedule), body).failure
}

fn run_one(exec: &Arc<Exec>, body: Arc<dyn Fn() + Send + Sync>) {
    let e2 = exec.clone();
    let root = std::thread::Builder::new()
        .name("mc-root".into())
        .spawn(move || model_thread_main(e2.clone(), 0, move || body()))
        .expect("spawn model root");
    let _ = root.join();
    // Children may still be running (or parked); join them all. New
    // handles can appear while we drain if grandchildren spawn.
    loop {
        let mut st = exec.lock();
        let handles = std::mem::take(&mut st.handles);
        drop(st);
        if handles.is_empty() {
            break;
        }
        for h in handles {
            let _ = h.join();
        }
    }
    // Belt and braces: an aborted execution must not leave the failure
    // slot empty if a thread died without recording one.
    let st = exec.lock();
    debug_assert!(
        st.live == 0 || st.failure.is_some() || st.abort,
        "execution ended with live threads and no failure"
    );
}

/// Number of deadline-fallback wakeups the *last completed* schedule
/// point recorded — exposed for suites that assert a protocol never
/// relies on its timeout. Only meaningful inside a model thread.
pub fn timeouts_fired() -> usize {
    match ctx() {
        Some((exec, _)) => exec.lock().timeouts_fired,
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Condvar, Mutex};
    use super::*;

    #[test]
    fn atomicity_violation_is_found() {
        // Classic lost update: load + store instead of fetch_add. Some
        // schedule interleaves the two read-modify-writes.
        let report = explore(Config::new("lost-update").preemptions(2), || {
            let v = Arc::new(AtomicU64::new(0));
            let v2 = v.clone();
            let w = thread::spawn(move || {
                let x = v2.load(Ordering::SeqCst);
                v2.store(x + 1, Ordering::SeqCst);
            });
            let x = v.load(Ordering::SeqCst);
            v.store(x + 1, Ordering::SeqCst);
            w.join();
            assert_eq!(v.load(Ordering::SeqCst), 2, "lost update");
        });
        let failure = report.failure.expect("the race must be found");
        assert!(matches!(failure.kind, FailureKind::Panic(ref m) if m.contains("lost update")));
        // And the reported schedule replays to the same failure.
        let pinned = replay("lost-update-replay", failure.schedule, || {
            let v = Arc::new(AtomicU64::new(0));
            let v2 = v.clone();
            let w = thread::spawn(move || {
                let x = v2.load(Ordering::SeqCst);
                v2.store(x + 1, Ordering::SeqCst);
            });
            let x = v.load(Ordering::SeqCst);
            v.store(x + 1, Ordering::SeqCst);
            w.join();
            assert_eq!(v.load(Ordering::SeqCst), 2, "lost update");
        });
        assert!(pinned.is_some(), "pinned schedule must still fail");
    }

    #[test]
    fn correct_counter_passes_exhaustively() {
        let report = explore(Config::new("fetch-add").preemptions(3), || {
            let v = Arc::new(AtomicU64::new(0));
            let v2 = v.clone();
            let w = thread::spawn(move || {
                v2.fetch_add(1, Ordering::SeqCst);
            });
            v.fetch_add(1, Ordering::SeqCst);
            w.join();
            assert_eq!(v.load(Ordering::SeqCst), 2);
        });
        assert!(report.failure.is_none(), "{}", report);
        assert!(report.complete);
        assert!(report.schedules > 1, "{}", report);
    }

    #[test]
    fn lock_order_deadlock_is_found() {
        let report = explore(Config::new("ab-ba").preemptions(2), || {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let (a2, b2) = (a.clone(), b.clone());
            let w = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop((_ga, _gb));
            w.join();
        });
        let failure = report.failure.expect("AB-BA deadlock must be found");
        assert_eq!(failure.kind, FailureKind::Deadlock);
    }

    #[test]
    fn mutex_protects_its_data() {
        let report = explore(Config::new("mutex-incr").preemptions(3), || {
            let v = Arc::new(Mutex::new(0u64));
            let v2 = v.clone();
            let w = thread::spawn(move || {
                let mut g = v2.lock();
                *g += 1;
            });
            {
                let mut g = v.lock();
                *g += 1;
            }
            w.join();
            assert_eq!(*v.lock(), 2);
        });
        assert!(report.failure.is_none(), "{}", report);
        assert!(report.complete);
    }

    #[test]
    fn missed_wakeup_without_the_lock_bridge_is_found() {
        // Waiter: check-then-wait under the lock. Notifier: flips the
        // flag and notifies WITHOUT touching the lock — the notify can
        // land between the waiter's check and its park.
        let report = explore(Config::new("missed-wakeup").preemptions(2), || {
            let flag = Arc::new(AtomicU64::new(0));
            let lk = Arc::new(Mutex::new(()));
            let cv = Arc::new(Condvar::new());
            let (f2, l2, c2) = (flag.clone(), lk.clone(), cv.clone());
            let w = thread::spawn(move || {
                let mut g = l2.lock();
                while f2.load(Ordering::SeqCst) == 0 {
                    g = c2.wait(g);
                }
                drop(g);
            });
            flag.store(1, Ordering::SeqCst);
            cv.notify_all(); // no lock bridge: racy
            w.join();
        });
        let failure = report
            .failure
            .expect("missed wakeup must deadlock some schedule");
        assert_eq!(failure.kind, FailureKind::Deadlock);
    }

    #[test]
    fn lock_bridge_fixes_the_missed_wakeup() {
        let report = explore(Config::new("bridged-wakeup").preemptions(3), || {
            let flag = Arc::new(AtomicU64::new(0));
            let lk = Arc::new(Mutex::new(()));
            let cv = Arc::new(Condvar::new());
            let (f2, l2, c2) = (flag.clone(), lk.clone(), cv.clone());
            let w = thread::spawn(move || {
                let mut g = l2.lock();
                while f2.load(Ordering::SeqCst) == 0 {
                    g = c2.wait(g);
                }
                drop(g);
            });
            flag.store(1, Ordering::SeqCst);
            drop(lk.lock()); // the bridge: order against check-then-park
            cv.notify_all();
            w.join();
        });
        assert!(report.failure.is_none(), "{}", report);
        assert!(report.complete, "{}", report);
    }

    #[test]
    fn exploration_is_deterministic_for_a_seed() {
        let run = |seed| {
            explore(Config::new("det").preemptions(2).seed(seed), || {
                let v = Arc::new(AtomicU64::new(0));
                let v2 = v.clone();
                let w = thread::spawn(move || {
                    v2.fetch_add(3, Ordering::SeqCst);
                    v2.fetch_add(5, Ordering::SeqCst);
                });
                v.fetch_add(7, Ordering::SeqCst);
                w.join();
                assert_eq!(v.load(Ordering::SeqCst), 15);
            })
        };
        let (a, b) = (run(0), run(0));
        assert_eq!(a.schedules, b.schedules);
        assert!(a.complete && b.complete);
        // A different seed enumerates the same tree (same leaf count).
        let c = run(42);
        assert_eq!(a.schedules, c.schedules);
    }

    #[test]
    fn degrades_to_std_outside_an_exploration() {
        let v = Arc::new(AtomicU64::new(0));
        let m = Arc::new(Mutex::new(0u64));
        let (v2, m2) = (v.clone(), m.clone());
        let w = thread::spawn(move || {
            v2.fetch_add(1, Ordering::SeqCst);
            *m2.lock() += 1;
        });
        v.fetch_add(1, Ordering::SeqCst);
        *m.lock() += 1;
        w.join();
        assert_eq!(v.load(Ordering::SeqCst), 2);
        assert_eq!(*m.lock(), 2);
    }
}
