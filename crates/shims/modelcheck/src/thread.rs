//! Model thread spawn/join. Inside an exploration, spawned closures run
//! on real (fresh) OS threads serialized by the scheduler baton — so
//! `thread_local!` state starts clean every execution — and `join`
//! parks in the model scheduler. Outside an exploration this is plain
//! `std::thread`.

use crate::{
    block_current, ctx, model_thread_main, push_handle, register_thread, schedule_op,
    thread_finished, BlockOn, Op,
};
use std::sync::{Arc, Mutex as StdMutex};

/// Handle to a model (or plain) spawned thread.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        tid: usize,
        slot: Arc<StdMutex<Option<T>>>,
    },
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. Unlike
    /// `std`, a panicking model thread aborts the whole execution (the
    /// explorer reports it), so this returns the value directly.
    pub fn join(self) -> T {
        match self.inner {
            Inner::Std(h) => match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            },
            Inner::Model { tid, slot } => {
                let (exec, _) = ctx().expect("model JoinHandle joined outside the model");
                loop {
                    schedule_op(Op::Join(tid));
                    if thread_finished(&exec, tid) {
                        break;
                    }
                    block_current(BlockOn::Join(tid), Op::Join(tid));
                }
                slot.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("joined thread left no result")
            }
        }
    }
}

/// Spawns a thread. Under exploration the child is registered with the
/// scheduler and starts parked; the spawn itself is a schedule point
/// (the child becomes a candidate immediately).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Some((exec, _)) = ctx() else {
        return JoinHandle {
            inner: Inner::Std(std::thread::spawn(f)),
        };
    };
    let tid = register_thread(&exec);
    let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
    let slot2 = slot.clone();
    let e2 = exec.clone();
    let os = std::thread::Builder::new()
        .name(format!("mc-{tid}"))
        .spawn(move || {
            model_thread_main(e2, tid, move || {
                let v = f();
                *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
            })
        })
        .expect("spawn model thread");
    push_handle(&exec, os);
    schedule_op(Op::Spawn(tid));
    JoinHandle {
        inner: Inner::Model { tid, slot },
    }
}

/// A bare schedule point — model equivalent of `std::thread::yield_now`.
pub fn yield_now() {
    if !schedule_op(Op::Yield) {
        std::thread::yield_now();
    }
}
