//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset used by `crates/bench/benches/*` — groups,
//! `bench_function` / `bench_with_input`, `Throughput::Elements`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple but honest measurement loop: each benchmark is warmed
//! up, then timed over `sample_size` samples whose iteration counts are
//! auto-calibrated to a per-sample time budget. Results print as
//! `name  time: [median]  thrpt: [...]`, close enough to criterion's
//! format for eyeballing and for the BENCH_* extraction scripts.
//!
//! No statistics beyond min/median/max, no HTML reports, no comparison
//! against saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `name` or `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by `iter`.
    median_ns: f64,
    samples: usize,
    sample_budget: Duration,
}

impl Bencher {
    /// Times `f`, storing the median over the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit the per-sample budget?
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.sample_budget / 4 || iters >= 1 << 24 {
                break;
            }
            iters = (iters * 4).min(1 << 24);
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = per_iter[per_iter.len() / 2];
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1_000_000.0 {
        format!("{:.2} M{unit}/s", per_sec / 1_000_000.0)
    } else if per_sec >= 1_000.0 {
        format!("{:.2} K{unit}/s", per_sec / 1_000.0)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

/// The top-level harness.
pub struct Criterion {
    samples: usize,
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: 11,
            sample_budget: Duration::from_millis(40),
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            samples_override: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        run_one(id.label.clone(), self.samples, self.sample_budget, None, f);
    }

    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    samples_override: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples_override = Some(n.clamp(3, 101));
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        run_one(
            format!("{}/{}", self.name, id.label),
            self.samples_override.unwrap_or(self.criterion.samples),
            self.criterion.sample_budget,
            self.throughput,
            f,
        );
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: String,
    samples: usize,
    sample_budget: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        median_ns: f64::NAN,
        samples,
        sample_budget,
    };
    f(&mut bencher);
    let ns = bencher.median_ns;
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            format!("   thrpt: [{}]", fmt_rate(n as f64 * 1e9 / ns, "elem"))
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            format!("   thrpt: [{}]", fmt_rate(n as f64 * 1e9 / ns, "B"))
        }
        _ => String::new(),
    };
    println!("{label:<48} time: [{}]{thrpt}", fmt_ns(ns));
}

/// Groups benchmark functions under one callable.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            let _ = $cfg;
            $($target(c);)+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            samples: 3,
            sample_budget: Duration::from_millis(2),
        };
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("a", 5).label, "a/5");
        assert_eq!(BenchmarkId::from_parameter(9).label, "9");
    }
}
