//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds without a registry mirror, so the subset of the
//! proptest API used by the member crates is reimplemented here on top of
//! a deterministic SplitMix64 generator:
//!
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer and
//!   float ranges, tuples, and [`collection::vec`];
//! * [`arbitrary::any`] for the primitive types the tests draw;
//! * the [`proptest!`], [`prop_assert!`], and [`prop_assert_eq!`] macros;
//! * [`test_runner::ProptestConfig`] (`with_cases` is honoured).
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case reports its case index and panics;
//! * generation is seeded from the test name, so every run of a given
//!   test binary explores the same cases (reproducibility over surprise);
//! * `PROPTEST_CASES` in the environment overrides the case count, which
//!   is the one knob CI uses.

pub mod test_runner {
    /// Configuration accepted by `proptest!`'s `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Case count, after the `PROPTEST_CASES` environment override.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic per-test random stream (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream derived from the test name and case index, so cases
        /// are independent and reproducible.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
            for b in test_name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            let mut rng = TestRng {
                state: seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            };
            rng.next(); // decorrelate adjacent cases
            TestRng { state: rng.next() }
        }

        #[allow(clippy::should_implement_trait)]
        pub fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift reduction: bias is negligible for test sizes.
            ((self.next() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: `generate` draws one
    /// concrete value per call.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategies are generated through shared references too (real
    /// proptest takes strategies by value; the macro below evaluates the
    /// expression once per test, so both forms appear).
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit() * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }

    /// `any::<T>()`: the full-domain strategy for primitives.
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any {
                _marker: PhantomData,
            }
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next() as $t
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.unit()
        }
    }

    /// `Just(v)`: always generates a clone of `v`.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;

    /// The full-domain strategy for `T` (primitives only in this shim).
    pub fn any<T>() -> Any<T> {
        Any::new()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy for vectors whose length is uniform in `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `proptest::prelude` surface the member crates import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// `prop::collection::vec(..)`-style paths.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the real macro's shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(any::<u64>(), 0..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config = $cfg;
            let cases = config.effective_cases();
            for case in 0..cases {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg = ($strat).generate(&mut __proptest_rng);)+
                // One closure per case keeps `?`/control flow local to the
                // body, matching real proptest's per-case isolation.
                let run = || $body;
                run();
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// `assert!` under a property: panics (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// `assert_ne!` under a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("ranges", 0);
        for _ in 0..1_000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let draw = || {
            let mut rng = crate::test_runner::TestRng::for_case("determinism", 7);
            prop::collection::vec(any::<u64>(), 1..10).generate(&mut rng)
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (0u8..4, 1u64..5).prop_map(|(a, b)| a as u64 * 10 + b);
        let mut rng = crate::test_runner::TestRng::for_case("compose", 1);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v < 35 && v % 10 >= 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u32..50, flips in prop::collection::vec(any::<bool>(), 0..8)) {
            prop_assert!(x < 50);
            prop_assert!(flips.len() < 8);
        }
    }
}
