//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace must build without network access to a registry, so the
//! synchronization primitives the member crates actually use — a
//! non-poisoning [`Mutex`], [`RwLock`], and [`Condvar`] — are provided
//! here as thin wrappers over `std::sync`. Semantics match `parking_lot`
//! where the callers rely on them:
//!
//! * `lock()` / `read()` / `write()` return guards directly (no
//!   `Result`); a poisoned std lock is transparently recovered, which is
//!   exactly `parking_lot`'s "no poisoning" behaviour.
//! * `try_lock()` returns `Option` instead of a nested `Result`.
//! * Guards deref to the protected value and release on drop.
//! * [`Condvar::wait`]/[`wait_timeout`](Condvar::wait_timeout) follow the
//!   std guard-in/guard-out shape (the guard moves through the call)
//!   rather than `parking_lot`'s `&mut guard` — the callers in this
//!   workspace are written against this shim, not the real crate.
//!
//! Fairness/elision details of the real crate are irrelevant to the
//! deterministic tests and benchmarks in this repository.

use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard, TryLockError,
};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock` never fails (poison-recovering).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Acquires the lock iff it is free right now — the one-CAS probe the
    /// concurrent tree's uncontended-append fast path rides.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// A condition variable whose waits never fail (poison-recovering) and
/// whose timed wait reports the timeout as a plain `bool`.
///
/// Pairs with this shim's [`Mutex`]: the guard moves through the call
/// (std shape). Spurious wakeups are possible, as with any condvar —
/// callers re-check their predicate in a loop.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified; returns the reacquired guard.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner
            .wait(guard)
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Blocks until notified or `timeout` elapses; returns the reacquired
    /// guard and whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, result) = self
            .inner
            .wait_timeout(guard, timeout)
            .unwrap_or_else(|poison| poison.into_inner());
        (guard, result.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(5);
        let held = m.lock();
        assert!(m.try_lock().is_none(), "held elsewhere");
        drop(held);
        *m.try_lock().expect("free now") += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn condvar_wakes_a_parked_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        waiter.join().expect("waiter woke");
        // Timed wait on a predicate that never fires reports the timeout.
        let (lock, cv) = &*pair;
        let (_guard, timed_out) = cv.wait_timeout(lock.lock(), std::time::Duration::from_millis(1));
        assert!(timed_out);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
