//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace must build without network access to a registry, so the
//! two synchronization primitives the member crates actually use — a
//! non-poisoning [`Mutex`] and [`RwLock`] — are provided here as thin
//! wrappers over `std::sync`. Semantics match `parking_lot` where the
//! callers rely on them:
//!
//! * `lock()` / `read()` / `write()` return guards directly (no
//!   `Result`); a poisoned std lock is transparently recovered, which is
//!   exactly `parking_lot`'s "no poisoning" behaviour.
//! * Guards deref to the protected value and release on drop.
//!
//! Fairness/elision details of the real crate are irrelevant to the
//! deterministic tests and benchmarks in this repository.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock whose `lock` never fails (poison-recovering).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
