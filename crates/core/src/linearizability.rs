//! Linearizability of concurrent BT-ADT histories against the sequential
//! specification `L(BT-ADT)` (Def. 2.3).
//!
//! The paper relates its Strong Prefix criterion to "eventual consistency
//! of an append-only queue"; the natural stronger question for a recorded
//! history is whether it *linearizes*: does some permutation of its
//! operations, respecting the real-time (returns-before) order `≺`, replay
//! as a word of the sequential specification?
//!
//! Replay semantics against a history's block arena:
//!
//! * `append(b)` is legal at a point iff `b`'s parent in the store equals
//!   the currently selected tip `last_block(f(bt))` — the sequential τ of
//!   Def. 3.1 always chains onto `f(bt)`;
//! * `read()/bc` is legal iff `bc = {b0}⌢f(bt)` at that point;
//! * `propose(b)/decide(d)` (Protocol A on the tree, Def. 4.1): the one
//!   propose whose own mint was admitted (`grafted`) replays as the append
//!   of its decided block — legal iff `d`'s parent is the selected tip —
//!   and commits it; every other propose is legal iff `d` is *already* a
//!   member, which is exactly the graft-before-decide ordering the decide
//!   path must guarantee. A decide of a never-committed block, or one
//!   orderable only before its graft, does not linearize.
//!
//! The checker is a Wing–Gong style DFS with memoization on the set of
//! applied operations — exponential in the worst case, fine for the
//! adversarial histories (tens of operations) it is meant for. Histories
//! recorded from real concurrent runs (see `btadt_sim::mtrun`) are much
//! longer; [`check_linearizable_windowed`] splits them at *quiescent
//! points* — instants with no operation in flight — and checks window by
//! window, carrying the committed membership across windows. Cutting at a
//! quiescent point is exact, not an approximation: every operation before
//! the cut returns-before every operation after it, so any linearization
//! must order the windows back to back anyway.

use crate::history::{History, Invocation, OpId, OpRecord, Response};
use crate::ids::BlockId;
use crate::selection::SelectionFn;
use crate::store::{BlockView, TreeMembership};
use std::collections::HashSet;

/// Result of a linearizability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Linearizability {
    /// A witness linearization (operation order).
    Linearizable(Vec<OpId>),
    /// No linearization exists.
    NotLinearizable,
    /// Search aborted: too many operations for exhaustive search (for the
    /// windowed checker: in one indivisible window).
    TooLarge { ops: usize, limit: usize },
}

impl Linearizability {
    pub fn is_linearizable(&self) -> bool {
        matches!(self, Linearizability::Linearizable(_))
    }
}

/// Default operation-count cap for the exhaustive search.
pub const DEFAULT_OP_LIMIT: usize = 24;

/// Checks whether `history` linearizes against the sequential BT-ADT with
/// selection function `f` over the given arena.
///
/// Only completed operations participate (pending invocations may always
/// be pushed past the end). Failed appends (`Appended(false)`) are treated
/// as no-ops that may linearize anywhere, matching the purged-history view
/// `Ĥ` of §3.4.
pub fn check_linearizable(
    history: &History,
    store: &dyn BlockView,
    selection: &dyn SelectionFn,
) -> Linearizability {
    check_linearizable_with_limit(history, store, selection, DEFAULT_OP_LIMIT)
}

/// [`check_linearizable`] with an explicit search-size cap.
///
/// `limit` is clamped to 64 — the memoization bitmask's width bounds the
/// exhaustive search regardless of the caller's cap — and the clamped
/// value is what a `TooLarge { limit, .. }` result reports.
pub fn check_linearizable_with_limit(
    history: &History,
    store: &dyn BlockView,
    selection: &dyn SelectionFn,
    limit: usize,
) -> Linearizability {
    let ops = relevant_ops(history);
    // The memoization bitmask caps exhaustive search at 64 operations
    // regardless of the caller's limit.
    let limit = limit.min(64);
    if ops.len() > limit {
        return Linearizability::TooLarge {
            ops: ops.len(),
            limit,
        };
    }
    let base = TreeMembership::genesis_only();
    match check_window(&ops, store, selection, &base) {
        Some(schedule) => Linearizability::Linearizable(schedule),
        None => Linearizability::NotLinearizable,
    }
}

/// Linearizability for long recorded histories: splits the history at
/// quiescent points and checks each window exhaustively (≤ `window_limit`
/// operations each), carrying the committed membership across windows.
///
/// Equivalent to [`check_linearizable_with_limit`] on histories small
/// enough for both, but scales to histories whose *windows* are small even
/// when the whole run is thousands of operations. Returns `TooLarge` only
/// when a single window (a span with no quiescent point inside) exceeds
/// the cap (`window_limit` clamped to 64, like the exhaustive checker).
pub fn check_linearizable_windowed(
    history: &History,
    store: &dyn BlockView,
    selection: &dyn SelectionFn,
    window_limit: usize,
) -> Linearizability {
    let ops = relevant_ops(history);
    let window_limit = window_limit.min(64);
    let mut base = TreeMembership::genesis_only();
    let mut full_schedule = Vec::with_capacity(ops.len());
    for window in quiescent_windows(&ops) {
        if window.len() > window_limit {
            return Linearizability::TooLarge {
                ops: window.len(),
                limit: window_limit,
            };
        }
        match check_window(&window, store, selection, &base) {
            Some(schedule) => {
                // Apply the window's committing operations (in witness
                // order, which is parent-closed) before moving on.
                for &op_id in &schedule {
                    let op = window.iter().find(|o| o.id == op_id).expect("scheduled");
                    if let Some(block) = committed_block(op) {
                        base.insert(store, block);
                    }
                }
                full_schedule.extend(schedule);
            }
            None => return Linearizability::NotLinearizable,
        }
    }
    Linearizability::Linearizable(full_schedule)
}

/// The completed operations a linearization must order (failed appends
/// are purged).
fn relevant_ops(history: &History) -> Vec<&OpRecord> {
    history
        .ops()
        .iter()
        .filter(|op| op.is_complete() && !matches!(op.response, Some(Response::Appended(false))))
        .collect()
}

/// The block an operation commits to the membership when it is applied in
/// a linearization: a successful append's block, or a grafted propose's
/// decided block. `None` for everything else (reads, loser decides).
fn committed_block(op: &OpRecord) -> Option<BlockId> {
    match (&op.invocation, &op.response) {
        (Invocation::Append { block }, Some(Response::Appended(true))) => Some(*block),
        (
            Invocation::Propose { .. },
            Some(Response::Decided {
                block,
                grafted: true,
            }),
        ) => Some(*block),
        _ => None,
    }
}

/// Splits `ops` into maximal runs separated by quiescent points — the
/// same strict-`<` sweep as `History::split_at_quiescence`
/// ([`crate::history::quiescent_segments`]), so a cut never imposes an
/// order between operations `≺` leaves concurrent.
fn quiescent_windows<'h>(ops: &[&'h OpRecord]) -> Vec<Vec<&'h OpRecord>> {
    crate::history::quiescent_segments(ops)
}

/// Exhaustive Wing–Gong search over one window, starting from the
/// committed membership `base`. Returns a witness schedule on success.
fn check_window(
    ops: &[&OpRecord],
    store: &dyn BlockView,
    selection: &dyn SelectionFn,
    base: &TreeMembership,
) -> Option<Vec<OpId>> {
    // Precompute the real-time precedence matrix: i must come before j.
    let n = ops.len();
    assert!(
        n <= 64,
        "window exceeds the bitmask memo (cap limits at 64)"
    );
    let mut precedes = vec![vec![false; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                // ≺ between whole operations: response(i) < invocation(j);
                // plus per-process sequential order.
                let ri = ops[i].responded_at.expect("complete");
                let ij = ops[j].invoked_at;
                if ri < ij
                    || (ops[i].process == ops[j].process && ops[i].invoked_at < ops[j].invoked_at)
                {
                    precedes[i][j] = true;
                }
            }
        }
    }

    // DFS over schedules; state = membership tree (rebuilt incrementally),
    // visited = bitmask sets already proven fruitless.
    let mut tree = base.clone();
    let mut schedule = Vec::with_capacity(n);
    let mut done = vec![false; n];
    let mut dead: HashSet<u64> = HashSet::new();
    if dfs(
        ops,
        store,
        selection,
        &precedes,
        base,
        &mut tree,
        &mut schedule,
        &mut done,
        0u64,
        &mut dead,
    ) {
        Some(schedule)
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    ops: &[&OpRecord],
    store: &dyn BlockView,
    selection: &dyn SelectionFn,
    precedes: &[Vec<bool>],
    base: &TreeMembership,
    tree: &mut TreeMembership,
    schedule: &mut Vec<OpId>,
    done: &mut [bool],
    mask: u64,
    dead: &mut HashSet<u64>,
) -> bool {
    let n = ops.len();
    if schedule.len() == n {
        return true;
    }
    if dead.contains(&mask) {
        return false;
    }
    for i in 0..n {
        if done[i] {
            continue;
        }
        // Minimal ops only: all predecessors already scheduled.
        if (0..n).any(|j| !done[j] && precedes[j][i]) {
            continue;
        }
        let legal = match (&ops[i].invocation, &ops[i].response) {
            (Invocation::Append { block }, Some(Response::Appended(true))) => {
                let tip = selection.select_tip(store, tree);
                store.has_block(*block) && store.parent(*block) == Some(tip)
            }
            (Invocation::Read, Some(Response::Chain(chain))) => {
                let tip = selection.select_tip(store, tree);
                chain.tip() == tip && chain.len() as u32 == store.height(tip) + 1
            }
            (
                Invocation::Propose { .. },
                Some(Response::Decided {
                    block,
                    grafted: true,
                }),
            ) => {
                // The winning propose is the refined append of its decided
                // block: it must chain onto the selected tip.
                let tip = selection.select_tip(store, tree);
                store.has_block(*block) && store.parent(*block) == Some(tip)
            }
            (
                Invocation::Propose { .. },
                Some(Response::Decided {
                    block,
                    grafted: false,
                }),
            ) => {
                // Graft-before-decide: a decide of a block nobody grafted
                // (or one forced before its graft) must not linearize.
                tree.contains(*block)
            }
            _ => true,
        };
        if !legal {
            continue;
        }
        // Apply.
        let applied_block = committed_block(ops[i]);
        if let Some(block) = applied_block {
            tree.insert(store, block);
        }
        done[i] = true;
        schedule.push(ops[i].id);
        if dfs(
            ops,
            store,
            selection,
            precedes,
            base,
            tree,
            schedule,
            done,
            mask | (1 << i),
            dead,
        ) {
            return true;
        }
        // Undo. TreeMembership has no removal: rebuild from the base
        // membership plus the still-scheduled prefix.
        schedule.pop();
        done[i] = false;
        if applied_block.is_some() {
            *tree = base.clone();
            for &op_id in schedule.iter() {
                let op = ops.iter().find(|o| o.id == op_id).expect("scheduled");
                if let Some(block) = committed_block(op) {
                    tree.insert(store, block);
                }
            }
        }
    }
    dead.insert(mask);
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Payload;
    use crate::chain::Blockchain;
    use crate::history::{History, Invocation, Response};
    use crate::ids::{BlockId, ProcessId, Time};
    use crate::selection::LongestChain;
    use crate::store::BlockStore;

    fn linear_store(n: u32) -> (BlockStore, Vec<BlockId>) {
        let mut s = BlockStore::new();
        let mut ids = vec![BlockId::GENESIS];
        for i in 0..n {
            let prev = *ids.last().unwrap();
            ids.push(s.mint(prev, ProcessId(0), 0, 1, i as u64, Payload::Empty));
        }
        (s, ids)
    }

    fn append(h: &mut History, p: u32, b: BlockId, t0: u64, t1: u64) {
        h.push_complete(
            ProcessId(p),
            Invocation::Append { block: b },
            Time(t0),
            Response::Appended(true),
            Time(t1),
        );
    }

    fn read(h: &mut History, p: u32, ids: &[BlockId], n: usize, t0: u64, t1: u64) {
        h.push_complete(
            ProcessId(p),
            Invocation::Read,
            Time(t0),
            Response::Chain(Blockchain::from_ids(ids[..n].to_vec())),
            Time(t1),
        );
    }

    #[test]
    fn sequential_history_linearizes() {
        let (s, ids) = linear_store(3);
        let mut h = History::new();
        append(&mut h, 0, ids[1], 1, 2);
        read(&mut h, 0, &ids, 2, 3, 4);
        append(&mut h, 0, ids[2], 5, 6);
        read(&mut h, 0, &ids, 3, 7, 8);
        append(&mut h, 0, ids[3], 9, 10);
        let r = check_linearizable(&h, &s, &LongestChain);
        assert!(r.is_linearizable(), "{r:?}");
        if let Linearizability::Linearizable(w) = r {
            assert_eq!(w.len(), 5);
        }
    }

    #[test]
    fn overlapping_reads_reorder_to_linearize() {
        // A read of the longer chain responds before a concurrent read of
        // the shorter chain — legal: the short read linearizes first.
        let (s, ids) = linear_store(2);
        let mut h = History::new();
        append(&mut h, 0, ids[1], 1, 2);
        append(&mut h, 0, ids[2], 3, 4);
        read(&mut h, 1, &ids, 3, 5, 6); // sees b0·b1·b2
        read(&mut h, 2, &ids, 2, 5, 8); // overlaps, sees b0·b1
        let r = check_linearizable(&h, &s, &LongestChain);
        assert!(
            !r.is_linearizable(),
            "short read responds after long read *and* is invoked after \
             both appends responded — stale reads do not linearize"
        );
    }

    #[test]
    fn concurrent_stale_read_linearizes() {
        // Same shape, but the short read's invocation overlaps the second
        // append: now it may linearize before it.
        let (s, ids) = linear_store(2);
        let mut h = History::new();
        append(&mut h, 0, ids[1], 1, 2);
        append(&mut h, 0, ids[2], 3, 6);
        read(&mut h, 1, &ids, 3, 7, 8);
        read(&mut h, 2, &ids, 2, 4, 9); // invoked during append(b2)
        let r = check_linearizable(&h, &s, &LongestChain);
        assert!(r.is_linearizable(), "{r:?}");
    }

    #[test]
    fn forked_reads_do_not_linearize() {
        // Divergent reads (the Thm 4.8 shape): no sequential BT-ADT word
        // returns two incomparable chains — appends always extend f(bt).
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 1, Payload::Empty);
        let b = s.mint(BlockId::GENESIS, ProcessId(1), 1, 1, 2, Payload::Empty);
        let mut h = History::new();
        append(&mut h, 0, a, 1, 2);
        append(&mut h, 1, b, 1, 2);
        read(&mut h, 0, &[BlockId::GENESIS, a], 2, 3, 4);
        read(&mut h, 1, &[BlockId::GENESIS, b], 2, 3, 4);
        let r = check_linearizable(&h, &s, &LongestChain);
        assert_eq!(r, Linearizability::NotLinearizable);
    }

    #[test]
    fn failed_appends_are_ignored() {
        let (s, ids) = linear_store(1);
        let mut h = History::new();
        append(&mut h, 0, ids[1], 1, 2);
        h.push_complete(
            ProcessId(1),
            Invocation::Append { block: BlockId(99) },
            Time(3),
            Response::Appended(false),
            Time(4),
        );
        read(&mut h, 0, &ids, 2, 5, 6);
        assert!(check_linearizable(&h, &s, &LongestChain).is_linearizable());
    }

    #[test]
    fn size_cap_reports_too_large() {
        let (s, ids) = linear_store(1);
        let mut h = History::new();
        for i in 0..30 {
            read(&mut h, 0, &ids, 1, i * 10, i * 10 + 1);
        }
        match check_linearizable(&h, &s, &LongestChain) {
            Linearizability::TooLarge { ops: 30, .. } => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn k1_refined_histories_linearize() {
        // End-to-end: a frugal k=1 workload over one shared tree always
        // linearizes (the object behaves like the sequential spec).
        let (s, ids) = linear_store(4);
        let mut h = History::new();
        // Interleaved processes, overlapping ops, all consistent.
        append(&mut h, 0, ids[1], 1, 4);
        read(&mut h, 1, &ids, 1, 2, 3); // genesis read fits before append
        append(&mut h, 1, ids[2], 5, 7);
        read(&mut h, 0, &ids, 3, 6, 9); // sees both once append lands
        append(&mut h, 0, ids[3], 10, 11);
        append(&mut h, 1, ids[4], 12, 13);
        read(&mut h, 2, &ids, 5, 14, 15);
        let r = check_linearizable(&h, &s, &LongestChain);
        assert!(r.is_linearizable(), "{r:?}");
    }

    /// A sequential-but-long history: the exhaustive checker caps out, the
    /// windowed checker cuts at every gap and sails through.
    #[test]
    fn windowed_checker_scales_past_the_cap() {
        let n = 60u32;
        let (s, ids) = linear_store(n);
        let mut h = History::new();
        let mut t = 1;
        for i in 1..=n as usize {
            append(&mut h, 0, ids[i], t, t + 1);
            read(&mut h, 1, &ids, i + 1, t + 2, t + 3);
            t += 4;
        }
        match check_linearizable(&h, &s, &LongestChain) {
            Linearizability::TooLarge { ops: 120, .. } => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
        let r = check_linearizable_windowed(&h, &s, &LongestChain, DEFAULT_OP_LIMIT);
        assert!(r.is_linearizable(), "{r:?}");
        if let Linearizability::Linearizable(w) = r {
            assert_eq!(w.len(), 2 * n as usize);
        }
    }

    /// Windowed checking agrees with the exhaustive answer on forked reads
    /// even when the violation is inside a late window.
    #[test]
    fn windowed_checker_still_rejects_forks() {
        let mut s = BlockStore::new();
        let mut ids = vec![BlockId::GENESIS];
        for i in 0..3u64 {
            let prev = *ids.last().unwrap();
            ids.push(s.mint(prev, ProcessId(0), 0, 1, i, Payload::Empty));
        }
        let fork = s.mint(ids[1], ProcessId(1), 1, 1, 99, Payload::Empty);
        let mut h = History::new();
        append(&mut h, 0, ids[1], 1, 2);
        read(&mut h, 1, &ids, 2, 3, 4);
        // quiescent gap here
        append(&mut h, 0, ids[2], 10, 11);
        read(&mut h, 1, &[BlockId::GENESIS, ids[1], fork], 3, 12, 13); // forked view
        let r = check_linearizable_windowed(&h, &s, &LongestChain, 8);
        assert_eq!(r, Linearizability::NotLinearizable);
    }

    /// Equal cross-process timestamps: the read's response and the
    /// append's invocation share clock value 5, so `≺` leaves them
    /// concurrent and the exhaustive checker linearizes (read after
    /// append). The windowed checker must not cut between them — a cut
    /// there would force the read into a pre-append window and falsely
    /// reject.
    #[test]
    fn windowed_checker_agrees_at_equal_timestamps() {
        let (s, ids) = linear_store(1);
        let mut h = History::new();
        read(&mut h, 1, &ids, 2, 1, 5); // returns b0⌢b1
        append(&mut h, 0, ids[1], 5, 6);
        let exhaustive = check_linearizable(&h, &s, &LongestChain);
        assert!(exhaustive.is_linearizable(), "{exhaustive:?}");
        let windowed = check_linearizable_windowed(&h, &s, &LongestChain, DEFAULT_OP_LIMIT);
        assert_eq!(exhaustive, windowed);
    }

    fn propose(h: &mut History, p: u32, nonce: u64, d: BlockId, grafted: bool, t0: u64, t1: u64) {
        h.push_complete(
            ProcessId(p),
            Invocation::Propose { nonce },
            Time(t0),
            Response::Decided { block: d, grafted },
            Time(t1),
        );
    }

    /// The Protocol-A shape: overlapping proposes all deciding the winner,
    /// the winner's op carrying the graft, readers observing the result.
    #[test]
    fn consensus_decide_histories_linearize() {
        let mut s = BlockStore::new();
        let w = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 10, Payload::Empty);
        // The losers' mints stay arena orphans, as on the real tree.
        let _l = s.mint(BlockId::GENESIS, ProcessId(1), 1, 1, 11, Payload::Empty);
        let mut h = History::new();
        propose(&mut h, 0, 10, w, true, 1, 6);
        propose(&mut h, 1, 11, w, false, 2, 8);
        propose(&mut h, 2, 12, w, false, 3, 7); // decided without minting
        read(&mut h, 3, &[BlockId::GENESIS, w], 2, 9, 10);
        let r = check_linearizable(&h, &s, &LongestChain);
        assert!(r.is_linearizable(), "{r:?}");
        // And through the windowed checker, which must carry the grafted
        // propose's commit across the quiescent cut before the read.
        let r = check_linearizable_windowed(&h, &s, &LongestChain, 3);
        assert!(r.is_linearizable(), "{r:?}");
    }

    /// A decide that returns before the winner's propose even begins has
    /// no linearization: graft-before-decide is violated.
    #[test]
    fn decide_before_graft_does_not_linearize() {
        let mut s = BlockStore::new();
        let w = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 10, Payload::Empty);
        let mut h = History::new();
        propose(&mut h, 1, 11, w, false, 1, 2); // decided w…
        propose(&mut h, 0, 10, w, true, 3, 4); // …before w was grafted
        let r = check_linearizable(&h, &s, &LongestChain);
        assert_eq!(r, Linearizability::NotLinearizable);
    }

    /// Split decisions (an Agreement violation) cannot both replay: only
    /// one of two genesis-parented winners can chain onto the tip.
    #[test]
    fn split_decisions_do_not_linearize() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 10, Payload::Empty);
        let b = s.mint(BlockId::GENESIS, ProcessId(1), 1, 1, 11, Payload::Empty);
        let mut h = History::new();
        propose(&mut h, 0, 10, a, true, 1, 4);
        propose(&mut h, 1, 11, b, true, 2, 5);
        let r = check_linearizable(&h, &s, &LongestChain);
        assert_eq!(r, Linearizability::NotLinearizable);
    }

    /// An indivisible window larger than the cap still reports TooLarge.
    #[test]
    fn windowed_checker_reports_indivisible_windows() {
        let (s, ids) = linear_store(1);
        let mut h = History::new();
        for i in 0..10u64 {
            // All reads overlap one long-running read: no quiescent point.
            read(&mut h, 1 + i as u32, &ids, 1, 2 + i, 100 + i);
        }
        match check_linearizable_windowed(&h, &s, &LongestChain, 4) {
            Linearizability::TooLarge { ops: 10, limit: 4 } => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }
}
