//! The BlockTree ADT (Def. 3.1), both as an efficient operational object and
//! as a literal transducer for sequential-specification replay (Fig. 1).
//!
//! Semantics of Def. 3.1, with `Z = BT × F × (B → bool)`, `ξ0 = (bt0, f, P)`:
//!
//! * `τ((bt,f,P), append(b)) = ({b0}⌢f(bt)⌢{b}, f, P)` if `b ∈ B'`,
//!   unchanged otherwise — note that a successful append *chains `b` to the
//!   tip of the currently selected chain* `f(bt)`.
//! * `τ((bt,f,P), read()) = (bt,f,P)`.
//! * `δ((bt,f,P), append(b)) = true` iff `b ∈ B'`.
//! * `δ((bt,f,P), read()) = {b0}⌢f(bt)` (just `b0` on the initial state).

use crate::adt::AbstractDataType;
use crate::block::Payload;
use crate::chain::Blockchain;
use crate::ids::{BlockId, ProcessId};
use crate::selection::SelectionFn;
use crate::store::{BlockStore, TreeMembership};
use crate::tipcache::ChainCache;
use crate::validity::ValidityPredicate;

/// The data of a block not yet minted into a store: what an `append(b)`
/// proposes. The tree position comes from the ADT semantics (`f(bt)`'s tip),
/// not from the candidate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CandidateBlock {
    pub producer: ProcessId,
    pub merit_index: u32,
    pub work: u64,
    pub nonce: u64,
    pub payload: Payload,
}

impl CandidateBlock {
    /// A minimal candidate: empty payload, unit work.
    pub fn simple(producer: ProcessId, nonce: u64) -> Self {
        CandidateBlock {
            producer,
            merit_index: producer.0,
            work: 1,
            nonce,
            payload: Payload::Empty,
        }
    }

    pub fn with_payload(mut self, payload: Payload) -> Self {
        self.payload = payload;
        self
    }

    pub fn with_work(mut self, work: u64) -> Self {
        self.work = work;
        self
    }
}

/// The operational BlockTree: owns its store and tree, parameterized by a
/// selection function `f` and validity predicate `P` (both immutable over
/// the computation, as the paper requires).
///
/// The selected chain is cached incrementally (see
/// [`crate::tipcache::ChainCache`]): `selected_tip` is O(1), `read` never
/// re-walks the genesis→tip path, and each successful insert re-selects
/// through [`SelectionFn::on_insert`] instead of a full `f(bt)` rescan.
pub struct BlockTree<F: SelectionFn, P: ValidityPredicate> {
    store: BlockStore,
    tree: TreeMembership,
    selection: F,
    predicate: P,
    cache: ChainCache,
}

impl<F: SelectionFn, P: ValidityPredicate> BlockTree<F, P> {
    /// A tree holding only `b0`.
    pub fn new(selection: F, predicate: P) -> Self {
        let store = BlockStore::new();
        let tree = TreeMembership::full(&store);
        BlockTree {
            store,
            tree,
            selection,
            predicate,
            cache: ChainCache::new(),
        }
    }

    /// `read()`: the blockchain `{b0}⌢f(bt)`. O(1) on an unchanged tip
    /// (an `Arc` clone of the cached snapshot); after tip movement the
    /// snapshot is re-materialized from the cached path without walking
    /// parent pointers.
    pub fn read(&self) -> Blockchain {
        self.cache.chain()
    }

    /// The tip of `f(bt)` — O(1), served from the incremental cache.
    pub fn selected_tip(&self) -> BlockId {
        self.cache.tip()
    }

    /// The tip of `f(bt)` re-derived by the full Def. 3.1 rescan — the
    /// specification oracle the cache is differential-tested against, and
    /// the baseline the benchmarks contrast with.
    pub fn selected_tip_full_scan(&self) -> BlockId {
        self.selection.select_tip(&self.store, &self.tree)
    }

    /// `append(b)` per Def. 3.1: mints `candidate` under the tip of `f(bt)`;
    /// if the resulting block satisfies `P` it joins the tree and the call
    /// returns `true`, otherwise the tree is unchanged and the call returns
    /// `false`.
    ///
    /// (The candidate is minted into the store either way so `P` can inspect
    /// a fully formed block — rejected blocks simply never enter the
    /// membership, i.e. never enter `bt`.)
    pub fn append(&mut self, candidate: CandidateBlock) -> bool {
        let parent = self.selected_tip();
        self.graft(parent, candidate).is_some()
    }

    /// Mints `candidate` under an explicit `parent` (used by the refined
    /// append of Def. 3.7, where the oracle fixes the parent, and by
    /// adversarial tests that build arbitrary trees). Returns the new id if
    /// `P` accepted the block.
    pub fn graft(&mut self, parent: BlockId, candidate: CandidateBlock) -> Option<BlockId> {
        assert!(
            self.tree.contains(parent),
            "graft parent {parent} not in the tree"
        );
        let id = self.store.mint(
            parent,
            candidate.producer,
            candidate.merit_index,
            candidate.work,
            candidate.nonce,
            candidate.payload,
        );
        let block = self.store.get(id);
        if self.predicate.is_valid(&self.store, block) {
            self.tree.insert(&self.store, id);
            self.cache
                .on_insert(&self.selection, &self.store, &self.tree, id);
            Some(id)
        } else {
            None
        }
    }

    /// The underlying arena (all minted blocks, including `P`-rejected ones).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// The membership of `bt` (blocks that passed `P`).
    pub fn tree(&self) -> &TreeMembership {
        &self.tree
    }

    /// Number of blocks in `bt` (including genesis).
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// A BlockTree always contains at least `b0`.
    pub fn is_empty(&self) -> bool {
        debug_assert!(self.tree.len() >= 1);
        false
    }

    /// The selection function `f`.
    pub fn selection(&self) -> &F {
        &self.selection
    }

    /// The validity predicate `P`.
    pub fn predicate(&self) -> &P {
        &self.predicate
    }
}

/// Input alphabet `A = {append(b), read() : b ∈ B}` of the BT-ADT.
#[derive(Clone, Debug, PartialEq)]
pub enum BtInput {
    Append(CandidateBlock),
    Read,
}

/// Output alphabet `B = BC ∪ {true, false}` of the BT-ADT.
#[derive(Clone, Debug, PartialEq)]
pub enum BtOutput {
    Appended(bool),
    Chain(Blockchain),
}

/// The BT-ADT as a literal transducer (Def. 3.1), replayable by
/// [`check_sequential_history`](crate::adt::check_sequential_history) — the
/// executable form of Fig. 1.
///
/// States are whole `BlockTree` values; cloning a state clones the tree,
/// which is exactly the granularity the formal transition system works at.
/// Use the operational [`BlockTree`] directly when you don't need spec
/// replay.
pub struct BlockTreeAdt<F: SelectionFn + Clone, P: ValidityPredicate + Clone> {
    selection: F,
    predicate: P,
}

impl<F: SelectionFn + Clone, P: ValidityPredicate + Clone> BlockTreeAdt<F, P> {
    pub fn new(selection: F, predicate: P) -> Self {
        BlockTreeAdt {
            selection,
            predicate,
        }
    }
}

/// The abstract state `(bt, f, P)`: we reuse the operational tree plus the
/// (immutable) parameters held by the ADT value itself.
#[derive(Clone, Debug)]
pub struct BtState {
    store: BlockStore,
    tree: TreeMembership,
}

impl BtState {
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    pub fn tree(&self) -> &TreeMembership {
        &self.tree
    }
}

impl<F: SelectionFn + Clone, P: ValidityPredicate + Clone> AbstractDataType for BlockTreeAdt<F, P> {
    type Input = BtInput;
    type Output = BtOutput;
    type State = BtState;

    fn initial_state(&self) -> BtState {
        let store = BlockStore::new();
        let tree = TreeMembership::full(&store);
        BtState { store, tree }
    }

    fn transition(&self, state: &BtState, input: &BtInput) -> BtState {
        match input {
            BtInput::Read => state.clone(),
            BtInput::Append(candidate) => {
                let mut next = state.clone();
                let parent = self.selection.select_tip(&next.store, &next.tree);
                let id = next.store.mint(
                    parent,
                    candidate.producer,
                    candidate.merit_index,
                    candidate.work,
                    candidate.nonce,
                    candidate.payload.clone(),
                );
                if self.predicate.is_valid(&next.store, next.store.get(id)) {
                    next.tree.insert(&next.store, id);
                    next
                } else {
                    // b ∉ B': state unchanged (the speculative mint is
                    // discarded with `next`... but we must not keep it).
                    state.clone()
                }
            }
        }
    }

    fn output(&self, state: &BtState, input: &BtInput) -> BtOutput {
        match input {
            BtInput::Read => {
                let tip = self.selection.select_tip(&state.store, &state.tree);
                BtOutput::Chain(Blockchain::from_tip(&state.store, tip))
            }
            BtInput::Append(candidate) => {
                // δ needs to know whether b ∈ B': mint speculatively on a
                // scratch clone.
                let mut scratch = state.store.clone();
                let parent = self.selection.select_tip(&state.store, &state.tree);
                let id = scratch.mint(
                    parent,
                    candidate.producer,
                    candidate.merit_index,
                    candidate.work,
                    candidate.nonce,
                    candidate.payload.clone(),
                );
                BtOutput::Appended(self.predicate.is_valid(&scratch, scratch.get(id)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adt::{check_sequential_history, Operation};
    use crate::selection::LongestChain;
    use crate::validity::{AcceptAll, DigestPrefix, NoDoubleSpend};

    #[test]
    fn read_on_fresh_tree_returns_genesis() {
        let bt = BlockTree::new(LongestChain, AcceptAll);
        assert_eq!(bt.read(), Blockchain::genesis());
        assert_eq!(bt.len(), 1);
    }

    #[test]
    fn append_extends_selected_chain() {
        let mut bt = BlockTree::new(LongestChain, AcceptAll);
        assert!(bt.append(CandidateBlock::simple(ProcessId(0), 1)));
        assert!(bt.append(CandidateBlock::simple(ProcessId(0), 2)));
        let c = bt.read();
        assert_eq!(c.len(), 3);
        // The second block chains on the first: a single path.
        assert_eq!(bt.store().height(c.tip()), 2);
    }

    #[test]
    fn rejected_append_leaves_tree_unchanged() {
        // zero_bits = 64 rejects everything (digest never all-zero here).
        let mut bt = BlockTree::new(LongestChain, DigestPrefix { zero_bits: 64 });
        assert!(!bt.append(CandidateBlock::simple(ProcessId(0), 1)));
        assert_eq!(bt.read(), Blockchain::genesis());
        assert_eq!(bt.len(), 1);
    }

    #[test]
    fn graft_builds_forks() {
        let mut bt = BlockTree::new(LongestChain, AcceptAll);
        let a = bt
            .graft(BlockId::GENESIS, CandidateBlock::simple(ProcessId(0), 1))
            .unwrap();
        let _b = bt
            .graft(BlockId::GENESIS, CandidateBlock::simple(ProcessId(1), 2))
            .unwrap();
        let c = bt
            .graft(a, CandidateBlock::simple(ProcessId(0), 3))
            .unwrap();
        assert_eq!(bt.read().tip(), c, "longest chain wins");
        assert_eq!(bt.len(), 4);
    }

    #[test]
    fn double_spend_graft_rejected() {
        use crate::block::{Payload, Tx};
        let mut bt = BlockTree::new(LongestChain, NoDoubleSpend);
        let ok = bt.append(
            CandidateBlock::simple(ProcessId(0), 1)
                .with_payload(Payload::Transactions(vec![Tx::new(1, 0, 1, 5)])),
        );
        assert!(ok);
        let dup = bt.append(
            CandidateBlock::simple(ProcessId(0), 2)
                .with_payload(Payload::Transactions(vec![Tx::new(1, 0, 2, 5)])),
        );
        assert!(!dup, "double spend must be rejected by P");
        assert_eq!(bt.read().len(), 2);
    }

    /// The executable Fig. 1: a path of the BT-ADT transition system.
    #[test]
    fn figure_1_transition_path() {
        let adt = BlockTreeAdt::new(LongestChain, DigestPrefix { zero_bits: 1 });

        // Find candidates on both sides of P by nonce search (deterministic).
        let mut valid_nonces = vec![];
        let mut invalid_nonce = None;
        {
            let probe = BlockTreeAdt::new(LongestChain, DigestPrefix { zero_bits: 1 });
            let s0 = probe.initial_state();
            for nonce in 0..64u64 {
                let cand = CandidateBlock::simple(ProcessId(0), nonce);
                match probe.output(&s0, &BtInput::Append(cand)) {
                    BtOutput::Appended(true) if valid_nonces.len() < 2 => valid_nonces.push(nonce),
                    BtOutput::Appended(false) if invalid_nonce.is_none() => {
                        invalid_nonce = Some(nonce)
                    }
                    _ => {}
                }
            }
        }
        let (n1, bad) = (valid_nonces[0], invalid_nonce.unwrap());

        // ξ0 --append(b1)/true--> ξ1 --append(b3)/false--> ξ1 --read()/b0⌢b1
        let b1 = CandidateBlock::simple(ProcessId(0), n1);
        let b3 = CandidateBlock::simple(ProcessId(0), bad);
        let word = vec![
            Operation::with_output(BtInput::Append(b1), BtOutput::Appended(true)),
            Operation::with_output(BtInput::Append(b3), BtOutput::Appended(false)),
            Operation::input_only(BtInput::Read),
        ];
        let states = check_sequential_history(&adt, &word).unwrap();
        assert_eq!(states.len(), 4);
        // states[i] is the state *before* operation i; after the valid
        // append the tree has 2 blocks; the failed append leaves it
        // unchanged.
        assert_eq!(states[0].tree().len(), 1);
        assert_eq!(states[1].tree().len(), 2);
        assert_eq!(states[2].tree().len(), 2);
        assert_eq!(states[3].tree().len(), 2);

        // A word claiming the rejected append succeeded is NOT in L(T).
        let b3_again = CandidateBlock::simple(ProcessId(0), bad);
        let bogus = vec![Operation::with_output(
            BtInput::Append(b3_again),
            BtOutput::Appended(true),
        )];
        assert!(check_sequential_history(&adt, &bogus).is_err());
    }

    #[test]
    fn adt_read_output_matches_operational_tree() {
        let adt = BlockTreeAdt::new(LongestChain, AcceptAll);
        let mut state = adt.initial_state();
        for nonce in 1..=3 {
            let c = CandidateBlock::simple(ProcessId(0), nonce);
            state = adt.transition(&state, &BtInput::Append(c));
        }
        match adt.output(&state, &BtInput::Read) {
            BtOutput::Chain(c) => assert_eq!(c.len(), 4),
            other => panic!("expected chain, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "not in the tree")]
    fn graft_requires_known_parent() {
        let mut bt = BlockTree::new(LongestChain, DigestPrefix { zero_bits: 64 });
        // This mint is rejected by P, so its id is not in the tree…
        let rejected = bt.graft(BlockId::GENESIS, CandidateBlock::simple(ProcessId(0), 1));
        assert!(rejected.is_none());
        // …grafting under the rejected (absent) block must panic.
        bt.graft(BlockId(1), CandidateBlock::simple(ProcessId(0), 2));
    }
}
