//! The concurrent BT-ADT: a thread-safe BlockTree whose `read()` is
//! lock-free.
//!
//! §4.1 models processes racing on atomic base objects; everything else in
//! this crate is single-threaded. [`ConcurrentBlockTree`] is the shared
//! object those processes would race on: many appender threads, any number
//! of reader threads, one tree.
//!
//! # Architecture
//!
//! * **Sharded arena** ([`ShardedStore`]): block data lives in
//!   `S` lock-sharded slot vectors (shard = low bits of the [`BlockId`],
//!   which round-robins dense ids perfectly). Ids come from one atomic
//!   counter; minting writes exactly one shard, so appenders working on
//!   different blocks do not contend on block data. Jump-pointer
//!   maintenance and the O(log n) ancestry queries (`ancestor_at`,
//!   `is_ancestor`, `common_ancestor`) run lock-striped through the
//!   [`BlockView`] metadata interface — at most one shard read lock held
//!   at a time, so there is no lock-order cycle.
//! * **Serialized selection**: tree membership, the incremental
//!   [`ChainCache`], and the commit log live behind one mutex — the
//!   linearization point of successful appends. `append` is *optimistic*:
//!   it mints against the published tip outside the lock, then commits
//!   only if the tip is still the minted parent; a lost race leaves the
//!   minted block as a non-member orphan in the arena (exactly like a
//!   `P`-rejected block) and retries against the new tip.
//! * **Lock-free reads**: after every commit the selected chain
//!   `{b0}⌢f(bt)` is republished as a boxed [`Blockchain`] through an
//!   atomic pointer swap. `read()` is one `Acquire` pointer load plus an
//!   `Arc` bump — no lock, no walk, O(1) for any number of readers.
//!   Thanks to the chain buffer's initialization-frontier append
//!   (`crate::chain`), republishing after an extension shares the same
//!   buffer: appends stay amortized O(1) even though a published snapshot
//!   is alive at all times.
//!
//! # Publication & reclamation
//!
//! Swapped-out snapshot boxes are *retired*, not freed: a reader may
//! still be cloning through the old pointer. Retired boxes (one pointer +
//! length each — the underlying id buffer is shared) are kept until the
//! tree drops, which is safe because `read(&self)` borrows the tree, so
//! no reader can outlive it. The ordering contract is
//! publish-before-respond: the swap (`AcqRel`) happens inside the commit
//! lock, before `append` returns, so any read invoked after an append's
//! response observes that append's chain (or a later one) — the property
//! the recorded-history linearizability suite checks from the outside.

use crate::block::{Block, Payload};
use crate::blocktree::CandidateBlock;
use crate::chain::Blockchain;
use crate::ids::BlockId;
use crate::selection::SelectionFn;
use crate::store::{BlockMeta, BlockStore, BlockView, TreeMembership};
use crate::tipcache::ChainCache;
use crate::validity::ValidityPredicate;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};

/// Default shard count for [`ShardedStore`] (must be a power of two).
pub const DEFAULT_SHARDS: usize = 16;

struct Entry {
    block: Block,
    cum_work: u64,
    jump: BlockId,
    /// Forward edges: member-or-not children, in minting order.
    children: Vec<BlockId>,
}

#[derive(Default)]
struct Shard {
    /// Slot `i` holds the block with id `i * shards + shard_index`.
    /// Ids are allocated before their entry is written, so a slot can be
    /// transiently `None` mid-mint.
    slots: Vec<Option<Entry>>,
}

/// A lock-sharded, append-only block arena safe for concurrent minting.
///
/// Shard selection hashes the [`BlockId`] by its low bits — ids are dense
/// (one atomic counter), so consecutive mints land on distinct shards.
/// All read access goes through [`BlockView`]; each query acquires at most
/// one shard read lock at a time (child lists are copied out before any
/// callback runs), so queries never deadlock against concurrent minters.
pub struct ShardedStore {
    shards: Box<[RwLock<Shard>]>,
    next_id: AtomicU32,
    mask: u32,
    shift: u32,
}

impl ShardedStore {
    /// A store holding only genesis, with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        ShardedStore::with_shards(DEFAULT_SHARDS)
    }

    /// A store holding only genesis, with `shards` lock shards
    /// (power of two).
    pub fn with_shards(shards: usize) -> Self {
        assert!(
            shards.is_power_of_two() && shards > 0,
            "shard count must be a power of two"
        );
        let store = ShardedStore {
            shards: (0..shards).map(|_| RwLock::new(Shard::default())).collect(),
            next_id: AtomicU32::new(1),
            mask: shards as u32 - 1,
            shift: shards.trailing_zeros(),
        };
        // Install genesis (same block BlockStore::new mints into slot 0).
        let genesis = BlockStore::new().block(BlockId::GENESIS);
        store.shards[0].write().slots.push(Some(Entry {
            block: genesis,
            cum_work: 0,
            jump: BlockId::GENESIS,
            children: Vec::new(),
        }));
        store
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, id: BlockId) -> usize {
        (id.0 & self.mask) as usize
    }

    #[inline]
    fn slot_of(&self, id: BlockId) -> usize {
        (id.0 >> self.shift) as usize
    }

    /// Mints a new block under `parent` and returns its id. Safe to call
    /// from any number of threads; `parent` must be fully minted (callers
    /// obtain parents from published tips, commit logs, or their own
    /// earlier mints — all release/acquire-ordered after the parent's
    /// shard write).
    ///
    /// The jump pointer is computed exactly as `BlockStore::mint` does
    /// (skew-binary, distance a function of height alone), reading the
    /// parent's — fully immutable — ancestor metadata.
    pub fn mint(
        &self,
        parent: BlockId,
        producer: crate::ids::ProcessId,
        merit_index: u32,
        work: u64,
        nonce: u64,
        payload: Payload,
    ) -> BlockId {
        let pm = self.meta(parent);
        let height = pm.height + 1;
        let digest = Block::compute_digest(pm.digest, producer, nonce, &payload);
        let jump = crate::store::jump_for_child(self, parent);
        let id = BlockId(self.next_id.fetch_add(1, Ordering::AcqRel));
        let entry = Entry {
            block: Block {
                id,
                parent: Some(parent),
                height,
                producer,
                merit_index,
                work,
                digest,
                payload,
            },
            cum_work: pm.cum_work + work,
            jump,
            children: Vec::new(),
        };
        {
            let mut shard = self.shards[self.shard_of(id)].write();
            let slot = self.slot_of(id);
            if shard.slots.len() <= slot {
                shard.slots.resize_with(slot + 1, || None);
            }
            shard.slots[slot] = Some(entry);
        }
        // Forward edge on the parent, after the entry is in place: anyone
        // discovering `id` through the child list finds a complete entry.
        self.shards[self.shard_of(parent)].write().slots[self.slot_of(parent)]
            .as_mut()
            .expect("parent fully minted")
            .children
            .push(id);
        id
    }

    /// Materializes a sequential [`BlockStore`] with identical ids,
    /// digests, and memoized indices — the bridge to every single-threaded
    /// checker (linearizability, criteria, differential replay).
    ///
    /// Requires quiescence (no in-flight `mint`), e.g. after joining the
    /// workload threads; panics on a half-minted id.
    pub fn snapshot(&self) -> BlockStore {
        let n = self.block_count();
        let mut out = BlockStore::new();
        for i in 1..n {
            out.adopt(self.block(BlockId(i as u32)));
        }
        out
    }
}

impl Default for ShardedStore {
    fn default() -> Self {
        ShardedStore::new()
    }
}

impl BlockView for ShardedStore {
    fn block_count(&self) -> usize {
        self.next_id.load(Ordering::Acquire) as usize
    }

    fn has_block(&self, id: BlockId) -> bool {
        self.shards[self.shard_of(id)]
            .read()
            .slots
            .get(self.slot_of(id))
            .map(|s| s.is_some())
            .unwrap_or(false)
    }

    fn meta(&self, id: BlockId) -> BlockMeta {
        let shard = self.shards[self.shard_of(id)].read();
        let e = shard.slots[self.slot_of(id)]
            .as_ref()
            .expect("meta of a half-minted id");
        BlockMeta {
            parent: e.block.parent,
            height: e.block.height,
            work: e.block.work,
            cum_work: e.cum_work,
            digest: e.block.digest,
            jump: e.jump,
        }
    }

    fn with_block(&self, id: BlockId, f: &mut dyn FnMut(&Block)) {
        let shard = self.shards[self.shard_of(id)].read();
        let e = shard.slots[self.slot_of(id)]
            .as_ref()
            .expect("block of a half-minted id");
        f(&e.block);
    }

    fn for_each_child(&self, id: BlockId, f: &mut dyn FnMut(BlockId)) {
        // Copy the child list out so `f` may query the store without this
        // shard's lock held (no nested acquisition, no deadlock).
        let kids: Vec<BlockId> = {
            let shard = self.shards[self.shard_of(id)].read();
            shard.slots[self.slot_of(id)]
                .as_ref()
                .expect("children of a half-minted id")
                .children
                .clone()
        };
        for c in kids {
            f(c);
        }
    }
}

/// Selection state — the serialization point of tip movement.
struct SelState {
    tree: TreeMembership,
    cache: ChainCache,
    /// Membership inserts in commit order (parent-closed by construction):
    /// replaying it into the sequential machinery must reproduce the same
    /// selected chain (see `tests/selection_differential.rs`).
    commit_log: Vec<BlockId>,
    /// Swapped-out published snapshots, kept alive for in-flight readers.
    /// The boxes are the *same allocations* readers may still be
    /// dereferencing through stale `published` loads — they must keep
    /// their addresses, so unboxing into a plain `Vec` is not an option.
    #[allow(clippy::vec_box)]
    retired: Vec<Box<Blockchain>>,
}

/// A thread-safe BlockTree: Def. 3.1 semantics under concurrent appenders
/// with lock-free O(1) `read()`.
///
/// See the module docs for the architecture. The selection function and
/// validity predicate are immutable over the computation, as the paper
/// requires.
pub struct ConcurrentBlockTree<F: SelectionFn, P: ValidityPredicate> {
    store: ShardedStore,
    selection: F,
    predicate: P,
    sel: Mutex<SelState>,
    /// Current `{b0}⌢f(bt)`; always a valid leaked box.
    published: AtomicPtr<Blockchain>,
}

impl<F: SelectionFn, P: ValidityPredicate> ConcurrentBlockTree<F, P> {
    /// A tree holding only `b0`, with [`DEFAULT_SHARDS`] store shards.
    pub fn new(selection: F, predicate: P) -> Self {
        ConcurrentBlockTree::with_shards(DEFAULT_SHARDS, selection, predicate)
    }

    /// A tree holding only `b0`, with an explicit shard count.
    pub fn with_shards(shards: usize, selection: F, predicate: P) -> Self {
        ConcurrentBlockTree {
            store: ShardedStore::with_shards(shards),
            selection,
            predicate,
            sel: Mutex::new(SelState {
                tree: TreeMembership::genesis_only(),
                cache: ChainCache::new(),
                commit_log: Vec::new(),
                retired: Vec::new(),
            }),
            published: AtomicPtr::new(Box::into_raw(Box::new(Blockchain::genesis()))),
        }
    }

    /// `read()`: the blockchain `{b0}⌢f(bt)`. Lock-free — one `Acquire`
    /// pointer load plus an `Arc` bump; O(1) regardless of chain length,
    /// tree size, or writer activity.
    pub fn read(&self) -> Blockchain {
        let p = self.published.load(Ordering::Acquire);
        // SAFETY: `p` came from `Box::into_raw`; swapped-out boxes are
        // retired (kept alive) until `self` drops, and `&self` outlives
        // this call. The pointee is immutable once published.
        unsafe { (*p).clone() }
    }

    /// The tip of `f(bt)` — lock-free, O(1).
    pub fn selected_tip(&self) -> BlockId {
        let p = self.published.load(Ordering::Acquire);
        // SAFETY: as in `read`.
        unsafe { (*p).tip() }
    }

    /// `append(b)` per Def. 3.1, safe under concurrent appenders: mints
    /// `candidate` under the tip of `f(bt)`; if valid it joins the tree
    /// (returning its id), else the tree is unchanged and `None` returns.
    ///
    /// Optimistic: minting runs outside the selection lock; if another
    /// appender moved the tip first, the mint is abandoned as a non-member
    /// orphan in the arena (semantically identical to a `P`-rejected mint)
    /// and the append retries against the new tip. The commit — membership
    /// insert, incremental re-selection, chain publication — happens under
    /// the lock, before the call returns: publish-before-respond.
    pub fn append(&self, candidate: CandidateBlock) -> Option<BlockId> {
        loop {
            let parent = self.selected_tip();
            let id = self.store.mint(
                parent,
                candidate.producer,
                candidate.merit_index,
                candidate.work,
                candidate.nonce,
                candidate.payload.clone(),
            );
            let valid = {
                let block = self.store.block(id);
                self.predicate.is_valid(&self.store, &block)
            };
            if !valid {
                // Validity may depend on the parent (digests commit to
                // ancestry), so a failure only counts if the mint really
                // was against the selected tip at some point during this
                // call; otherwise re-mint under the fresh tip.
                if self.selected_tip() == parent {
                    return None;
                }
                continue;
            }
            let mut sel = self.sel.lock();
            if sel.cache.tip() != parent {
                continue; // lost the race — retry outside the lock
            }
            self.commit_locked(&mut sel, id);
            return Some(id);
        }
    }

    /// Mints `candidate` under an explicit committed `parent` (the refined
    /// append of Def. 3.7, where the oracle fixes the parent — and the
    /// fork-builder for adversarial workloads). Returns the new id if `P`
    /// accepted the block.
    pub fn graft(&self, parent: BlockId, candidate: CandidateBlock) -> Option<BlockId> {
        let id = self.store.mint(
            parent,
            candidate.producer,
            candidate.merit_index,
            candidate.work,
            candidate.nonce,
            candidate.payload,
        );
        let valid = {
            let block = self.store.block(id);
            self.predicate.is_valid(&self.store, &block)
        };
        if !valid {
            return None;
        }
        let mut sel = self.sel.lock();
        assert!(
            sel.tree.contains(parent),
            "graft parent {parent} not committed to the tree"
        );
        self.commit_locked(&mut sel, id);
        Some(id)
    }

    /// Membership insert + incremental re-selection + publication, under
    /// the selection lock.
    fn commit_locked(&self, sel: &mut SelState, id: BlockId) {
        sel.tree.insert(&self.store, id);
        sel.commit_log.push(id);
        sel.cache
            .on_insert(&self.selection, &self.store, &sel.tree, id);
        let fresh = Box::into_raw(Box::new(sel.cache.chain()));
        let old = self.published.swap(fresh, Ordering::AcqRel);
        // SAFETY: `old` came from `Box::into_raw` in `with_shards` or a
        // previous commit; reconstituting the box here (under the lock)
        // moves ownership into the retire list, keeping the allocation
        // alive for readers still dereferencing the old pointer.
        sel.retired.push(unsafe { Box::from_raw(old) });
    }

    /// Number of committed blocks (including genesis).
    pub fn len(&self) -> usize {
        self.sel.lock().tree.len()
    }

    /// Whether the tree holds no blocks — always `false` in practice (a
    /// committed tree contains at least `b0`), but answered from the
    /// membership rather than hardcoded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sharded arena (all minted blocks, including orphaned and
    /// `P`-rejected mints).
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// The selection function `f`.
    pub fn selection(&self) -> &F {
        &self.selection
    }

    /// The validity predicate `P`.
    pub fn predicate(&self) -> &P {
        &self.predicate
    }

    /// The membership commit order so far (parent-closed). Takes the
    /// selection lock.
    pub fn commit_log(&self) -> Vec<BlockId> {
        self.sel.lock().commit_log.clone()
    }

    /// The tip re-derived by the full Def. 3.1 rescan over the committed
    /// membership — the specification oracle for differential checks.
    /// Takes the selection lock.
    pub fn selected_tip_full_scan(&self) -> BlockId {
        let sel = self.sel.lock();
        self.selection.select_tip(&self.store, &sel.tree)
    }

    /// Sequential snapshot of the arena (see [`ShardedStore::snapshot`];
    /// requires quiescence).
    pub fn snapshot_store(&self) -> BlockStore {
        self.store.snapshot()
    }
}

impl<F: SelectionFn, P: ValidityPredicate> Drop for ConcurrentBlockTree<F, P> {
    fn drop(&mut self) {
        let p = self.published.swap(std::ptr::null_mut(), Ordering::AcqRel);
        // SAFETY: the current publication is the one outstanding leaked
        // box (every predecessor was retired); no reader can be alive,
        // since readers borrow `self`.
        drop(unsafe { Box::from_raw(p) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcessId;
    use crate::selection::{Ghost, HeaviestWork, LongestChain};
    use crate::validity::{AcceptAll, DigestPrefix};

    #[test]
    fn sharded_mint_matches_blockstore() {
        // The same mint sequence must produce identical ids, digests,
        // heights, jumps, and cumulative work in both stores.
        let sharded = ShardedStore::with_shards(4);
        let mut seq = BlockStore::new();
        let mut prev = BlockId::GENESIS;
        for i in 0..40u64 {
            let parent = if i % 5 == 0 { BlockId::GENESIS } else { prev };
            let a = sharded.mint(parent, ProcessId(0), 0, 1 + i % 3, i, Payload::Empty);
            let b = seq.mint(parent, ProcessId(0), 0, 1 + i % 3, i, Payload::Empty);
            assert_eq!(a, b);
            assert_eq!(sharded.meta(a), seq.meta(a), "block {i}");
            prev = a;
        }
        assert_eq!(sharded.block_count(), seq.block_count());
        for i in 0..seq.block_count() as u32 {
            let id = BlockId(i);
            let mut sh_kids = Vec::new();
            sharded.for_each_child(id, &mut |c| sh_kids.push(c));
            assert_eq!(sh_kids.as_slice(), seq.children(id));
        }
    }

    #[test]
    fn sharded_ancestry_queries_agree_with_sequential() {
        let sharded = ShardedStore::new();
        let mut prev = BlockId::GENESIS;
        let mut ids = vec![prev];
        for i in 0..64u64 {
            prev = sharded.mint(prev, ProcessId(0), 0, 1, i, Payload::Empty);
            ids.push(prev);
        }
        let snap = sharded.snapshot();
        for h in [0u32, 1, 13, 40, 63] {
            assert_eq!(sharded.ancestor_at(prev, h), ids[h as usize]);
            assert_eq!(sharded.ancestor_at(prev, h), snap.ancestor_at(prev, h));
        }
        assert!(sharded.is_ancestor(ids[10], ids[50]));
        assert!(!sharded.is_ancestor(ids[50], ids[10]));
        let fork = sharded.mint(ids[20], ProcessId(1), 1, 1, 99, Payload::Empty);
        assert_eq!(sharded.common_ancestor(fork, prev), ids[20]);
    }

    #[test]
    fn fresh_tree_reads_genesis() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        assert_eq!(bt.read(), Blockchain::genesis());
        assert_eq!(bt.selected_tip(), BlockId::GENESIS);
        assert_eq!(bt.len(), 1);
    }

    #[test]
    fn sequential_appends_extend_the_chain() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        for i in 0..10 {
            assert!(bt.append(CandidateBlock::simple(ProcessId(0), i)).is_some());
        }
        assert_eq!(bt.read().len(), 11);
        assert_eq!(bt.len(), 11);
        assert_eq!(bt.selected_tip(), bt.selected_tip_full_scan());
    }

    #[test]
    fn rejected_append_leaves_tree_unchanged() {
        let bt = ConcurrentBlockTree::new(LongestChain, DigestPrefix { zero_bits: 64 });
        assert!(bt.append(CandidateBlock::simple(ProcessId(0), 1)).is_none());
        assert_eq!(bt.read(), Blockchain::genesis());
        assert_eq!(bt.len(), 1);
        // The rejected mint still occupies an arena slot, as on BlockTree.
        assert_eq!(bt.store().block_count(), 2);
    }

    #[test]
    fn graft_builds_forks_and_reorgs() {
        let bt = ConcurrentBlockTree::new(HeaviestWork, AcceptAll);
        let a = bt
            .graft(BlockId::GENESIS, CandidateBlock::simple(ProcessId(0), 1))
            .unwrap();
        let _a2 = bt
            .graft(a, CandidateBlock::simple(ProcessId(0), 2))
            .unwrap();
        let heavy = bt
            .graft(
                BlockId::GENESIS,
                CandidateBlock::simple(ProcessId(1), 3).with_work(10),
            )
            .unwrap();
        assert_eq!(bt.selected_tip(), heavy, "work 10 beats work 2");
        assert_eq!(bt.read().ids(), &[BlockId::GENESIS, heavy]);
    }

    #[test]
    fn held_snapshots_survive_later_appends() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        bt.append(CandidateBlock::simple(ProcessId(0), 1)).unwrap();
        let snap = bt.read();
        for i in 2..20 {
            bt.append(CandidateBlock::simple(ProcessId(0), i)).unwrap();
        }
        assert_eq!(snap.len(), 2, "published snapshot is immutable");
        assert!(snap.is_prefix_of(&bt.read()));
        assert_eq!(bt.read().len(), 20);
    }

    #[test]
    fn concurrent_appenders_commit_every_block_exactly_once() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        let per_thread = 50u64;
        let threads = 4u32;
        std::thread::scope(|s| {
            for t in 0..threads {
                let bt = &bt;
                s.spawn(move || {
                    for i in 0..per_thread {
                        let nonce = (t as u64) << 32 | i;
                        assert!(bt
                            .append(CandidateBlock::simple(ProcessId(t), nonce))
                            .is_some());
                    }
                });
            }
        });
        let expected = (threads as u64 * per_thread) as usize + 1;
        assert_eq!(bt.len(), expected, "every append committed");
        // Longest-chain appends always extend the tip: a single path.
        assert_eq!(bt.read().len(), expected);
        assert_eq!(bt.selected_tip(), bt.selected_tip_full_scan());
        let log = bt.commit_log();
        assert_eq!(log.len(), expected - 1);
        let mut sorted = log.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), log.len(), "no double commits");
    }

    #[test]
    fn concurrent_readers_observe_monotone_prefix_chains() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let bt = &bt;
                s.spawn(move || {
                    let mut last = bt.read();
                    for _ in 0..400 {
                        let now = bt.read();
                        assert!(
                            last.is_prefix_of(&now),
                            "longest-chain published reads grow monotonically"
                        );
                        last = now;
                    }
                });
            }
            let bt = &bt;
            s.spawn(move || {
                for i in 0..200 {
                    bt.append(CandidateBlock::simple(ProcessId(0), i)).unwrap();
                }
            });
        });
        assert_eq!(bt.read().len(), 201);
    }

    #[test]
    fn concurrent_ghost_grafts_agree_with_full_scan() {
        let bt = ConcurrentBlockTree::new(Ghost::default(), AcceptAll);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let bt = &bt;
                s.spawn(move || {
                    for i in 0..30u64 {
                        // Fork off a block of the current chain at a
                        // pseudo-random depth — real reorg pressure.
                        let chain = bt.read();
                        let ids = chain.ids();
                        let r = crate::ids::splitmix64_at((t as u64) << 8, i);
                        let parent = ids[(r as usize) % ids.len()];
                        bt.graft(
                            parent,
                            CandidateBlock::simple(ProcessId(t), (t as u64) << 32 | i),
                        );
                    }
                });
            }
        });
        assert_eq!(bt.len(), 121);
        assert_eq!(bt.selected_tip(), bt.selected_tip_full_scan());
        // And the snapshot replays to the same selection.
        let snap = bt.snapshot_store();
        let mut tree = TreeMembership::genesis_only();
        for id in bt.commit_log() {
            tree.insert(&snap, id);
        }
        assert_eq!(Ghost::default().select_tip(&snap, &tree), bt.selected_tip());
    }

    #[test]
    fn snapshot_reproduces_the_arena() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        for i in 0..12 {
            if i % 3 == 0 {
                bt.graft(
                    BlockId::GENESIS,
                    CandidateBlock::simple(ProcessId(1), 100 + i),
                );
            } else {
                bt.append(CandidateBlock::simple(ProcessId(0), i));
            }
        }
        let snap = bt.snapshot_store();
        assert_eq!(snap.block_count(), bt.store().block_count());
        for i in 0..snap.block_count() as u32 {
            assert_eq!(snap.meta(BlockId(i)), bt.store().meta(BlockId(i)));
        }
    }
}
