//! The concurrent BT-ADT: a thread-safe BlockTree whose `read()` is
//! lock-free.
//!
//! §4.1 models processes racing on atomic base objects; everything else in
//! this crate is single-threaded. [`ConcurrentBlockTree`] is the shared
//! object those processes would race on: many appender threads, any number
//! of reader threads, one tree.
//!
//! # Architecture
//!
//! * **Sharded arena** ([`ShardedStore`]): block data lives in
//!   `S` lock-sharded slot vectors (shard = low bits of the [`BlockId`],
//!   which round-robins dense ids perfectly). Ids come from one atomic
//!   counter; minting writes exactly one shard, so appenders working on
//!   different blocks do not contend on block data. Jump-pointer
//!   maintenance and the O(log n) ancestry queries (`ancestor_at`,
//!   `is_ancestor`, `common_ancestor`) run lock-striped through the
//!   [`BlockView`] metadata interface — at most one shard read lock held
//!   at a time, so there is no lock-order cycle. Every shard write bumps a
//!   per-shard generation counter, which is what lets [`SnapshotCache`]
//!   extend a sequential snapshot incrementally against a *live* tree.
//! * **Two-stage commit pipeline** (`crate::commit`): tree membership,
//!   the commit log, and selection scoring still live behind one mutex —
//!   the linearization point of successful appends — but that critical
//!   section now holds only what must be serial. An `append` mints and
//!   pre-validates against the published tip outside any lock, *moving*
//!   its payload into the arena (the append path clones nothing). If the
//!   selection mutex is free on the first CAS, the append commits
//!   **inline** — no request node, no queue traffic, no status-word
//!   roundtrip: the uncontended path costs the mint plus one lock.
//!   Otherwise a drainer is at work: the append *enqueues* a commit
//!   request on a lock-free MPSC queue, and whichever enqueued appender
//!   acquires the selection mutex next (contended appenders park and are
//!   usually resolved by the incumbent — a combining lock) drains the
//!   queue as a batch. **Stage 1**, under the selection lock: mint
//!   resolution (a request whose optimistic parent lost the race is
//!   re-minted under the authoritative tip, payload read back from the
//!   orphan — the only copy, on the slow path only), membership inserts,
//!   and *batched* selection scoring — the batch's inserts are
//!   partitioned by genesis-child subtree, scored per shard into
//!   mergeable partials, folded with the associative
//!   `AuxPartial::merge`, and applied to the selection aux once
//!   (`crate::selection::batch_score`). The drainer then *stages* a
//!   publication record and releases the selection lock. **Stage 2**,
//!   under a separate publication lock: the WAL group-commit append
//!   (persist-then-ack), the in-place chain splice, and the boxed-chain
//!   pointer swap. Stage 2 of one batch overlaps stage 1 of the next;
//!   staged batches publish strictly in commit-log order (whichever
//!   thread holds the publication lock pops them all), and every request
//!   status lands only after the publication covering it.
//! * **Commit generation + parking** : every publication advances a
//!   monotone generation counter (stored *after* the pointer swap);
//!   decide-path waiters ([`ConcurrentBlockTree::wait_committed`],
//!   Protocol A's losers) park on it through a condvar and wake exactly
//!   when a commit lands, instead of spinning `yield_now` against the
//!   very thread whose graft they are waiting for.
//! * **Lock-free reads with grace periods** (`crate::epoch`): after every
//!   batch the selected chain `{b0}⌢f(bt)` is republished as a boxed
//!   [`Blockchain`] through an atomic pointer swap. `read()` pins the
//!   epoch domain and hands back a borrowed [`ChainView`] — one epoch pin
//!   (a CAS on a thread-private padded slot) plus one `Acquire` load, no
//!   lock and **no shared refcount**: the `Arc` bump that previously made
//!   every full-chain read hit one shared cache line is gone from the hot
//!   path. [`ChainView::to_owned`] upgrades to an owned [`Blockchain`]
//!   (that `Arc` clone) for snapshots that must outlive the guard.
//!
//! # Publication & reclamation
//!
//! Swapped-out snapshot boxes are *retired* into the tree's
//! [`EpochDomain`]: a reader holding a [`ChainView`] may still be looking
//! through the old pointer, so the box is freed only after every reader
//! pinned at (or before) the swap has unpinned — the two-epoch grace
//! period of `crate::epoch`. This replaces PR 2's grow-forever retire
//! list: memory now tracks the *reader horizon*, not the commit count.
//! The ordering contract is publish-before-respond: the batch's swap
//! (`AcqRel`) happens under the publication lock, before any of the
//! batch's `append`s return, so any read invoked after an append's
//! response observes that append's chain (or a later one) — the property
//! the recorded-history linearizability suite checks from the outside.
//!
//! # Degraded mode (durable trees)
//!
//! A durable tree whose WAL suffers a data-path write or fsync failure
//! **poisons** rather than panics: the failed publication is not acked,
//! the error latches, and every later `append`/`graft` returns the same
//! typed [`DurabilityError`] without touching the disk (a failed fsync
//! may have dropped dirty pages, so retrying it proves nothing — see
//! `crate::wal`). Poisoning is one-way and observable via
//! [`ConcurrentBlockTree::is_poisoned`] /
//! [`ConcurrentBlockTree::durability_error`]. Reads stay valid in
//! degraded mode: the published chain is exactly the acked durable
//! prefix, so readers drain gracefully while the operator fails over to
//! recovery (`open_durable` on the surviving directory). The crash-point
//! matrix (`tests/wal_crashpoints.rs`) and the mtrun fault lane hold
//! this to "no ack a crash could forget", per-operation and under real
//! thread contention.

use crate::block::{Block, Payload};
use crate::blocktree::CandidateBlock;
use crate::chain::Blockchain;
use crate::commit::{CommitQueue, CommitReq, FinalityWatermark, PipelineStats, Polled};
use crate::epoch::{EpochDomain, Guard, RecycleBin};
use crate::ids::BlockId;
use crate::selection::{batch_score, SelectionAux, SelectionFn, TipUpdate};
use crate::store::{BlockMeta, BlockStore, BlockView, TreeMembership};
use crate::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Condvar, Mutex};
use crate::tipcache::advance_chain;
use crate::validity::ValidityPredicate;
use crate::wal::{
    CheckpointJob, CommitRecord, DurabilityError, RecordRef, Wal, WalConfig, WalStats,
};
use std::collections::{HashMap, VecDeque};

/// Default shard count for [`ShardedStore`] (must be a power of two).
pub const DEFAULT_SHARDS: usize = 16;

/// Floor of the adaptive reclamation threshold: commit paths attempt an
/// epoch advance + bag sweep only once at least this many retirees are
/// pending, so reclamation cost is amortized over many commits while the
/// backlog stays a small constant (the churn stress asserts the bound
/// from the outside).
const RECLAIM_PENDING_MIN: usize = 32;

/// Cap of the adaptive threshold. One snapshot box is retired per
/// *publication*, so the pending count grows at the publication rate:
/// under contention a batch of B appends retires once and the [`
/// RECLAIM_PENDING_MIN`] floor already spaces sweeps ~B·32 appends apart,
/// but on the uncontended inline path every append publishes (B = 1) and
/// a static threshold would sweep 8× as often per append. The threshold
/// scales inversely with the observed mean batch size, clamped here, so
/// the sweep cost per *append* stays roughly constant across contention
/// regimes — and the worst-case backlog stays a few hundred boxes.
const RECLAIM_PENDING_MAX: usize = 256;

struct Entry {
    block: Block,
    cum_work: u64,
    jump: BlockId,
    /// Height of `jump`'s target, cached so a child's jump computation
    /// never has to re-read that entry's shard.
    jump_h: u32,
    /// `jump`'s own jump target and its height: the skew-binary merge
    /// test compares span lengths two jump levels up, and caching both
    /// here turns the four shard-lock crossings the generic
    /// `jump_for_child` needs into at most one extra (merge steps only).
    jump2: BlockId,
    jump2_h: u32,
}

/// Spine length of a shard's chunk table: chunk `k` holds `2^k` slots, so
/// 32 chunks cover every id a `u32` can name.
const SPINE: usize = 32;

/// One grow-only chunk of arena slots. Entries are written exactly once —
/// by the thread that allocated the id — and published by the paired
/// `ready` flag (`Release` store / `Acquire` load), after which they are
/// immutable forever. That write-once discipline is what lets every
/// metadata read (`meta`, `with_block`, ancestry walks, the selection
/// fold) run **without any lock**: the per-shard `RwLock` this replaces
/// charged two atomic RMWs per read, several times per append.
struct Chunk {
    ready: Box<[crate::sync::atomic::AtomicBool]>,
    entries: Box<[std::cell::UnsafeCell<std::mem::MaybeUninit<Entry>>]>,
}

impl Chunk {
    fn new(len: usize) -> Chunk {
        Chunk {
            ready: (0..len)
                .map(|_| crate::sync::atomic::AtomicBool::new(false))
                .collect(),
            entries: (0..len)
                .map(|_| std::cell::UnsafeCell::new(std::mem::MaybeUninit::uninit()))
                .collect(),
        }
    }
}

impl Drop for Chunk {
    fn drop(&mut self) {
        for (r, e) in self.ready.iter().zip(self.entries.iter_mut()) {
            if r.load(Ordering::Acquire) {
                // SAFETY: a ready slot holds a fully initialized entry,
                // and `&mut self` means no reader is alive.
                unsafe { e.get_mut().assume_init_drop() };
            }
        }
    }
}

/// Geometric chunk coordinates of slot `s`: chunk `k = ⌊log2(s+1)⌋`,
/// offset `s + 1 - 2^k`, chunk capacity `2^k`.
#[inline]
fn chunk_of(slot: usize) -> (usize, usize) {
    let k = (usize::BITS - 1 - (slot + 1).leading_zeros()) as usize;
    (k, slot + 1 - (1 << k))
}

/// The hot half of a flattened block: everything an ancestry walk or a
/// `meta` read touches, packed into 32 bytes so a walk costs one cache
/// line per step instead of chasing a ~100-byte spine [`Entry`]. `work`
/// is *derived* (`cum_work - parent.cum_work`), not stored — that is what
/// fits the struct in half a line.
#[derive(Clone, Copy)]
struct FlatEntry {
    /// Parent id; `u32::MAX` encodes "genesis / no parent".
    parent_raw: u32,
    height: u32,
    /// Skew-binary jump target. Jump targets are strict ancestors, so a
    /// flat block's jump is always flat too — walks never cross back
    /// into the spine tier.
    jump: BlockId,
    cum_work: u64,
    digest: u64,
}

const FLAT_NO_PARENT: u32 = u32::MAX;

/// The cold half: fields only `with_block` reconstruction needs. Non-empty
/// payloads are boxed so the common `Payload::Empty` costs no heap and the
/// slot stays 16 bytes.
struct FlatCold {
    producer: crate::ids::ProcessId,
    merit_index: u32,
    payload: Option<Box<Payload>>,
}

/// Frozen child list of a flattened block. Finalized-prefix blocks have
/// overwhelmingly exactly one child (forks die young), so the one-child
/// case is inline and the empty case is free.
enum FlatKids {
    None,
    One(BlockId),
    Many(Box<[BlockId]>),
}

impl FlatKids {
    fn from_vec(kids: Vec<BlockId>) -> FlatKids {
        match kids.len() {
            0 => FlatKids::None,
            1 => FlatKids::One(kids[0]),
            _ => FlatKids::Many(kids.into_boxed_slice()),
        }
    }

    fn for_each(&self, f: &mut dyn FnMut(BlockId)) {
        match self {
            FlatKids::None => {}
            FlatKids::One(c) => f(*c),
            FlatKids::Many(cs) => {
                for &c in cs.iter() {
                    f(c)
                }
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            FlatKids::Many(cs) => std::mem::size_of_val::<[BlockId]>(cs),
            _ => 0,
        }
    }
}

/// One chunk of the flattened slab — same geometric spine layout as the
/// live tier's [`Chunk`], but indexed by *id* (the finalized prefix is
/// dense and parent-closed, so ids are direct offsets) and with **no
/// per-slot ready flags**: a whole batch of slots is published at once by
/// the single `Release` store of [`FlatTier::count`].
struct FlatChunk {
    hot: Box<[std::cell::UnsafeCell<std::mem::MaybeUninit<FlatEntry>>]>,
    cold: Box<[std::cell::UnsafeCell<std::mem::MaybeUninit<FlatCold>>]>,
    kids: Box<[std::cell::UnsafeCell<std::mem::MaybeUninit<FlatKids>>]>,
}

impl FlatChunk {
    fn new(len: usize) -> FlatChunk {
        fn slots<T>(len: usize) -> Box<[std::cell::UnsafeCell<std::mem::MaybeUninit<T>>]> {
            (0..len)
                .map(|_| std::cell::UnsafeCell::new(std::mem::MaybeUninit::uninit()))
                .collect()
        }
        FlatChunk {
            hot: slots(len),
            cold: slots(len),
            kids: slots(len),
        }
    }
}

/// The finalized tier: an offset-indexed immutable slab holding every
/// block with id below [`count`](Self::count).
///
/// # Invariants
///
/// * `count` is monotone and only ever stored (Release) by the single
///   flattener holding the `work` ticket, after it has fully written the
///   hot/cold/kids slots of every id below the new value. Readers load it
///   Acquire: `id < count` ⇒ all three slots of `id` are initialized and
///   immutable forever — no per-slot flag needed.
/// * `target` is the watermark bound (exclusive id): flattening never
///   proceeds past `min(target, fully-minted prefix)`. It is advanced by
///   `fetch_max` only — storage policy, not semantic finality; a reorg
///   reaching below the watermark still reads correctly, it is merely
///   assumed rare enough that the prefix's *data layout* can be frozen.
/// * `late_kids` holds children minted under an already-frozen parent
///   (the watermark trails the tip by the finality depth, so this is the
///   reorg tail case). Readers merge them after the frozen list; order
///   stays minting order because freezing captures the list under the
///   same lock mints push through.
struct FlatTier {
    spine: [AtomicPtr<FlatChunk>; SPINE],
    /// Ids below this are flattened (published Release, read Acquire).
    count: AtomicU32,
    /// Exclusive id bound the flattener may advance to (watermark).
    target: AtomicU32,
    /// Children minted under already-flattened parents: parent id → kids
    /// in minting order.
    late_kids: Mutex<HashMap<u32, Vec<BlockId>>>,
    /// Single-flattener ticket: `try_lock` and do bounded work, or leave.
    work: Mutex<()>,
}

impl FlatTier {
    fn new() -> FlatTier {
        FlatTier {
            spine: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            count: AtomicU32::new(0),
            target: AtomicU32::new(0),
            late_kids: Mutex::new(HashMap::new()),
            work: Mutex::new(()),
        }
    }

    /// The chunk covering `id`, installing it first if nobody has.
    /// Flattener-only (but CAS-installed for safety symmetry with
    /// [`Shard::chunk_for_write`]).
    fn chunk_for_write(&self, id: u32) -> (&FlatChunk, usize) {
        let (k, off) = chunk_of(id as usize);
        let p = self.spine[k].load(Ordering::Acquire);
        let chunk = if p.is_null() {
            let fresh = Box::into_raw(Box::new(FlatChunk::new(1 << k)));
            match self.spine[k].compare_exchange(
                std::ptr::null_mut(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => fresh,
                Err(winner) => {
                    // SAFETY: ours never escaped.
                    drop(unsafe { Box::from_raw(fresh) });
                    winner
                }
            }
        } else {
            p
        };
        // SAFETY: slab chunks are never freed while the store lives.
        (unsafe { &*chunk }, off)
    }

    /// Writes the hot and cold halves of `id`. Flattener-only, before the
    /// covering `count` publication.
    fn install(&self, id: u32, hot: FlatEntry, cold: FlatCold) {
        let (chunk, off) = self.chunk_for_write(id);
        // SAFETY: the single flattener owns all slots in
        // `count..target`; readers never look before `count` covers them.
        unsafe {
            (*chunk.hot[off].get()).write(hot);
            (*chunk.cold[off].get()).write(cold);
        }
    }

    /// Freezes `id`'s child list. Flattener-only; called under the owning
    /// shard's children lock (the freeze handoff point — see
    /// `ShardedStore::flatten_some`).
    fn install_kids(&self, id: u32, kids: Vec<BlockId>) {
        let (chunk, off) = self.chunk_for_write(id);
        // SAFETY: as in `install`.
        unsafe { (*chunk.kids[off].get()).write(FlatKids::from_vec(kids)) };
    }

    /// The hot entry of `id`. Callers must have established that the slot
    /// is initialized: either `id < count` (Acquire), or they are on the
    /// freeze handoff path (children lock ordered after the slot write),
    /// or they are the flattener reading its own writes. No assert on
    /// `count` here — the flattener legitimately reads below-`target`
    /// slots it wrote moments ago, before publishing.
    #[inline]
    fn entry(&self, id: u32) -> FlatEntry {
        let (k, off) = chunk_of(id as usize);
        let p = self.spine[k].load(Ordering::Acquire);
        debug_assert!(!p.is_null(), "flat read of id {id} before its chunk");
        // SAFETY: per the caller contract above, the slot is initialized
        // and immutable; chunks live as long as the store.
        unsafe { (*(*p).hot[off].get()).assume_init_ref() }.to_owned()
    }

    /// The cold half of `id`. Same contract as [`entry`](Self::entry).
    #[inline]
    fn with_cold<R>(&self, id: u32, f: impl FnOnce(&FlatCold) -> R) -> R {
        let (k, off) = chunk_of(id as usize);
        let p = self.spine[k].load(Ordering::Acquire);
        debug_assert!(!p.is_null(), "flat read of id {id} before its chunk");
        // SAFETY: as in `entry`.
        f(unsafe { (*(*p).cold[off].get()).assume_init_ref() })
    }

    /// The frozen child list of `id`, copied out (late children are the
    /// caller's job to merge). Same contract as [`entry`](Self::entry).
    fn kids_clone(&self, id: u32) -> Vec<BlockId> {
        let (k, off) = chunk_of(id as usize);
        let p = self.spine[k].load(Ordering::Acquire);
        debug_assert!(!p.is_null(), "flat read of id {id} before its chunk");
        // SAFETY: as in `entry`.
        let kids = unsafe { (*(*p).kids[off].get()).assume_init_ref() };
        let mut out = Vec::new();
        kids.for_each(&mut |c| out.push(c));
        out
    }

    /// Out-of-line bytes of `id`'s frozen child list (`Many` boxes only).
    /// Same contract as [`entry`](Self::entry).
    fn kids_heap_bytes(&self, id: u32) -> usize {
        let (k, off) = chunk_of(id as usize);
        let p = self.spine[k].load(Ordering::Acquire);
        debug_assert!(!p.is_null(), "flat read of id {id} before its chunk");
        // SAFETY: as in `entry`.
        unsafe { (*(*p).kids[off].get()).assume_init_ref() }.heap_bytes()
    }
}

impl Drop for FlatTier {
    fn drop(&mut self) {
        let count = *self.count.get_mut();
        for id in 0..count {
            let (k, off) = chunk_of(id as usize);
            let p = *self.spine[k].get_mut();
            // SAFETY: ids below count are fully written; `&mut self`
            // means no readers. `FlatEntry` is Copy — only the cold and
            // kids halves own heap.
            unsafe {
                (*(*p).cold[off].get()).assume_init_drop();
                (*(*p).kids[off].get()).assume_init_drop();
            }
        }
        for p in &mut self.spine {
            let p = *p.get_mut();
            if !p.is_null() {
                // SAFETY: install sites leaked exactly these boxes.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

/// Per-shard child lists with a frozen prefix. Slot `s` of the shard
/// lives at `lists[s - moved]`; slots below `moved` have been frozen into
/// the flat slab (pop_front keeps the deque dense). The freeze for slot
/// `s` happens under this table's mutex — a reader or minter that
/// observes `moved > s` under the lock is *guaranteed* to find `s`'s
/// frozen list in the slab (the flattener wrote it before bumping
/// `moved`), even before the covering `count` publication.
struct ChildTable {
    lists: VecDeque<Vec<BlockId>>,
    moved: usize,
}

impl ChildTable {
    fn new() -> ChildTable {
        ChildTable {
            lists: VecDeque::new(),
            moved: 0,
        }
    }

    /// The live list for `slot`, growing the table as needed.
    /// Panics (underflow) if the slot is already frozen — callers check
    /// `moved` first.
    fn live_mut(&mut self, slot: usize) -> &mut Vec<BlockId> {
        let idx = slot - self.moved;
        while self.lists.len() <= idx {
            self.lists.push_back(Vec::new());
        }
        &mut self.lists[idx]
    }
}

struct Shard {
    /// Slot `i` holds the block with id `i * shards + shard_index`.
    /// Chunks are installed by CAS and never moved or freed while the
    /// store lives, so a slot's address is stable from its first write.
    spine: [AtomicPtr<Chunk>; SPINE],
    /// Forward edges per slot, in minting order — the one piece of
    /// per-block state that mutates after publication, so it lives under
    /// a (per-shard) mutex instead of next to the immutable entry. The
    /// flattener freezes lists out of the front (see [`ChildTable`]).
    children: Mutex<ChildTable>,
}

impl Default for Shard {
    fn default() -> Self {
        Shard {
            spine: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            children: Mutex::new(ChildTable::new()),
        }
    }
}

/// Inserts `id` at its ascending-id position. Child lists are kept
/// id-sorted — not "minting order": two mints racing under one parent
/// can allocate ids in one order and take the children lock in the
/// other, so arrival order is not reproducible (and in particular not
/// what WAL replay would rebuild). Sorted insert makes the live order a
/// *function of the ids*, so live trees, frozen `FlatKids`, snapshots,
/// and recovered trees all agree. Ids are allocated monotonically, so
/// the binary search almost always lands at the tail.
fn insert_sorted(list: &mut Vec<BlockId>, id: BlockId) {
    let at = list.partition_point(|&c| c < id);
    list.insert(at, id);
}

impl Shard {
    /// The chunk covering `slot`, installing it first if nobody has.
    fn chunk_for_write(&self, slot: usize) -> (&Chunk, usize) {
        let (k, off) = chunk_of(slot);
        let p = self.spine[k].load(Ordering::Acquire);
        let chunk = if p.is_null() {
            let fresh = Box::into_raw(Box::new(Chunk::new(1 << k)));
            match self.spine[k].compare_exchange(
                std::ptr::null_mut(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => fresh,
                Err(winner) => {
                    // SAFETY: ours never escaped.
                    drop(unsafe { Box::from_raw(fresh) });
                    winner
                }
            }
        } else {
            p
        };
        // SAFETY: chunks are never freed while the store lives.
        (unsafe { &*chunk }, off)
    }

    /// The entry at `slot`, if fully minted. Lock-free.
    fn entry(&self, slot: usize) -> Option<&Entry> {
        let (k, off) = chunk_of(slot);
        let p = self.spine[k].load(Ordering::Acquire);
        if p.is_null() {
            return None;
        }
        // SAFETY: chunks live as long as the store.
        let chunk = unsafe { &*p };
        if !chunk.ready[off].load(Ordering::Acquire) {
            return None;
        }
        // SAFETY: `ready` was published (Release) after the one-time
        // entry write; entries are immutable from then on.
        Some(unsafe { (*chunk.entries[off].get()).assume_init_ref() })
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        for p in &self.spine {
            let p = p.load(Ordering::Acquire);
            if !p.is_null() {
                // SAFETY: install sites leaked exactly these boxes.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

/// A lock-sharded, append-only block arena safe for concurrent minting.
///
/// Shard selection hashes the [`BlockId`] by its low bits — ids are dense
/// (one atomic counter), so consecutive mints land on distinct shards.
/// All read access goes through [`BlockView`]; each query acquires at most
/// one shard read lock at a time (child lists are copied out before any
/// callback runs), so queries never deadlock against concurrent minters.
pub struct ShardedStore {
    shards: Box<[Shard]>,
    /// Per-shard write-generation counters: every mint bumps its
    /// *parent's* shard counter (after the child-list push), so any new
    /// block moves some counter. Writers touch only one counter per mint
    /// — no shared cache line — and [`SnapshotCache`] equality-compares
    /// the vector to skip rescans when nothing changed: the
    /// copy-on-write gate for incremental snapshots.
    gens: Box<[AtomicU64]>,
    /// Per-shard high-water marks: `high[s]` is one past the largest
    /// *installed* slot of shard `s` (`fetch_max` before the slot's
    /// `ready` publication). `high[s] > slot` therefore proves some
    /// *later* mint on the shard completed — the leapfrog witness
    /// [`SnapshotCache`] gap adoption needs to tell "this id is a stuck
    /// straggler" from "this id is still being written".
    high: Box<[AtomicU64]>,
    /// The finalized slab (empty and inert unless
    /// [`flatten_capable`](Self::flatten_capable)).
    flat: FlatTier,
    /// Grace periods for spine chunks retired by the flattener. Separate
    /// from the tree's publication domain: chunk readers and chain
    /// readers have independent horizons.
    reclaim: EpochDomain,
    /// Whether this store may ever flatten. Fixed at construction: plain
    /// stores never retire chunks, so their readers skip the epoch pin
    /// entirely — zero overhead when the feature is off.
    flatten_capable: bool,
    next_id: AtomicU32,
    mask: u32,
    shift: u32,
}

impl ShardedStore {
    /// A store holding only genesis, with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        ShardedStore::with_shards(DEFAULT_SHARDS)
    }

    /// A store holding only genesis, with `shards` lock shards
    /// (power of two). Not flatten-capable: reads never pin an epoch.
    pub fn with_shards(shards: usize) -> Self {
        ShardedStore::with_config(shards, false)
    }

    /// A store that may flatten its finalized prefix into the slab tier
    /// once a watermark is raised (see
    /// [`raise_flatten_target`](Self::raise_flatten_target) and
    /// [`flatten_some`](Self::flatten_some)).
    pub fn with_flattening(shards: usize) -> Self {
        ShardedStore::with_config(shards, true)
    }

    fn with_config(shards: usize, flatten_capable: bool) -> Self {
        assert!(
            shards.is_power_of_two() && shards > 0,
            "shard count must be a power of two"
        );
        let store = ShardedStore {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            gens: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            high: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            flat: FlatTier::new(),
            reclaim: EpochDomain::new(),
            flatten_capable,
            next_id: AtomicU32::new(1),
            mask: shards as u32 - 1,
            shift: shards.trailing_zeros(),
        };
        // Install genesis (same block BlockStore::new mints into slot 0).
        let genesis = BlockStore::new().block(BlockId::GENESIS);
        store.install_entry(
            BlockId::GENESIS,
            Entry {
                block: genesis,
                cum_work: 0,
                jump: BlockId::GENESIS,
                jump_h: 0,
                jump2: BlockId::GENESIS,
                jump2_h: 0,
            },
        );
        store
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, id: BlockId) -> usize {
        (id.0 & self.mask) as usize
    }

    #[inline]
    fn slot_of(&self, id: BlockId) -> usize {
        (id.0 >> self.shift) as usize
    }

    /// Writes `id`'s one-time entry and publishes it (`Release`). Only
    /// the thread that allocated `id` may call this, exactly once.
    fn install_entry(&self, id: BlockId, entry: Entry) {
        let shard_idx = self.shard_of(id);
        let slot = self.slot_of(id);
        let (chunk, off) = self.shards[shard_idx].chunk_for_write(slot);
        // SAFETY: this thread owns `id` (it came from our fetch_add, or
        // construction-time genesis), so no other writer touches the
        // slot, and no reader looks before the `ready` publication.
        unsafe { (*chunk.entries[off].get()).write(entry) };
        // High-water before `ready`: anyone who observes `ready` for this
        // slot (and hence may leapfrog-probe earlier gaps against `high`)
        // is ordered after this fetch_max.
        self.high[shard_idx].fetch_max(slot as u64 + 1, Ordering::AcqRel);
        chunk.ready[off].store(true, Ordering::Release);
    }

    /// WAL-replay install: re-creates a committed block at its original
    /// id with its original digest (recorded verbatim — the mint-time
    /// nonce is folded in and not persisted) and the same skew-binary
    /// jump metadata the original mint computed. Replay runs in commit
    /// order, which is parent-closed, so the parent's entry is always
    /// present; and it runs on a *fresh* store before any concurrent
    /// use, so every ancestor still lives in the spine (the flat tier is
    /// empty) and plain pushes to the live child lists are safe.
    fn install_recovered(&self, rec: &crate::wal::CommitRecord) {
        let (pm_height, pm_cum, p_jump, p_jump_h, p_jump2, p_jump2_h) = {
            let e = self.shards[self.shard_of(rec.parent)]
                .entry(self.slot_of(rec.parent))
                .expect("WAL replay is parent-closed");
            (
                e.block.height,
                e.cum_work,
                e.jump,
                e.jump_h,
                e.jump2,
                e.jump2_h,
            )
        };
        // Same merge rule as `mint_checked`: the jump is a function of
        // the parent's cached heights alone, so the recovered pointers
        // are bit-identical to the originals.
        let (jump, jump_h, jump2, jump2_h) = if pm_height - p_jump_h == p_jump_h - p_jump2_h {
            let (j2, j2h) = {
                let e = self.shards[self.shard_of(p_jump2)]
                    .entry(self.slot_of(p_jump2))
                    .expect("jump ancestors recover before their descendants");
                (e.jump, e.jump_h)
            };
            (p_jump2, p_jump2_h, j2, j2h)
        } else {
            (rec.parent, pm_height, p_jump, p_jump_h)
        };
        let block = Block {
            id: rec.id,
            parent: Some(rec.parent),
            height: pm_height + 1,
            producer: rec.producer,
            merit_index: rec.merit_index,
            work: rec.work,
            digest: rec.digest,
            payload: rec.payload.clone(),
        };
        // Recovered ids arrive in commit order, not allocation order:
        // keep the allocator ahead of the largest id seen so far.
        self.next_id.fetch_max(rec.id.0 + 1, Ordering::AcqRel);
        self.install_entry(
            rec.id,
            Entry {
                block,
                cum_work: pm_cum + rec.work,
                jump,
                jump_h,
                jump2,
                jump2_h,
            },
        );
        let shard = &self.shards[self.shard_of(rec.parent)];
        shard
            .children
            .lock()
            .live_mut(self.slot_of(rec.parent))
            .push(rec.id);
        self.gens[self.shard_of(rec.parent)].fetch_add(1, Ordering::Release);
    }

    /// WAL-replay gap fill: non-member mints — orphans, `P`-rejected
    /// blocks, consensus losers — are never logged, yet they consumed
    /// ids, and the arena's invariants (snapshot adoption, flattener
    /// walk) assume the id space is dense. Install an inert
    /// genesis-parented *ghost* at every unrecovered id below the
    /// allocator frontier: zero work, empty payload, a producer no real
    /// process uses. Ghosts never enter the membership, so every
    /// membership-filtered query is blind to them.
    fn fill_recovery_gaps(&self) {
        let frontier = self.next_id.load(Ordering::Acquire);
        for raw in 1..frontier {
            let id = BlockId(raw);
            if self.has_block(id) {
                continue;
            }
            let ghost = Block {
                id,
                parent: Some(BlockId::GENESIS),
                height: 1,
                producer: crate::ids::ProcessId(u32::MAX),
                merit_index: 0,
                work: 0,
                digest: crate::ids::mix2(0xB10C_DEAD, raw as u64),
                payload: Payload::Empty,
            };
            self.install_entry(
                id,
                Entry {
                    block: ghost,
                    cum_work: 0,
                    jump: BlockId::GENESIS,
                    jump_h: 0,
                    jump2: BlockId::GENESIS,
                    jump2_h: 0,
                },
            );
            let shard = &self.shards[self.shard_of(BlockId::GENESIS)];
            shard
                .children
                .lock()
                .live_mut(self.slot_of(BlockId::GENESIS))
                .push(id);
            self.gens[self.shard_of(BlockId::GENESIS)].fetch_add(1, Ordering::Release);
        }
    }

    /// WAL-replay epilogue: live child lists are kept in ascending-id
    /// order by construction ([`insert_sorted`] — arrival order alone
    /// would *not* be reproducible, since racing mints can allocate ids
    /// in one order and record the parent edge in the other), but
    /// replay pushes children in *commit* order and the ghost fill
    /// appends last. One sort per list restores the shared invariant,
    /// making recovered `for_each_child` answers bit-identical to the
    /// live tree's. Fresh store, single-threaded, nothing frozen
    /// (`moved == 0`).
    fn sort_recovered_children(&self) {
        for shard in self.shards.iter() {
            let mut children = shard.children.lock();
            debug_assert_eq!(children.moved, 0, "recovery precedes flattening");
            for list in children.lists.iter_mut() {
                list.sort_unstable();
            }
        }
    }

    /// Mints a new block under `parent` and returns its id. Safe to call
    /// from any number of threads; `parent` must be fully minted (callers
    /// obtain parents from published tips, commit logs, or their own
    /// earlier mints — all release/acquire-ordered after the parent's
    /// shard write).
    ///
    /// The jump pointer is computed exactly as `BlockStore::mint` does
    /// (skew-binary, distance a function of height alone), reading the
    /// parent's — fully immutable — ancestor metadata.
    pub fn mint(
        &self,
        parent: BlockId,
        producer: crate::ids::ProcessId,
        merit_index: u32,
        work: u64,
        nonce: u64,
        payload: Payload,
    ) -> BlockId {
        self.mint_checked(parent, producer, merit_index, work, nonce, payload, |_| {
            true
        })
        .0
    }

    /// [`mint`](Self::mint) with a predicate run on the fully-built block
    /// *before* it is installed — the built value lives on this stack, so
    /// the check runs with **no shard lock held** and the caller never
    /// pays a lock-plus-clone round trip to re-read what it just minted
    /// (the concurrent `append` prevalidates every candidate this way).
    /// The block is installed either way — a `P`-rejected mint still
    /// occupies its arena slot, exactly as before.
    #[allow(clippy::too_many_arguments)] // mirrors `mint`, plus the check
    pub fn mint_checked(
        &self,
        parent: BlockId,
        producer: crate::ids::ProcessId,
        merit_index: u32,
        work: u64,
        nonce: u64,
        payload: Payload,
        check: impl FnOnce(&Block) -> bool,
    ) -> (BlockId, bool) {
        // One read session on the parent collects everything a child
        // needs: height/digest/cumulative work plus the jump metadata
        // (cached in the spine [`Entry`]; re-derived by two slab hops for
        // a flattened parent — jump targets of flat blocks are ancestors,
        // hence flat themselves). The whole phase runs under one
        // `walk_guard` so a concurrent flattener cannot free a spine
        // chunk mid-read; the tier is re-checked per id (pin-then-recheck).
        let (jump, jump_h, jump2, jump2_h, pm_height, pm_digest, pm_cum) = {
            let _guard = self.walk_guard(parent);
            // Slab-side parent read, also the fallback when a spine read
            // loses the race against chunk retirement (the tier re-check
            // in `flat_after_retire` proves the slab copy is published).
            let flat_parent = |s: &Self| {
                let e = s.flat.entry(parent.0);
                let j = s.flat.entry(e.jump.0);
                let j2 = s.flat.entry(j.jump.0);
                (
                    e.height, e.digest, e.cum_work, e.jump, j.height, j.jump, j2.height,
                )
            };
            let spine_parent = |e: &Entry| {
                (
                    e.block.height,
                    e.block.digest,
                    e.cum_work,
                    e.jump,
                    e.jump_h,
                    e.jump2,
                    e.jump2_h,
                )
            };
            let (pm_height, pm_digest, pm_cum, p_jump, p_jump_h, p_jump2, p_jump2_h) =
                if self.is_flat(parent) {
                    flat_parent(self)
                } else {
                    match self.shards[self.shard_of(parent)].entry(self.slot_of(parent)) {
                        Some(e) => spine_parent(e),
                        None => {
                            assert!(self.flat_after_retire(parent), "parent fully minted");
                            flat_parent(self)
                        }
                    }
                };
            // Skew-binary jump, identical to `store::jump_for_child` but
            // fed from the cached heights: merge (jump two levels up)
            // when the two previous jump spans are equal, else point at
            // the parent.
            let (jump, jump_h, jump2, jump2_h) = if pm_height - p_jump_h == p_jump_h - p_jump2_h {
                // The merged jump target's own jump fields come from its
                // entry — the only extra read, and only on merge steps.
                let flat_j2 = |s: &Self| {
                    let e = s.flat.entry(p_jump2.0);
                    (e.jump, s.flat.entry(e.jump.0).height)
                };
                let (j2, j2h) = if self.is_flat(p_jump2) {
                    flat_j2(self)
                } else {
                    match self.shards[self.shard_of(p_jump2)].entry(self.slot_of(p_jump2)) {
                        Some(e) => (e.jump, e.jump_h),
                        None => {
                            assert!(
                                self.flat_after_retire(p_jump2),
                                "jump ancestors are fully minted"
                            );
                            flat_j2(self)
                        }
                    }
                };
                (p_jump2, p_jump2_h, j2, j2h)
            } else {
                (parent, pm_height, p_jump, p_jump_h)
            };
            (jump, jump_h, jump2, jump2_h, pm_height, pm_digest, pm_cum)
        };
        let height = pm_height + 1;
        let digest = Block::compute_digest(pm_digest, producer, nonce, &payload);
        let id = BlockId(self.next_id.fetch_add(1, Ordering::AcqRel));
        let block = Block {
            id,
            parent: Some(parent),
            height,
            producer,
            merit_index,
            work,
            digest,
            payload,
        };
        // The check is shielded: `id` is already allocated, and a slot
        // that never becomes ready is a *dead gap* — snapshot adoption
        // leapfrogs it, but the flattener (and with it chunk retirement
        // and WAL compaction) would wedge behind it forever. Installing
        // the entry before resuming the unwind makes a panicked check
        // indistinguishable from a rejected one: the block occupies its
        // arena slot either way, and the id space stays dense.
        let accepted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&block)));
        self.install_entry(
            id,
            Entry {
                block,
                cum_work: pm_cum + work,
                jump,
                jump_h,
                jump2,
                jump2_h,
            },
        );
        // Forward edge on the parent, after the entry is in place: anyone
        // discovering `id` through the child list finds a complete entry.
        // One generation bump (the parent's shard) per mint suffices as
        // the change signal: `refresh_snapshot` only equality-compares
        // the generation vector to gate its scan, and every mint moves
        // the parent's counter.
        {
            let shard = &self.shards[self.shard_of(parent)];
            let mut children = shard.children.lock();
            let pslot = self.slot_of(parent);
            if pslot < children.moved {
                // The parent's list froze into the slab while we minted
                // (watermark trails the tip, so this is the reorg-tail
                // case): record the child in the late-kids side table,
                // which flat-tier child reads merge after the frozen
                // list. Decided under the same lock the freeze held, so
                // exactly one of the two lists receives the child.
                drop(children);
                insert_sorted(self.flat.late_kids.lock().entry(parent.0).or_default(), id);
            } else {
                insert_sorted(children.live_mut(pslot), id);
            }
        }
        self.gens[self.shard_of(parent)].fetch_add(1, Ordering::Release);
        // Only now — entry installed, parent edge recorded, generation
        // bumped — may a panicked check continue unwinding: the arena
        // sees a complete (if unwanted) block, not a dead gap.
        let accepted = match accepted {
            Ok(a) => a,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (id, accepted)
    }

    /// Extends `cache` with every *fully minted* block not yet adopted,
    /// in id order, stopping at the first still-in-flight mint. Safe
    /// against live minters: parents always carry smaller ids and finish
    /// minting before their children's ids are allocated, so the adopted
    /// prefix is parent-closed and internally consistent — checkers can
    /// run over `cache.store()` while the workload is still appending.
    ///
    /// Returns the number of newly adopted blocks. Cost is O(new blocks);
    /// when no shard's generation counter moved since the last refresh,
    /// the call is O(shards) and touches no shard lock at all.
    pub fn refresh_snapshot(&self, cache: &mut SnapshotCache) -> usize {
        let gens: Vec<u64> = self
            .gens
            .iter()
            .map(|g| g.load(Ordering::Acquire))
            .collect();
        if gens == cache.gens {
            return 0;
        }
        let count = self.block_count();
        let mut adopted = 0;
        // First, fill any previously leapfrogged holes whose mints have
        // since completed. Ascending id order: a fillable hole's parent
        // is fully minted (mints read their parent first), so the parent
        // — if itself a hole — is fillable and fills earlier in the walk.
        for raw in cache.base.hole_ids() {
            let id = BlockId(raw);
            if self.has_block(id) {
                cache.base.fill_hole(self.block(id));
                adopted += 1;
            }
        }
        while cache.base.len() < count {
            let id = BlockId(cache.base.len() as u32);
            if self.has_block(id) {
                // A ready id implies its whole ancestor chain is ready;
                // any still-hole ancestors were leapfrogged above and
                // completed since — fill them (deepest first) before the
                // adopt so the prefix stays parent-closed.
                let mut stragglers = Vec::new();
                let mut cur = self.meta(id).parent;
                while let Some(a) = cur {
                    if !cache.base.is_hole(a) {
                        break;
                    }
                    stragglers.push(a);
                    cur = self.meta(a).parent;
                }
                for a in stragglers.into_iter().rev() {
                    cache.base.fill_hole(self.block(a));
                    adopted += 1;
                }
                cache.base.adopt(self.block(id));
                adopted += 1;
            } else if self.shard_high(self.shard_of(id)) > self.slot_of(id) as u64 {
                // The id is mid-mint but a *later* slot on its shard has
                // already installed — the minter was leapfrogged. Adopt a
                // placeholder hole so the adoptable prefix is no longer
                // stalled behind one straggler (`mint_checked` shields
                // the `P` check, so every straggler eventually installs);
                // the fill pass above repairs it once the mint lands.
                // Holes are invisible to `has_block` and excluded
                // from membership, so checkers never read them.
                cache.base.adopt_hole();
            } else {
                break; // genuinely in-flight frontier: stop here
            }
        }
        cache.gens = gens;
        adopted
    }

    /// Materializes a sequential [`BlockStore`] with identical ids,
    /// digests, and memoized indices — the bridge to every single-threaded
    /// checker (linearizability, criteria, differential replay).
    ///
    /// Requires quiescence (no in-flight `mint`), e.g. after joining the
    /// workload threads; panics on a half-minted id. For snapshots of
    /// *live* trees, keep a [`SnapshotCache`] and call
    /// [`refresh_snapshot`](Self::refresh_snapshot) instead.
    pub fn snapshot(&self) -> BlockStore {
        let mut cache = SnapshotCache::new();
        self.refresh_snapshot(&mut cache);
        assert_eq!(
            cache.base.len(),
            self.block_count(),
            "snapshot of a half-minted id (snapshot requires quiescence)"
        );
        assert_eq!(
            cache.base.hole_count(),
            0,
            "snapshot of a dead gap: an allocated id whose mint never completed"
        );
        cache.base
    }

    /// Whether this store may flatten its finalized prefix (fixed at
    /// construction — see [`with_flattening`](Self::with_flattening)).
    pub fn flatten_capable(&self) -> bool {
        self.flatten_capable
    }

    /// Raises the flatten bound to `bound` (an *exclusive* id: everything
    /// below it may be moved to the slab tier). Monotone — lower bounds
    /// are ignored. Callers derive bounds from a committed-prefix depth
    /// threshold ([`FinalityWatermark`]); this is storage policy, not
    /// semantic finality: reads below the bound stay correct forever,
    /// reorgs included.
    pub fn raise_flatten_target(&self, bound: u32) {
        assert!(
            self.flatten_capable,
            "raise_flatten_target on a non-flattening store"
        );
        self.flat.target.fetch_max(bound, Ordering::AcqRel);
    }

    /// The current flatten bound (exclusive id).
    pub fn flatten_target(&self) -> u32 {
        self.flat.target.load(Ordering::Acquire)
    }

    /// Number of blocks flattened into the slab tier so far.
    pub fn flattened_count(&self) -> u32 {
        self.flat.count.load(Ordering::Acquire)
    }

    /// The epoch domain guarding retired spine chunks — exposed for the
    /// churn tests and observability (`retired_bytes_peak` of chunk
    /// memory, pending chunk garbage).
    pub fn reclaim_domain(&self) -> &EpochDomain {
        &self.reclaim
    }

    /// One past the largest installed slot of shard `s` (the leapfrog
    /// witness behind [`SnapshotCache`] gap adoption).
    fn shard_high(&self, s: usize) -> u64 {
        self.high[s].load(Ordering::Acquire)
    }

    /// Flattens up to `budget` blocks of the finalized prefix into the
    /// slab tier, then retires any spine chunks wholly below the new
    /// frontier through the reclaim domain. Bounded work, safe to call
    /// from any thread next to the commit paths (single-flattener ticket
    /// inside; losers return immediately). Returns blocks flattened.
    ///
    /// Per block: copy the hot/cold halves into the slab, then — under
    /// the owning shard's children lock — freeze the child list
    /// (`pop_front` + `moved` bump). The `count` publication (one
    /// `Release` store per call) is what makes the batch visible to
    /// lock-free readers; the children-lock handoff covers the window in
    /// between for child reads. Stops early at a mid-mint straggler
    /// below the bound and resumes once it completes — which it always
    /// does: `mint_checked` installs the entry even when the `P` check
    /// panics, so an allocated id cannot become a permanent dead gap
    /// that would wedge flattening (and chunk retirement, and WAL
    /// compaction) behind it.
    pub fn flatten_some(&self, budget: usize) -> usize {
        if !self.flatten_capable || budget == 0 {
            return 0;
        }
        let bound = self
            .flat
            .target
            .load(Ordering::Acquire)
            .min(self.next_id.load(Ordering::Acquire));
        // relaxed: pre-ticket probe; a stale low read only means we take
        // the ticket and re-check, a stale high read skips one call.
        if self.flat.count.load(Ordering::Relaxed) >= bound {
            return 0;
        }
        let Some(_ticket) = self.flat.work.try_lock() else {
            return 0; // another thread is flattening right now
        };
        // Sole flattener from here: `count` cannot move under us.
        // relaxed: only the ticket holder advances `count`, so this
        // re-read is of our own (or a happens-before) value.
        let start = self.flat.count.load(Ordering::Relaxed);
        let goal = bound.max(start).min(start.saturating_add(budget as u32));
        let mut next = start;
        while next < goal {
            let id = BlockId(next);
            let shard_idx = self.shard_of(id);
            let slot = self.slot_of(id);
            let Some(e) = self.shards[shard_idx].entry(slot) else {
                break; // mid-mint straggler below the bound: resume later
            };
            debug_assert!(
                e.block.parent.is_none_or(|p| p.0 < next),
                "finalized prefix is parent-closed"
            );
            let hot = FlatEntry {
                parent_raw: e.block.parent.map_or(FLAT_NO_PARENT, |p| p.0),
                height: e.block.height,
                jump: e.jump,
                cum_work: e.cum_work,
                digest: e.block.digest,
            };
            let payload = match &e.block.payload {
                Payload::Empty => None,
                p => Some(Box::new(p.clone())),
            };
            let cold = FlatCold {
                producer: e.block.producer,
                merit_index: e.block.merit_index,
                payload,
            };
            self.flat.install(next, hot, cold);
            {
                // Freeze the child list under the same lock mints push
                // through: after `moved` covers this slot, any reader or
                // minter holding the lock finds the slab copy instead.
                let mut children = self.shards[shard_idx].children.lock();
                debug_assert_eq!(children.moved, slot, "freeze follows slot order");
                let list = children.lists.pop_front().unwrap_or_default();
                self.flat.install_kids(next, list);
                children.moved += 1;
                // `pop_front` never returns capacity; shrink the deque
                // once it is mostly frozen so the live tier's footprint
                // tracks the live suffix, not the all-time peak.
                if children.lists.capacity() > 64
                    && children.lists.len() * 4 < children.lists.capacity()
                {
                    let want = (children.lists.len() * 2).max(64);
                    children.lists.shrink_to(want);
                }
            }
            next += 1;
        }
        if next > start {
            // One Release store publishes the whole batch to lock-free
            // readers (`id < count` ⇒ slots initialized).
            self.flat.count.store(next, Ordering::Release);
            self.retire_covered_chunks(next);
        }
        (next - start) as usize
    }

    /// Retires every spine chunk whose id range lies wholly below
    /// `frontier` (all its blocks are readable from the slab). The swap
    /// to null unpublishes the chunk; in-flight readers that loaded the
    /// pointer earlier are covered by their `walk_guard` pin — the epoch
    /// domain frees the box only after their grace period passes.
    fn retire_covered_chunks(&self, frontier: u32) {
        let mut retired_any = false;
        for (s, shard) in self.shards.iter().enumerate() {
            for k in 0..SPINE {
                // Largest id the chunk covers: its last slot is 2^(k+1)-2.
                let hi_slot = (1u64 << (k + 1)) - 2;
                let hi_id = (hi_slot << self.shift) | s as u64;
                if hi_id >= frontier as u64 {
                    break; // later chunks cover even larger ids
                }
                let p = shard.spine[k].swap(std::ptr::null_mut(), Ordering::AcqRel);
                if p.is_null() {
                    continue; // never installed, or already retired
                }
                let bytes = (1usize << k) * (std::mem::size_of::<Entry>() + 1);
                // SAFETY: the install site leaked exactly this box, and
                // only the single flattener (we hold the work ticket)
                // swaps spine pointers out.
                self.reclaim.retire_box(bytes, unsafe { Box::from_raw(p) });
                retired_any = true;
            }
        }
        if retired_any {
            self.reclaim.try_reclaim();
        }
    }

    /// Approximate resident heap bytes of the arena: live spine chunks
    /// (entries + ready flags), child-list capacity, the flat slab
    /// (hot/cold/kids slots plus out-of-line many-child boxes), and the
    /// late-kids side table. Payload heap (boxed payloads, transaction
    /// vectors) is excluded — it is workload-owned data both tiers carry
    /// equally. O(arena) on the slab scan; an observability probe, not a
    /// hot-path call.
    pub fn approx_heap_bytes(&self) -> usize {
        let mut total = 0usize;
        for shard in self.shards.iter() {
            for k in 0..SPINE {
                if !shard.spine[k].load(Ordering::Acquire).is_null() {
                    total += (1usize << k) * (std::mem::size_of::<Entry>() + 1);
                }
            }
            let children = shard.children.lock();
            total += children.lists.capacity() * std::mem::size_of::<Vec<BlockId>>();
            for l in children.lists.iter() {
                total += l.capacity() * std::mem::size_of::<BlockId>();
            }
        }
        let slot_bytes = std::mem::size_of::<FlatEntry>()
            + std::mem::size_of::<FlatCold>()
            + std::mem::size_of::<FlatKids>();
        for k in 0..SPINE {
            if !self.flat.spine[k].load(Ordering::Acquire).is_null() {
                total += (1usize << k) * slot_bytes;
            }
        }
        for id in 0..self.flat.count.load(Ordering::Acquire) {
            total += self.flat.kids_heap_bytes(id);
        }
        let late = self.flat.late_kids.lock();
        total += late.len() * std::mem::size_of::<(u32, Vec<BlockId>)>();
        for l in late.values() {
            total += l.capacity() * std::mem::size_of::<BlockId>();
        }
        total
    }
}

// SAFETY: the only interior mutability is (a) spine chunk slots, written
// exactly once by the thread owning the id and published with a
// Release/Acquire `ready` flag, immutable afterwards (chunks retired by
// the flattener are freed only through the epoch domain's grace period);
// (b) slab slots, written by the single flattener (work ticket) and
// published in batches by the `count` Release store, immutable
// afterwards; (c) child lists and the late-kids table, behind mutexes.
// All are safe to share across threads.
unsafe impl Sync for ShardedStore {}
// SAFETY: same argument as Sync above; no thread-affine state is held.
unsafe impl Send for ShardedStore {}

impl Default for ShardedStore {
    fn default() -> Self {
        ShardedStore::new()
    }
}

/// An incrementally maintained sequential snapshot of a [`ShardedStore`].
///
/// Holds the adopted prefix as a plain [`BlockStore`] plus the per-shard
/// generation counters observed at the last refresh. Each
/// [`ShardedStore::refresh_snapshot`] call extends the prefix by only the
/// newly minted blocks (never rescanning the arena), and skips even that
/// when no generation moved — which is what makes running the sequential
/// checkers against a live, non-quiescent tree affordable.
pub struct SnapshotCache {
    base: BlockStore,
    gens: Vec<u64>,
}

impl SnapshotCache {
    /// An empty cache (genesis only, no generations observed).
    pub fn new() -> Self {
        SnapshotCache {
            base: BlockStore::new(),
            gens: Vec::new(),
        }
    }

    /// The adopted prefix as a sequential store.
    pub fn store(&self) -> &BlockStore {
        &self.base
    }

    /// Blocks adopted so far (including genesis).
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Never empty: genesis is always adopted.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Default for SnapshotCache {
    fn default() -> Self {
        SnapshotCache::new()
    }
}

/// The tier-check read protocol. Every read dispatches on one branch —
/// `id < flat.count` (Acquire) — to the slab or the spine. Spine reads on
/// a flatten-capable store additionally pin the chunk-reclaim domain
/// first ([`walk_guard`](Self::walk_guard)): pin-then-recheck makes them
/// safe against a concurrent flattener retiring the chunk (a chunk
/// observed unretired after the pin cannot be freed while the pin
/// lives — retirement happens after the pin, and the grace period covers
/// it). Non-capable stores never retire chunks, so their reads skip the
/// pin entirely and cost exactly what they did before the tier existed.
impl ShardedStore {
    /// Whether `id` lives in the flattened slab — the one branch on the
    /// read hot path.
    #[inline]
    fn is_flat(&self, id: BlockId) -> bool {
        id.0 < self.flat.count.load(Ordering::Acquire)
    }

    /// Pin for a spine read (or a walk that may touch the spine) rooted
    /// at `id`. `None` when no pin is needed: non-capable store, or `id`
    /// already flat — every id a walk visits from a flat block is a
    /// (smaller, hence flat) ancestor, so the walk never touches the
    /// spine at all.
    #[inline]
    fn walk_guard(&self, id: BlockId) -> Option<Guard<'_>> {
        if !self.flatten_capable || self.is_flat(id) {
            None
        } else {
            Some(self.reclaim.pin())
        }
    }

    /// Metadata read with the tier branch but *no* pin — callers hold a
    /// [`walk_guard`](Self::walk_guard) (or the store is non-capable).
    /// The tier is re-checked per read: a block may flatten between the
    /// caller's pin and this load, in which case the slab copy is
    /// already published and we read that instead — and re-checked once
    /// more on a `None` spine read, which closes the
    /// tier-check-vs-retirement window (see
    /// [`flat_after_retire`](Self::flat_after_retire)).
    #[inline]
    fn meta_raw(&self, id: BlockId) -> BlockMeta {
        if self.is_flat(id) {
            return self.flat_meta(id);
        }
        match self.shards[self.shard_of(id)].entry(self.slot_of(id)) {
            Some(e) => BlockMeta {
                parent: e.block.parent,
                height: e.block.height,
                work: e.block.work,
                cum_work: e.cum_work,
                digest: e.block.digest,
                jump: e.jump,
            },
            None => {
                assert!(self.flat_after_retire(id), "meta of a half-minted id");
                self.flat_meta(id)
            }
        }
    }

    /// The slow half of the tier-check read protocol: a spine read that
    /// came back `None` for an id the caller believes fully minted. Two
    /// causes are possible, and one tier re-check tells them apart:
    ///
    /// * The flattener retired the chunk *between* the caller's
    ///   `is_flat` load and the spine load. The retirement swap
    ///   (`AcqRel` in [`retire_covered_chunks`](Self::retire_covered_chunks))
    ///   is sequenced after the covering `count` publication, so a
    ///   reader whose `Acquire` pointer load observed the swapped null
    ///   is ordered after that publication — re-checking `is_flat` now
    ///   is *guaranteed* to route the read to the slab.
    /// * The id genuinely is not fully minted (possible only for probes
    ///   like `has_block`: callers reading "known" ids obtained them
    ///   through a release/acquire edge after the install, so their
    ///   spine read cannot miss). The re-check stays `false` and the
    ///   caller keeps its half-minted verdict.
    #[cold]
    fn flat_after_retire(&self, id: BlockId) -> bool {
        self.is_flat(id)
    }

    fn flat_meta(&self, id: BlockId) -> BlockMeta {
        let e = self.flat.entry(id.0);
        let parent = (e.parent_raw != FLAT_NO_PARENT).then_some(BlockId(e.parent_raw));
        // `work` is derived, not stored: the parent (a smaller id) is
        // flat whenever `id` is, so its cumulative work is one slab read
        // away. Genesis carries work 0 = its own cum_work.
        let work = match parent {
            Some(p) => e.cum_work.wrapping_sub(self.flat.entry(p.0).cum_work),
            None => e.cum_work,
        };
        BlockMeta {
            parent,
            height: e.height,
            work,
            cum_work: e.cum_work,
            digest: e.digest,
            jump: e.jump,
        }
    }

    /// Reconstructs a flattened block (payload cloned out of the slab).
    fn flat_block(&self, id: BlockId) -> Block {
        let m = self.flat_meta(id);
        let (producer, merit_index, payload) = self.flat.with_cold(id.0, |c| {
            (
                c.producer,
                c.merit_index,
                c.payload.as_deref().cloned().unwrap_or(Payload::Empty),
            )
        });
        Block {
            id,
            parent: m.parent,
            height: m.height,
            producer,
            merit_index,
            work: m.work,
            digest: m.digest,
            payload,
        }
    }

    /// The lean navigation triple (parent, height, jump) the ancestry
    /// walks run on: for a flat id this touches exactly one 32-byte slab
    /// line — no cold half, no derived `work`, no parent entry — which
    /// is where the walk-at-depth speedup comes from.
    #[inline]
    fn nav_raw(&self, id: BlockId) -> (Option<BlockId>, u32, BlockId) {
        if self.is_flat(id) {
            return self.flat_nav(id);
        }
        match self.shards[self.shard_of(id)].entry(self.slot_of(id)) {
            Some(e) => (e.block.parent, e.block.height, e.jump),
            None => {
                assert!(self.flat_after_retire(id), "walk through a half-minted id");
                self.flat_nav(id)
            }
        }
    }

    #[inline]
    fn flat_nav(&self, id: BlockId) -> (Option<BlockId>, u32, BlockId) {
        let e = self.flat.entry(id.0);
        (
            (e.parent_raw != FLAT_NO_PARENT).then_some(BlockId(e.parent_raw)),
            e.height,
            e.jump,
        )
    }

    /// [`BlockView::ancestor_at`]'s exact algorithm over
    /// [`nav_raw`](Self::nav_raw); callers hold the walk guard.
    fn ancestor_at_raw(&self, id: BlockId, height: u32) -> BlockId {
        let (mut parent, mut h, mut jump) = self.nav_raw(id);
        assert!(height <= h, "requested height {height} above block at {h}");
        let mut cur = id;
        while h > height {
            let (jp, jh, jj) = self.nav_raw(jump);
            if jh >= height {
                cur = jump;
                (parent, h, jump) = (jp, jh, jj);
            } else {
                cur = parent.expect("above genesis, parent exists");
                (parent, h, jump) = self.nav_raw(cur);
            }
        }
        cur
    }

    /// Children of `id` across tiers, in ascending-id order (the
    /// [`insert_sorted`] invariant, which WAL recovery reproduces).
    fn children_of(&self, id: BlockId) -> Vec<BlockId> {
        if self.is_flat(id) {
            let mut kids = self.flat.kids_clone(id.0);
            self.extend_with_late_kids(id, &mut kids);
            return kids;
        }
        {
            let children = self.shards[self.shard_of(id)].children.lock();
            let slot = self.slot_of(id);
            if slot >= children.moved {
                return children
                    .lists
                    .get(slot - children.moved)
                    .cloned()
                    .unwrap_or_default();
            }
            // Frozen while we approached. The flattener wrote the slab
            // list *before* bumping `moved` under this very lock, so the
            // copy is visible to us now even though the covering `count`
            // publication may not have landed yet.
        }
        let mut kids = self.flat.kids_clone(id.0);
        self.extend_with_late_kids(id, &mut kids);
        kids
    }

    /// Merges in children minted after `id`'s list froze. Both halves
    /// are id-sorted, but a late kid may carry a *smaller* id than a
    /// frozen-list member (its id was allocated before the freeze, its
    /// push landed after), so the concatenation is re-sorted to restore
    /// the global ascending-id order.
    fn extend_with_late_kids(&self, id: BlockId, kids: &mut Vec<BlockId>) {
        let late = self.flat.late_kids.lock();
        if let Some(extra) = late.get(&id.0) {
            kids.extend_from_slice(extra);
            kids.sort_unstable();
        }
    }
}

impl BlockView for ShardedStore {
    fn block_count(&self) -> usize {
        self.next_id.load(Ordering::Acquire) as usize
    }

    fn has_block(&self, id: BlockId) -> bool {
        if self.is_flat(id) {
            return true;
        }
        if !self.flatten_capable {
            return self.shards[self.shard_of(id)]
                .entry(self.slot_of(id))
                .is_some();
        }
        let _guard = self.reclaim.pin();
        self.is_flat(id)
            || self.shards[self.shard_of(id)]
                .entry(self.slot_of(id))
                .is_some()
            // A `None` spine read may have hit a chunk the flattener
            // retired between the two loads above; the final re-check
            // (ordered after the retirement swap) settles it so an
            // existing block is never reported absent.
            || self.flat_after_retire(id)
    }

    fn meta(&self, id: BlockId) -> BlockMeta {
        let _guard = self.walk_guard(id);
        self.meta_raw(id)
    }

    fn with_block(&self, id: BlockId, f: &mut dyn FnMut(&Block)) {
        let _guard = self.walk_guard(id);
        if self.is_flat(id) {
            f(&self.flat_block(id));
            return;
        }
        match self.shards[self.shard_of(id)].entry(self.slot_of(id)) {
            Some(e) => f(&e.block),
            None => {
                assert!(self.flat_after_retire(id), "block of a half-minted id");
                f(&self.flat_block(id));
            }
        }
    }

    fn for_each_child(&self, id: BlockId, f: &mut dyn FnMut(BlockId)) {
        debug_assert!(self.has_block(id), "children of a half-minted id");
        // Copy the child list out so `f` may query the store without any
        // lock held (no nested acquisition, no deadlock). Child reads
        // never touch spine chunks, so no walk guard is needed here.
        for c in self.children_of(id) {
            f(c);
        }
    }

    // Walk overrides: same algorithms as the trait defaults (bit-identical
    // answers — the differential suite checks this), but one epoch pin for
    // the *whole* walk instead of one per `meta`, and the lean `nav_raw`
    // read per step. Every id a walk visits is ≤ its starting id's height
    // ancestry, hence covered by a guard taken on the largest root id.

    fn parent(&self, id: BlockId) -> Option<BlockId> {
        let _guard = self.walk_guard(id);
        self.nav_raw(id).0
    }

    fn height(&self, id: BlockId) -> u32 {
        let _guard = self.walk_guard(id);
        self.nav_raw(id).1
    }

    fn ancestor_at(&self, id: BlockId, height: u32) -> BlockId {
        let _guard = self.walk_guard(id);
        self.ancestor_at_raw(id, height)
    }

    fn is_ancestor(&self, a: BlockId, b: BlockId) -> bool {
        let _guard = self.walk_guard(BlockId(a.0.max(b.0)));
        let (ha, hb) = (self.nav_raw(a).1, self.nav_raw(b).1);
        if ha > hb {
            return false;
        }
        self.ancestor_at_raw(b, ha) == a
    }

    fn common_ancestor(&self, a: BlockId, b: BlockId) -> BlockId {
        let _guard = self.walk_guard(BlockId(a.0.max(b.0)));
        let (ha, hb) = (self.nav_raw(a).1, self.nav_raw(b).1);
        let (mut x, mut y) = if ha <= hb {
            (a, self.ancestor_at_raw(b, ha))
        } else {
            (self.ancestor_at_raw(a, hb), b)
        };
        while x != y {
            let ((px, _, jx), (py, _, jy)) = (self.nav_raw(x), self.nav_raw(y));
            if jx != jy {
                x = jx;
                y = jy;
            } else {
                x = px.expect("disjoint roots");
                y = py.expect("disjoint roots");
            }
        }
        x
    }

    fn path_from_genesis(&self, tip: BlockId) -> Vec<BlockId> {
        let _guard = self.walk_guard(tip);
        let mut out = Vec::with_capacity(self.nav_raw(tip).1 as usize + 1);
        let mut cur = Some(tip);
        while let Some(id) = cur {
            out.push(id);
            cur = self.nav_raw(id).0;
        }
        out.reverse();
        out
    }
}

/// Stage-1 state — the serialization point of commit decisions: what a
/// block's mint resolution, membership insert, and selection scoring
/// must see atomically. Publication state deliberately lives elsewhere
/// ([`PubState`]) so the fsync and pointer swap of one batch can overlap
/// the next batch's drain.
struct SelState {
    tree: TreeMembership,
    /// Membership inserts in commit order (parent-closed by construction):
    /// replaying it into the sequential machinery must reproduce the same
    /// selected chain (see `tests/selection_differential.rs`).
    commit_log: Vec<BlockId>,
    /// Per-id commit-log position + 1, indexed by `BlockId` (0 = not
    /// committed). Paired with the tree-level `published_upto` counter
    /// this answers `is_committed` *publication-aware*: a block counts as
    /// committed once a publication covering its log entry has swapped
    /// in — the same instant its appender may be told `Some(id)`.
    log_pos: Vec<u32>,
    /// Per-rule selection scratch (GHOST subtree weights live here), fed
    /// by the batched scoring path.
    aux: SelectionAux,
    /// The selected tip over the committed membership — authoritative,
    /// unlike the lag-prone `published_tip` hint.
    tip: BlockId,
}

/// Durability state riding the publication lock.
struct WalState {
    wal: Wal,
    /// Longest commit-log prefix whose every id is below the flatten
    /// target — storage-final, so safe to checkpoint. A monotone cursor:
    /// both the commit log and the flatten target only grow.
    final_prefix: usize,
}

/// Stage-2 state — everything publication needs, behind its own lock so
/// stage 1 never waits on an fsync. Lock order: `publ` is only ever
/// *waited on* with `sel` released; the inline fast path may *claim* it
/// inside `sel` via a non-blocking `try_lock` (safe because no holder of
/// `publ` ever waits on `sel`). The only locks taken while holding
/// `publ` are the `staged` and `pending_ckpt` leaves.
struct PubState {
    /// The published `{b0}⌢f(bt)` chain, advanced in place a whole
    /// batch at a time (`crate::tipcache::advance_chain`): a direct
    /// extension pushes, anything else splices at the fork.
    chain: Blockchain,
    /// The durable commit log, when this tree was opened with
    /// [`ConcurrentBlockTree::open_durable`]. The WAL append runs here
    /// in stage 2: one group-commit fsync covers every batch staged
    /// since the previous publication, and persist-then-ack holds
    /// because statuses land only after
    /// [`publish_staged`](ConcurrentBlockTree::publish_staged) returns.
    wal: Option<WalState>,
    /// Commit-log mirror (durable trees only), extended as batches
    /// publish: lets the checkpoint cursor and its prefix snapshot run
    /// entirely under the publication lock without retaking `sel`.
    logged_ids: Vec<BlockId>,
    /// Recycled batch buffer: publishers drain the staged queue by
    /// swapping this (empty, capacity retained) in, and park the drained
    /// vector back here once published — the steady state allocates
    /// nothing per publication.
    spare: Vec<PubBatch>,
}

/// One stage-1 batch awaiting publication — the handoff unit between
/// the selection lock and the publication lock.
struct PubBatch {
    /// Commit-log length after this batch: what `published_upto`
    /// becomes once a swap covers it.
    upto: u64,
    /// The selected tip after this batch.
    tip: BlockId,
    /// The batch's newly committed ids in commit order, for the stage-2
    /// WAL append (left empty on volatile trees, which publish
    /// tip-only).
    ids: Vec<BlockId>,
}

/// An inline publication claim: the appender found the publication lock
/// free (one non-blocking try, made while still holding the selection
/// lock) and owns stage 2 outright — its batch, appended after whatever
/// the staged queue held, publishes directly once the selection lock
/// drops, with no queue push and no second staged-mutex round trip.
struct ClaimedPub<'t> {
    publ: crate::sync::MutexGuard<'t, PubState>,
    /// The run to publish, in commit-log order; the claimant's own batch
    /// is last.
    batches: Vec<PubBatch>,
}

/// A completed stage-1 drain awaiting settlement. `CommitQueue::take_all`
/// removed the requests from the queue, so whoever holds this owes every
/// one a status — delivered by
/// [`settle_commit`](ConcurrentBlockTree::settle_commit) only *after*
/// the covering publication (publish-before-respond), with the selection
/// lock already released so responses wait on stage 2 without the lock
/// waiting too.
struct DrainSettle {
    batch: Vec<*const CommitReq>,
    /// Outcome per request, index-aligned with `batch`; a missing tail
    /// (user-code panic mid-batch) resolves as rejected.
    outcomes: Vec<Option<BlockId>>,
    /// A user-code panic captured mid-drain, resumed by settlement after
    /// the statuses are delivered — nobody waits forever.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// An epoch-guarded borrowed view of the published chain `{b0}⌢f(bt)` —
/// what [`ConcurrentBlockTree::read`] returns.
///
/// Dereferences to [`Blockchain`]; the pointee stays valid for as long as
/// the view (and its epoch pin) lives, **without** bumping the chain's
/// shared `Arc` refcount — which is what lets full-chain reads scale
/// across reader threads instead of serializing on one refcount cache
/// line. Call [`to_owned`](Self::to_owned) to upgrade to an owned
/// [`Blockchain`] (the `Arc` clone) when the snapshot must outlive the
/// view — e.g. to store it in a recorded history.
///
/// Holding a view parks its epoch pin: retired snapshots accumulate (but
/// are never unsafe) until it drops. Hold views briefly; hold
/// [`Blockchain`]s long.
pub struct ChainView<'t> {
    chain: *const Blockchain,
    _guard: Guard<'t>,
}

impl std::ops::Deref for ChainView<'_> {
    type Target = Blockchain;

    #[inline]
    fn deref(&self) -> &Blockchain {
        // SAFETY: the pointee was published via `Box::into_raw` and is
        // retired through the epoch domain this view's guard pins — it
        // cannot be freed before the guard drops, and published chains
        // are immutable.
        unsafe { &*self.chain }
    }
}

impl ChainView<'_> {
    /// Upgrades to an owned snapshot (an `Arc` clone of the underlying
    /// buffer) that survives past this view.
    pub fn to_owned(&self) -> Blockchain {
        (**self).clone()
    }
}

impl PartialEq<Blockchain> for ChainView<'_> {
    fn eq(&self, other: &Blockchain) -> bool {
        **self == *other
    }
}

impl PartialEq for ChainView<'_> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl std::fmt::Debug for ChainView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl std::fmt::Display for ChainView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&**self, f)
    }
}

/// A thread-safe BlockTree: Def. 3.1 semantics under concurrent appenders
/// with lock-free O(1) `read()`.
///
/// See the module docs for the architecture. The selection function and
/// validity predicate are immutable over the computation, as the paper
/// requires.
pub struct ConcurrentBlockTree<F: SelectionFn, P: ValidityPredicate> {
    store: ShardedStore,
    selection: F,
    predicate: P,
    /// Committed-prefix depth threshold behind the storage watermark:
    /// every publication derives `chain[len-1-depth]` as the new
    /// (monotone) flatten bound. Disabled ⇒ the store is not even
    /// flatten-capable and reads pay zero overhead.
    watermark: FinalityWatermark,
    sel: Mutex<SelState>,
    /// Stage-2 publication state (chain, WAL, checkpoint cursor); see
    /// [`PubState`] for the lock order.
    publ: Mutex<PubState>,
    /// Stage-1 → stage-2 handoff: batches staged under `sel` in
    /// commit-log order, popped (all at once) under `publ`. A leaf lock:
    /// pushed to inside `sel`, popped inside `publ`, never held across
    /// any other acquisition.
    staged: Mutex<Vec<PubBatch>>,
    /// Commit-log length covered by staged batches (monotone; written
    /// under `sel`). With `published_upto` this forms the fast path of
    /// [`publish_staged`](Self::publish_staged): publication caught up
    /// means some other publisher already covered everything this
    /// thread staged.
    staged_upto: AtomicU64,
    /// Commit-log length covered by the current publication (monotone;
    /// written under `publ` after the swap, read lock-free by
    /// `is_committed`).
    published_upto: AtomicU64,
    /// Whether commits must be persisted. Set once in `open_durable`
    /// before the tree is shared; gates the per-batch id copy the
    /// stage-2 WAL append consumes.
    durable: bool,
    /// Pending appends awaiting a batch drain (see `crate::commit`).
    queue: CommitQueue,
    /// Grace-period tracking for readers of `published`. Declared before
    /// `spares`: fields drop in declaration order, so the domain's drop
    /// (which runs pending recycle items against the bin) precedes the
    /// bin's.
    epochs: EpochDomain,
    /// Reclaimed publication boxes awaiting reuse (see `publish_locked`).
    /// Boxed because pending epoch items hold its *address*: the tree
    /// struct itself may be moved by the owner between an append and the
    /// drop, but the bin's heap allocation never moves.
    spares: Box<RecycleBin<Blockchain>>,
    /// Current `{b0}⌢f(bt)`; always a valid leaked box.
    published: AtomicPtr<Blockchain>,
    /// The published chain's tip id, readable without touching the box.
    published_tip: AtomicU32,
    /// Monotone commit-generation counter, bumped *after* every
    /// publication swap (generation-after-publication: a thread that
    /// observes generation g can already `read()` the chain g published).
    /// This is what decide-path waiters park on instead of spinning.
    commit_gen: AtomicU64,
    /// Threads currently parked (or about to park) on `gen_cv`.
    /// Publications skip the condvar entirely while this is zero, so the
    /// uncontended commit path pays one load, no lock, no syscall.
    gen_waiters: AtomicUsize,
    /// Pairs with `gen_cv`; protects nothing — it exists to close the
    /// check-then-park race (see [`wait_commit_past`](Self::wait_commit_past)).
    gen_lock: Mutex<()>,
    gen_cv: Condvar,
    /// Appends committed on the inline fast path (no queue traffic).
    inline_commits: AtomicU64,
    /// EWMA of drained batch sizes, ×8 fixed point (8 = mean batch 1.0).
    /// Sizes the adaptive reclamation threshold.
    avg_batch_x8: AtomicU32,
    /// Wall nanoseconds spent in stage-1 batch drains (mint resolution,
    /// membership inserts, scoring, staging) while holding the
    /// selection lock. The inline fast path is deliberately untimed —
    /// its per-append clock reads would tax exactly the path the
    /// pipeline exists to keep cheap; `inline_appends` counts it.
    stat_drain_ns: AtomicU64,
    /// The slice of `stat_drain_ns` spent in batched selection scoring.
    stat_score_ns: AtomicU64,
    /// Wall nanoseconds spent publishing (WAL group commit, chain
    /// splice, pointer swap) while holding the publication lock. Like
    /// `stat_drain_ns`, this times the queue paths only: an inline
    /// appender that claims the free publication lock publishes untimed
    /// — per-append clock reads would tax exactly the path the pipeline
    /// exists to keep cheap.
    stat_publish_ns: AtomicU64,
    /// A WAL checkpoint claimed under the selection lock but not yet
    /// written: the O(prefix) record encoding, temp-file write, fsync,
    /// and rename all run in [`run_pending_checkpoint`] *off* the
    /// selection lock — parked appenders wake on commit latency, not
    /// maintenance latency. Lock order: this mutex is only ever taken
    /// either alone or *inside* `sel` (the stash), never held while
    /// waiting on `sel`.
    ///
    /// [`run_pending_checkpoint`]: Self::run_pending_checkpoint
    pending_ckpt: Mutex<Option<PendingCheckpoint>>,
    /// Degraded-mode latch (durable trees only): set — never cleared —
    /// when a data-path WAL append fails, because a failed fsync may
    /// have silently dropped the dirty pages it claimed to cover and a
    /// retry that "succeeds" proves nothing (the fsyncgate rule).
    /// Commit paths fail fast with a [`DurabilityError`] once this is
    /// up; reads of the already-published prefix keep working.
    poisoned: AtomicBool,
    /// The first [`DurabilityError`] that poisoned the tree, kept for
    /// every subsequent degraded-mode response. A leaf lock (taken
    /// alone, never while waiting on another).
    poison_err: Mutex<Option<DurabilityError>>,
}

/// A claimed WAL checkpoint awaiting its off-lock IO: the detached job
/// plus the finalized commit-log prefix it covers (ids only — records
/// are rebuilt from the arena off-lock, where the reads are lock-free).
struct PendingCheckpoint {
    job: CheckpointJob,
    ids: Vec<BlockId>,
}

/// Default finality depth for [`ConcurrentBlockTree`]: blocks this many
/// links behind the selected tip are flattened into the slab tier. Deep
/// enough that reorg tails essentially never reach below it (the
/// late-kids path stays cold), shallow enough that long-running trees
/// keep their resident prefix compact.
pub const DEFAULT_FINALITY_DEPTH: u32 = 128;

/// Flattening work per commit-path visit (blocks copied to the slab).
/// Like the adaptive reclamation sweep, this bounds the latency any
/// single append donates to background maintenance; a batch of B appends
/// advances the watermark by B, so a budget ≥ 1 per publication keeps up
/// and 64 lets the flattener catch up quickly after bursts.
const FLATTEN_BUDGET: usize = 64;

impl<F: SelectionFn, P: ValidityPredicate> ConcurrentBlockTree<F, P> {
    /// A tree holding only `b0`, with [`DEFAULT_SHARDS`] store shards and
    /// the [`DEFAULT_FINALITY_DEPTH`] storage watermark.
    pub fn new(selection: F, predicate: P) -> Self {
        ConcurrentBlockTree::with_shards(DEFAULT_SHARDS, selection, predicate)
    }

    /// A tree holding only `b0`, with an explicit shard count.
    pub fn with_shards(shards: usize, selection: F, predicate: P) -> Self {
        ConcurrentBlockTree::with_config(
            shards,
            FinalityWatermark::new(DEFAULT_FINALITY_DEPTH),
            selection,
            predicate,
        )
    }

    /// Full-control constructor: shard count plus the finality watermark
    /// driving finalized-prefix flattening.
    /// [`FinalityWatermark::disabled`] yields a tree whose store never
    /// flattens (and whose reads skip the tier machinery's epoch pin).
    pub fn with_config(
        shards: usize,
        watermark: FinalityWatermark,
        selection: F,
        predicate: P,
    ) -> Self {
        ConcurrentBlockTree {
            store: if watermark.is_enabled() {
                ShardedStore::with_flattening(shards)
            } else {
                ShardedStore::with_shards(shards)
            },
            selection,
            predicate,
            watermark,
            sel: Mutex::new(SelState {
                tree: TreeMembership::genesis_only(),
                commit_log: Vec::new(),
                log_pos: Vec::new(),
                aux: SelectionAux::new(),
                tip: BlockId::GENESIS,
            }),
            publ: Mutex::new(PubState {
                chain: Blockchain::genesis(),
                wal: None,
                logged_ids: Vec::new(),
                spare: Vec::new(),
            }),
            staged: Mutex::new(Vec::new()),
            staged_upto: AtomicU64::new(0),
            published_upto: AtomicU64::new(0),
            durable: false,
            queue: CommitQueue::new(),
            epochs: EpochDomain::new(),
            spares: Box::new(RecycleBin::new(RECLAIM_PENDING_MAX)),
            published: AtomicPtr::new(Box::into_raw(Box::new(Blockchain::genesis()))),
            published_tip: AtomicU32::new(BlockId::GENESIS.0),
            commit_gen: AtomicU64::new(0),
            gen_waiters: AtomicUsize::new(0),
            gen_lock: Mutex::new(()),
            gen_cv: Condvar::new(),
            inline_commits: AtomicU64::new(0),
            avg_batch_x8: AtomicU32::new(8),
            stat_drain_ns: AtomicU64::new(0),
            stat_score_ns: AtomicU64::new(0),
            stat_publish_ns: AtomicU64::new(0),
            pending_ckpt: Mutex::new(None),
            poisoned: AtomicBool::new(false),
            poison_err: Mutex::new(None),
        }
    }

    /// Whether the tree has entered degraded (read-only) mode after a
    /// data-path persistence failure. Monotone: once poisoned, every
    /// commit path returns [`DurabilityError`] and only reads of the
    /// already-published prefix keep working. Always `false` on
    /// volatile trees.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// The error that poisoned the tree, or `None` while healthy.
    pub fn durability_error(&self) -> Option<DurabilityError> {
        if self.is_poisoned() {
            Some(self.poison_error())
        } else {
            None
        }
    }

    /// Latches degraded mode: records the first error, raises the flag,
    /// and wakes every parked decide-path waiter — a poisoned tree
    /// publishes no further generations, so without the wakeup they
    /// would sleep until their deadlines.
    fn poison_with(&self, err: DurabilityError) {
        {
            let mut slot = self.poison_err.lock();
            if slot.is_none() {
                *slot = Some(err);
            }
        }
        self.poisoned.store(true, Ordering::Release);
        // Same lock-then-notify shape as publication: a waiter between
        // its poison recheck (under `gen_lock`) and its park either sees
        // the flag there or is already parked when this notify fires.
        drop(self.gen_lock.lock());
        self.gen_cv.notify_all();
    }

    /// The stored poisoning error (or the generic marker if the flag
    /// won the race to a caller before the slot was filled).
    fn poison_error(&self) -> DurabilityError {
        (*self.poison_err.lock()).unwrap_or(DurabilityError::Poisoned)
    }

    /// The degraded-mode exit check every commit path runs on its own
    /// outcome: an id may be acked only if some publication covers it —
    /// on a poisoned tree that means a publication that succeeded
    /// *before* the poisoning. Anything else (an uncovered insert, or a
    /// commit skipped outright) surfaces the poisoning error instead of
    /// a status the durable log cannot corroborate.
    fn guard_outcome(&self, outcome: Option<BlockId>) -> Result<Option<BlockId>, DurabilityError> {
        match outcome {
            Some(id) if self.is_poisoned() && !self.is_committed(id) => Err(self.poison_error()),
            o => Ok(o),
        }
    }

    /// `read()`: the blockchain `{b0}⌢f(bt)` as an epoch-guarded borrowed
    /// [`ChainView`]. Lock-free and refcount-free — one epoch pin (a CAS
    /// on a thread-private padded slot) plus one `Acquire` pointer load;
    /// O(1) regardless of chain length, tree size, or writer activity,
    /// and readers on different threads touch no common cache line.
    pub fn read(&self) -> ChainView<'_> {
        let guard = self.epochs.pin();
        // The pin (SeqCst CAS + fence) happens before this load, so the
        // loaded box cannot complete a grace period while `guard` lives.
        let p = self.published.load(Ordering::Acquire);
        ChainView {
            chain: p,
            _guard: guard,
        }
    }

    /// `read()` upgraded to an owned [`Blockchain`] in one call — for
    /// callers that store the snapshot (recorded histories, replays).
    pub fn read_owned(&self) -> Blockchain {
        self.read().to_owned()
    }

    /// The tip of `f(bt)` — one `Acquire` load of the published tip id;
    /// no lock, no pin, no pointer chase.
    ///
    /// This is a monotone *hint*, not an operation linearized with
    /// [`read`](Self::read): the tip id is a separate atomic from the
    /// chain pointer, so a caller interleaving both may see this value
    /// lag a just-observed chain by one in-flight publication. The BT-ADT
    /// surface of Def. 3.1 (append/read — what the recorded-history
    /// checkers judge) is unaffected; internal users treat it as the
    /// optimistic mint target, where a stale answer only costs a re-mint
    /// in the drain. Callers that need the tip consistent with a chain
    /// should take one `read()` and use [`Blockchain::tip`].
    pub fn selected_tip(&self) -> BlockId {
        BlockId(self.published_tip.load(Ordering::Acquire))
    }

    /// `append(b)` per Def. 3.1, safe under concurrent appenders: mints
    /// `candidate` under the tip of `f(bt)`; if valid it joins the tree
    /// (returning its id), else the tree is unchanged and `None` returns.
    ///
    /// Two-speed (see `crate::commit`): the mint and validity check run
    /// outside any lock against the published tip — the candidate's
    /// payload is *moved* into the arena, never cloned (a re-mint after a
    /// lost tip race reads it back from the orphan; that is the only copy
    /// on the whole path). Then:
    ///
    /// * **Inline fast path**: if the selection mutex is free on the
    ///   first CAS (`try_lock`), commit right here — membership insert
    ///   and re-selection under the lock, publication staged and
    ///   performed right after its release — with no request node, no
    ///   queue push, and no status-word roundtrip. With a single appender
    ///   this is every append, and it costs the mint plus one uncontended
    ///   lock (per stage).
    /// * **Staged queue**: otherwise a drainer is at work; push a
    ///   stack-allocated [`CommitReq`] onto the MPSC queue and race for
    ///   the drain ticket. Whichever appender wins drains the *whole*
    ///   queue as one stage-1 batch (one staged publication), re-minting
    ///   stale-parent requests under the authoritative tip.
    ///
    /// Either way the append returns only after the publication covering
    /// its commit: publish-before-respond. The linearization point is the
    /// resolution under the selection lock; the recorded-history suites
    /// check both paths from the outside (the inline path is
    /// indistinguishable from a batch of one).
    ///
    /// `Ok(None)` means the validity predicate `P` rejected the block —
    /// the Def. 3.1 rejection, tree unchanged. `Err` means the tree is
    /// [poisoned](Self::is_poisoned): a data-path persistence failure
    /// degraded it to read-only and this append was **not** durably
    /// committed (volatile trees never return `Err`).
    pub fn append(&self, candidate: CandidateBlock) -> Result<Option<BlockId>, DurabilityError> {
        if self.is_poisoned() {
            return Err(self.poison_error());
        }
        let CandidateBlock {
            producer,
            merit_index,
            work,
            nonce,
            payload,
        } = candidate;
        let parent = self.selected_tip();
        // The mint installs the block either way; the check runs on the
        // locally built value, so prevalidation costs no extra shard
        // crossing and no clone.
        let (minted, prevalidated) =
            self.store
                .mint_checked(parent, producer, merit_index, work, nonce, payload, |b| {
                    self.predicate.is_valid(&self.store, b)
                });
        if !prevalidated {
            // `P` refused the block. If the tip it was minted under is
            // still the published one, the rejection is definitive and
            // linearizes right here — no need to take the lock or enter
            // the commit queue. The check must read the *published chain
            // itself*, not the `published_tip` hint: the hint is stored
            // after the pointer swap, so it can lag a chain another
            // operation has already observed, and deciding a response
            // from the lagging value could contradict the recorded
            // history. (The hint is only ever the optimistic mint target
            // above, where staleness costs a re-mint, never an outcome.)
            let published = self.read();
            if published.tip() == parent {
                return Ok(None);
            }
            // The tip moved under us: re-decide under the authoritative
            // tip (inline or in the drain).
        }
        // Inline fast path: one CAS — uncontended appends never touch the
        // queue or a status word. Any batch that queued meanwhile is
        // drained first (its owners are parked on the very lock we
        // hold); if that drain hit a user-code panic, our own mint is
        // left unresolved and the panic resumes on this thread after the
        // batch settles — exactly as if the drain had panicked while we
        // were parked behind it.
        if let Some(mut sel) = self.sel.try_lock() {
            let settle = self.drain_locked(&mut sel);
            let mut outcome = None;
            let mut own_panic = None;
            let mut claimed = None;
            let mut resolved = false;
            // A tree poisoned since the entry check commits nothing
            // further: membership (hence stage-1 insert order) must not
            // grow past what the durable log can ever corroborate.
            if settle.as_ref().is_none_or(|s| s.panic.is_none()) && !self.is_poisoned() {
                let (o, c, p) =
                    self.commit_inline_locked(&mut sel, minted, parent, prevalidated, nonce);
                outcome = o;
                claimed = c;
                own_panic = p;
                resolved = true;
            }
            drop(sel);
            // A claimed publication covers everything staged before it —
            // including the drained batch above — so it must land before
            // settlement delivers those statuses (publish-before-respond).
            if let Some(claim) = claimed {
                self.publish_claimed(claim);
            }
            self.settle_commit(settle, own_panic);
            self.maybe_reclaim();
            self.maybe_flatten();
            self.run_pending_checkpoint();
            if !resolved {
                // Only reachable poisoned: a drain panic resumed inside
                // `settle_commit` above and never returns here.
                return Err(self.poison_error());
            }
            return self.guard_outcome(outcome);
        }
        let req = CommitReq::new(minted, parent, prevalidated, nonce);
        // SAFETY: `req` lives on this stack frame, and we do not return
        // until it is resolved; `take_all` unlinks it before any drainer
        // dereferences it (see the queue's contract).
        unsafe { self.queue.push(&req) };
        // A drainer holds the lock right now (the try_lock above just
        // failed). Donate the rest of this slice instead of immediately
        // racing for the drain ticket: on a time-sliced core this is what
        // lets peers enqueue behind us and the incumbent resolve the
        // whole pile as one batch — without it, batches only form when
        // the scheduler happens to preempt a lock holder.
        std::thread::yield_now();
        loop {
            match req.poll() {
                Some(Polled::Committed(id)) => return self.guard_outcome(Some(id)),
                Some(Polled::Rejected) => return Ok(None),
                Some(Polled::Poisoned) => return Err(self.poison_error()),
                None => {}
            }
            // The drain ticket is the mutex acquisition itself: a
            // *parked* waiter — not a spinning one — while a drainer is
            // at work. The incumbent usually resolves us before we wake;
            // a woken thread that is still pending becomes the next
            // drainer for whatever queued meanwhile (combining-lock
            // pattern, no scheduler convoy when the holder gets
            // preempted). If our request was taken but its publication
            // is still in flight (the taker is fsyncing in stage 2), the
            // `publish_staged` inside `settle_commit` parks us on the
            // publication lock — again parked, never spinning.
            let settle = {
                let mut sel = self.sel.lock();
                self.drain_locked(&mut sel)
            };
            self.settle_commit(settle, None);
            // Reclamation, flattening, and checkpoint IO run off the
            // lock: parked appenders wake on commit latency, not on
            // maintenance latency.
            self.maybe_reclaim();
            self.maybe_flatten();
            self.run_pending_checkpoint();
        }
    }

    /// The inline stage-1 half of the two-speed `append`: the caller won
    /// the selection mutex on its first CAS (and already drained any
    /// queued batch), so resolve its mint right here and stage the
    /// publication. The caller releases the lock, then settles —
    /// publishes and, on the panic path, resumes the unwind.
    ///
    /// Mirrors the drain's panic contract: the outcome is recorded before
    /// the membership insert runs, and if user code (`P::is_valid`,
    /// `SelectionFn::on_insert`) panics after the insert, the selection
    /// state is re-derived from the — always consistent — membership and
    /// the batch staged anyway, so the tree stays serviceable and every
    /// status the unwind leaves behind is covered by a publication. The
    /// panic payload is *returned*, not resumed: the caller must first
    /// drop the lock and publish (publish-before-respond is vacuous for
    /// the appender itself — no response is delivered; `append` panics).
    fn commit_inline_locked<'t>(
        &'t self,
        sel: &mut SelState,
        minted: BlockId,
        parent: BlockId,
        prevalidated: bool,
        nonce: u64,
    ) -> (
        Option<BlockId>,
        Option<ClaimedPub<'t>>,
        Option<Box<dyn std::any::Any + Send>>,
    ) {
        let mut committed: Option<BlockId> = None;
        let tip_before = sel.tip;
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(id) =
                self.resolve_target_locked(tip_before, minted, parent, prevalidated, nonce)
            {
                // Recorded before the user-code re-selection stage runs,
                // exactly like the drain's `outcomes` vector.
                committed = Some(id);
                self.insert_locked(sel, id, tip_before);
                self.score_inserts_locked(sel, &[id], tip_before);
            }
        }));
        // relaxed: stats counter, read only by pipeline_stats().
        self.inline_commits.fetch_add(1, Ordering::Relaxed);
        self.record_batch_size(1);
        match run {
            Ok(()) => {
                let claim = match committed {
                    Some(id) => self.stage_inline_locked(sel, &[id]),
                    None => None,
                };
                (committed, claim, None)
            }
            Err(payload) => {
                if let Some(id) = committed {
                    self.rescue_and_stage(sel, &[id]);
                }
                (committed, None, Some(payload))
            }
        }
    }

    /// Mints `candidate` under an explicit committed `parent` (the refined
    /// append of Def. 3.7, where the oracle fixes the parent — and the
    /// fork-builder for adversarial workloads). Returns the new id if `P`
    /// accepted the block; `Err` once the tree is
    /// [poisoned](Self::is_poisoned) (see [`append`](Self::append)).
    pub fn graft(
        &self,
        parent: BlockId,
        candidate: CandidateBlock,
    ) -> Result<Option<BlockId>, DurabilityError> {
        let id = self.store.mint(
            parent,
            candidate.producer,
            candidate.merit_index,
            candidate.work,
            candidate.nonce,
            candidate.payload,
        );
        self.graft_minted(id)
    }

    /// Commits a block already minted into the arena (via
    /// [`ShardedStore::mint`] on [`store`](Self::store)) under its minted
    /// parent, which must itself be committed. Returns the id if `P`
    /// accepted the block, `None` (leaving it a non-member orphan)
    /// otherwise.
    ///
    /// This is the commit half of the refined append: oracle-gated
    /// workloads (`Θ_F` consumeToken feedback) mint first, ask the oracle
    /// which mints won, and commit exactly those.
    ///
    /// Idempotent: grafting an already-committed block is a no-op that
    /// returns `Some(id)` without inserting, re-publishing, or touching
    /// the durable log. The dead-winner recovery rule depends on this —
    /// *any* process that observes a committed-K winner may graft it
    /// (`btadt-registers`' `TreeConsensus`), so the same block is
    /// routinely grafted by several racing processes and only the first
    /// may mutate the tree.
    ///
    /// On a [poisoned](Self::is_poisoned) tree the idempotent half
    /// survives — a block covered by a pre-poisoning publication still
    /// acks `Ok(Some(id))` — but nothing new commits: everything else
    /// returns `Err`.
    pub fn graft_minted(&self, id: BlockId) -> Result<Option<BlockId>, DurabilityError> {
        if self.is_poisoned() {
            return self.guard_outcome(Some(id));
        }
        let valid = {
            let block = self.store.block(id);
            self.predicate.is_valid(&self.store, &block)
        };
        if !valid {
            return Ok(None);
        }
        let parent = self
            .store
            .parent(id)
            .expect("grafted blocks are not genesis");
        let mut own_panic = None;
        let settle = {
            let mut sel = self.sel.lock();
            // Opportunistically resolve any pending batch first — grafts
            // already paid for the lock, and queued appenders are parked
            // on it.
            let settle = self.drain_locked(&mut sel);
            let drain_panicked = settle.as_ref().is_some_and(|s| s.panic.is_some());
            // Like the inline append: a tree poisoned since the entry
            // check inserts nothing further.
            let halted = drain_panicked || self.is_poisoned();
            if !halted && sel.tree.contains(id) {
                // Duplicate graft: someone committed this block first
                // (`P` is deterministic, so their validity verdict was
                // the same one we just computed). Nothing to insert and
                // nothing new to publish — the committer staged the
                // covering batch inside the same critical section as its
                // insert, so the `publish_staged` in `settle_commit`
                // below returns only once that publication is in.
                drop(sel);
                self.settle_commit(settle, None);
                return self.guard_outcome(Some(id));
            }
            if !halted {
                assert!(
                    sel.tree.contains(parent),
                    "graft parent {parent} not committed to the tree"
                );
                // Shielded like the inline path: drained requests are
                // still unsettled, so a user-code panic here must not
                // unwind past the statuses we owe them.
                let tip_before = sel.tip;
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.insert_locked(&mut sel, id, parent);
                    self.score_inserts_locked(&mut sel, &[id], tip_before);
                }));
                match run {
                    Ok(()) => self.stage_publication(&mut sel, &[id]),
                    Err(payload) => {
                        self.rescue_and_stage(&mut sel, &[id]);
                        own_panic = Some(payload);
                    }
                }
            }
            settle
        };
        self.settle_commit(settle, own_panic);
        self.maybe_reclaim();
        self.maybe_flatten();
        self.run_pending_checkpoint();
        self.guard_outcome(Some(id))
    }

    /// Feeds the batch-size EWMA behind the adaptive reclamation
    /// threshold (×8 fixed point, relaxed — a heuristic, not a ledger).
    /// Both commit paths report: queue drains with their batch size,
    /// inline commits as batches of one — without the inline samples the
    /// EWMA would stay frozen at whatever the last contended burst left
    /// (no further non-empty drains run once the workload goes
    /// uncontended), pinning the threshold at the floor and sweeping 8×
    /// too often on exactly the path the adaptivity exists for.
    fn record_batch_size(&self, n: usize) {
        // relaxed: lossy EWMA heuristic — concurrent updates may drop a
        // sample, which only nudges the sweep threshold.
        let old = self.avg_batch_x8.load(Ordering::Relaxed).max(8) as u64;
        let new = (old * 7 + n as u64 * 8) / 8;
        self.avg_batch_x8
            .store(new.min(u32::MAX as u64) as u32, Ordering::Relaxed); // relaxed: EWMA heuristic
    }

    /// The adaptive sweep threshold: inversely proportional to the
    /// observed mean batch size, clamped to
    /// [`RECLAIM_PENDING_MIN`]..=[`RECLAIM_PENDING_MAX`]. One retire
    /// happens per publication, so this holds the sweep cost per *append*
    /// roughly constant whether appends publish one by one (inline) or in
    /// batches (see the constants' docs).
    fn reclaim_threshold(&self) -> usize {
        // relaxed: heuristic read of the EWMA; any recent value will do.
        let avg_x8 = self.avg_batch_x8.load(Ordering::Relaxed).max(8) as usize;
        (RECLAIM_PENDING_MIN * 8 * 8 / avg_x8).clamp(RECLAIM_PENDING_MIN, RECLAIM_PENDING_MAX)
    }

    /// Amortized reclamation: sweep only when the backlog crosses the
    /// adaptive threshold (callers outside the hot path may always call
    /// [`EpochDomain::try_reclaim`] directly via [`epochs`](Self::epochs)).
    fn maybe_reclaim(&self) {
        if self.epochs.pending_items() >= self.reclaim_threshold() {
            self.epochs.try_reclaim();
        }
    }

    /// Bounded incremental flattening, run next to [`maybe_reclaim`] on
    /// every commit path — off the selection lock, so parked appenders
    /// never wait on it. A no-op unless the watermark is enabled and has
    /// moved past the flattened frontier; the single-flattener ticket
    /// inside [`ShardedStore::flatten_some`] keeps concurrent visitors
    /// from duplicating work (losers return immediately).
    ///
    /// [`maybe_reclaim`]: Self::maybe_reclaim
    fn maybe_flatten(&self) {
        if self.watermark.is_enabled() {
            self.store.flatten_some(FLATTEN_BUDGET);
        }
    }

    /// Whether `id` has been committed to the tree membership (not merely
    /// minted into the arena) *and* covered by a publication — the same
    /// instant its committer may be told so, which keeps this answer
    /// consistent with `read()` now that publication trails the
    /// membership insert by a pipeline stage. Takes the selection lock
    /// briefly for the position lookup.
    pub fn is_committed(&self, id: BlockId) -> bool {
        if id == BlockId::GENESIS {
            return true;
        }
        let pos = {
            let sel = self.sel.lock();
            sel.log_pos.get(id.0 as usize).copied().unwrap_or(0)
        };
        pos != 0 && self.published_upto.load(Ordering::Acquire) >= pos as u64
    }

    /// Decide-path hook: blocks until `id` is committed to the membership
    /// or `deadline` passes; returns whether it committed. Membership is
    /// never retracted, so a `true` stays true.
    ///
    /// This is how a decide orders itself after the winner's graft
    /// (Protocol A's graft-before-decide): a process that learned a block
    /// through a side channel — the oracle's `K`-set feedback — must not
    /// act on it before the block's committer has grafted it. The caller
    /// owns the stall diagnostic (the commit is another thread's
    /// obligation, so only the caller knows who wedged).
    ///
    /// The probe is lock-free — a chain block sits at the index equal to
    /// its height in the published prefix, and commits stage their
    /// publication inside the same critical section as their insert, so
    /// most waits resolve off one epoch-pinned `read()` — and between
    /// probes the waiter *parks*
    /// on the commit generation ([`wait_commit_past`]): commits are the
    /// only events that can change the answer, so the thread wakes
    /// exactly when one lands instead of burning its time slice in a
    /// `yield_now` loop, which is what collapsed the contended decide
    /// path on time-sliced cores (a pack of spinning losers kept
    /// preempting the one winner whose graft they were all waiting for).
    ///
    /// [`wait_commit_past`]: Self::wait_commit_past
    pub fn wait_committed(&self, id: BlockId, deadline: std::time::Instant) -> bool {
        let height = self.store.meta(id).height as usize;
        loop {
            // Generation first, probes second: a commit landing after the
            // probes bumps the generation and the park below returns
            // immediately — no missed wakeup.
            let gen = self.commit_generation();
            if self.read().ids().get(height) == Some(&id) {
                return true;
            }
            // The selection lock answers for members *off* the selected
            // chain too; we take it at most once per commit generation,
            // so a pack of waiters cannot convoy the very lock the
            // committer needs for the graft.
            if self.is_committed(id) {
                return true;
            }
            // Poisoned: no further commit can land, so the probes above
            // already gave the final answer.
            if self.is_poisoned() || std::time::Instant::now() >= deadline {
                return self.is_committed(id);
            }
            self.wait_commit_past(gen, deadline);
        }
    }

    /// Stage 1 for every queued commit request, as one batch, under the
    /// selection lock: per request a mint resolution (re-minting under
    /// the authoritative tip if the optimistic parent went stale) and a
    /// membership insert, then one *batched* selection-scoring pass over
    /// the whole batch's inserts, then one staged publication record.
    /// Publication itself (WAL, splice, swap) and the responses are the
    /// caller's settlement duty, performed off this lock — see
    /// [`DrainSettle`] and [`settle_commit`](Self::settle_commit).
    ///
    /// During resolution the evolving tip is tracked without consulting
    /// the selection rule: a committed request always extends the tip it
    /// was resolved under (the fast path requires it, the re-mint path
    /// constructs it), and for every shipped rule an extension of the
    /// selected tip is itself selected — chain rules score it strictly
    /// higher or tie-winning by inherited lexicographic priority, and
    /// GHOST's descent, having reached the parent, continues through its
    /// only new child. The batched scoring pass re-derives the tip
    /// through the rule afterwards and is authoritative; debug builds
    /// cross-check both against the full-scan oracle.
    fn drain_locked(&self, sel: &mut SelState) -> Option<DrainSettle> {
        let batch = self.queue.take_all();
        if batch.is_empty() {
            return None;
        }
        if self.is_poisoned() {
            // Degraded mode: the requests still get settled (owners are
            // parked on these very statuses), but nothing is resolved or
            // inserted — membership must not grow past what the durable
            // log can corroborate. The empty outcomes vector makes
            // settlement poison every request a prior publication does
            // not already cover.
            return Some(DrainSettle {
                batch,
                outcomes: Vec::new(),
                panic: None,
            });
        }
        let t0 = std::time::Instant::now();
        // Feed the adaptive reclamation threshold with this batch's size.
        self.record_batch_size(batch.len());
        // A committing request records its outcome *before* its
        // membership insert runs, and the insert updates membership +
        // commit log *before* the user-code scoring stage, so whatever
        // panics inside user code (`P::is_valid`,
        // `SelectionFn::on_insert`), the recorded outcomes always match
        // the state the membership and commit log actually reached.
        let mut outcomes: Vec<Option<BlockId>> = Vec::with_capacity(batch.len());
        let tip_before = sel.tip;
        let mut pending_tip = tip_before;
        let mut inserted: Vec<BlockId> = Vec::new();
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for &req_ptr in &batch {
                // SAFETY: `take_all` transferred ownership of the node;
                // its enqueueing appender is blocked polling until we
                // resolve it.
                let req = unsafe { &*req_ptr };
                let target = self.resolve_target_locked(
                    pending_tip,
                    req.minted,
                    req.parent,
                    req.prevalidated,
                    req.nonce,
                );
                outcomes.push(target);
                if let Some(id) = target {
                    self.insert_locked(sel, id, pending_tip);
                    pending_tip = id;
                    inserted.push(id);
                }
            }
            // One scoring pass for the whole batch — the user-code slice
            // the old pipeline paid per insert.
            self.score_inserts_locked(sel, &inserted, tip_before);
            debug_assert_eq!(
                sel.tip, pending_tip,
                "a committed insert always extends the selected tip"
            );
        }));
        let panic = match run {
            Ok(()) => {
                if !inserted.is_empty() {
                    self.stage_publication(sel, &inserted);
                }
                None
            }
            Err(payload) => {
                // User code panicked mid-batch. Membership and commit
                // log are sound (see above), but the selection aux may
                // be mid-update and nothing is staged — delivering a
                // "committed" status now would hand a healthy appender
                // a response no read can corroborate. Re-derive the
                // selection state from the membership and stage the
                // batch anyway, so every status the settlement delivers
                // is covered by a publication; this also leaves the
                // tree consistent for subsequent drains instead of
                // degraded.
                if !inserted.is_empty() {
                    self.rescue_and_stage(sel, &inserted);
                }
                Some(payload)
            }
        };
        self.stat_drain_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed); // relaxed: stats counter
        Some(DrainSettle {
            batch,
            outcomes,
            panic,
        })
    }

    /// Settles a commit episode with the selection lock released: runs
    /// stage 2 ([`publish_staged`](Self::publish_staged)), then delivers
    /// every status the drain recorded — publish-before-respond: the
    /// publication covering those commits has swapped in by now — then
    /// resumes whichever panic stage 1 captured.
    fn settle_commit(
        &self,
        settle: Option<DrainSettle>,
        own_panic: Option<Box<dyn std::any::Any + Send>>,
    ) {
        self.publish_staged();
        if let Some(DrainSettle {
            batch,
            outcomes,
            panic,
        }) = settle
        {
            let poisoned = self.is_poisoned();
            for (i, &req_ptr) in batch.iter().enumerate() {
                // SAFETY: owners are still polling (they only return
                // once a status lands), and only this settler holds the
                // taken nodes; after `resolve` the node is never touched
                // again by this thread.
                let req = unsafe { &*req_ptr };
                if req.poll().is_some() {
                    continue;
                }
                if !poisoned {
                    req.resolve(outcomes.get(i).copied().flatten());
                    continue;
                }
                // Degraded mode: only statuses the durable log can
                // corroborate may still be delivered — a commit covered
                // by a pre-poisoning publication, or a volatile
                // `P`-rejection (no durability claim to break). An
                // uncovered insert, or a request the poisoned drain
                // skipped outright, gets the poison status instead.
                match outcomes.get(i).copied() {
                    Some(Some(id)) if self.is_committed(id) => req.resolve(Some(id)),
                    Some(None) => req.resolve(None),
                    _ => req.resolve_poisoned(),
                }
            }
            if let Some(payload) = panic {
                std::panic::resume_unwind(payload);
            }
        }
        if let Some(payload) = own_panic {
            std::panic::resume_unwind(payload);
        }
    }

    /// Folds a batch's newly committed ids into the selection aux and
    /// advances the authoritative tip: one incremental `on_insert` for a
    /// single insert; the sharded partition → score → merge → apply
    /// pipeline of [`batch_score`] for anything larger. Runs user code;
    /// callers shield it (the stage-1 panic contract).
    fn score_inserts_locked(&self, sel: &mut SelState, inserted: &[BlockId], tip_before: BlockId) {
        if inserted.is_empty() {
            return;
        }
        let new_tip = if let [only] = inserted {
            match self
                .selection
                .on_insert(&self.store, &sel.tree, &mut sel.aux, *only, tip_before)
            {
                TipUpdate::Unchanged => tip_before,
                TipUpdate::Extended(t) | TipUpdate::Switched(t) => t,
            }
        } else {
            let t0 = std::time::Instant::now();
            let tip = batch_score(
                &self.selection,
                &self.store,
                &sel.tree,
                &mut sel.aux,
                inserted,
                tip_before,
            );
            self.stat_score_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed); // relaxed: stats counter
            tip
        };
        sel.tip = new_tip;
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            sel.tip,
            self.selection.select_tip(&self.store, &sel.tree),
            "incremental {} selection diverged from the full-scan oracle",
            self.selection.name()
        );
    }

    /// Stage-1 panic recovery: re-derives the selection aux and tip from
    /// the — always consistent — membership with a full `select_tip`
    /// scan, then stages the batch so its statuses are covered by a
    /// publication. The rescan runs selection user code again, so it is
    /// shielded: if it panics too, staging is skipped and responses fall
    /// back to matching only the commit log (a tree whose selection
    /// panics nondeterministically offers nothing stronger).
    fn rescue_and_stage(&self, sel: &mut SelState, inserted: &[BlockId]) {
        let rescued = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sel.aux.reset();
            self.selection.select_tip(&self.store, &sel.tree)
        }));
        if let Ok(tip) = rescued {
            sel.tip = tip;
            self.stage_publication(sel, inserted);
        }
    }

    /// Stages a publication record covering everything committed so far
    /// — the stage-1 → stage-2 handoff. Runs under the selection lock
    /// (staging order is commit-log order) in the *same* critical
    /// section as the batch's inserts: an observer that sees the
    /// membership change (`is_committed`, a duplicate graft) can rely on
    /// the covering batch already being staged, so its own
    /// `publish_staged` suffices to wait the publication in.
    fn stage_publication(&self, sel: &mut SelState, inserted: &[BlockId]) {
        let upto = sel.commit_log.len() as u64;
        let ids = if self.durable {
            inserted.to_vec()
        } else {
            Vec::new()
        };
        self.staged.lock().push(PubBatch {
            upto,
            tip: sel.tip,
            ids,
        });
        self.staged_upto.store(upto, Ordering::Release);
    }

    /// [`stage_publication`](Self::stage_publication) with the inline
    /// claim fast path: one non-blocking try for the publication lock —
    /// `sel → publ` in *claim* order only, safe because no holder of
    /// `publ` ever waits on `sel` — and on success the batch never
    /// touches the staged queue: the caller publishes it directly after
    /// releasing the selection lock. The uncontended append thereby pays
    /// one lock pair per stage and zero allocation, while a busy
    /// publisher (an fsync in flight) degrades gracefully to the queue.
    fn stage_inline_locked<'t>(
        &'t self,
        sel: &mut SelState,
        inserted: &[BlockId],
    ) -> Option<ClaimedPub<'t>> {
        let upto = sel.commit_log.len() as u64;
        let ids = if self.durable {
            inserted.to_vec()
        } else {
            Vec::new()
        };
        let batch = PubBatch {
            upto,
            tip: sel.tip,
            ids,
        };
        let Some(mut publ) = self.publ.try_lock() else {
            self.staged.lock().push(batch);
            self.staged_upto.store(upto, Ordering::Release);
            return None;
        };
        // Everything already staged publishes ahead of our batch, in the
        // same run. Untaken staged batches always sit strictly above
        // `published_upto` (runs are taken whole, in order), so a
        // caught-up publication proves the queue is empty and the take —
        // a mutex round trip — can be skipped. Both counters are stable
        // here: stagers need `sel`, takers need `publ`, and we hold both.
        let mut batches = std::mem::take(&mut publ.spare);
        if self.published_upto.load(Ordering::Acquire) < self.staged_upto.load(Ordering::Acquire) {
            std::mem::swap(&mut *self.staged.lock(), &mut batches);
        }
        batches.push(batch);
        self.staged_upto.store(upto, Ordering::Release);
        Some(ClaimedPub { publ, batches })
    }

    /// Stage 2 for a claimed inline publication, entered with the
    /// selection lock already released. Untimed, like the inline drain:
    /// per-append clock reads would tax exactly the path the pipeline
    /// exists to keep cheap ([`PipelineStats`] counts it via
    /// `inline_appends`).
    fn publish_claimed(&self, claim: ClaimedPub<'_>) {
        let ClaimedPub {
            mut publ,
            mut batches,
        } = claim;
        // A persistence failure latched the poison flag inside; the
        // claimant's own exit check surfaces it as `DurabilityError`.
        let _ = self.publish_batches_locked(&mut publ, &batches);
        batches.clear();
        publ.spare = batches;
    }

    /// Stage 2 of the commit pipeline: publishes every staged batch —
    /// WAL group commit, in-place chain advance, boxed-chain pointer
    /// swap — under the publication lock, with the selection lock
    /// already released so the next drain proceeds concurrently.
    ///
    /// Whoever holds the lock pops *all* staged batches, so batches
    /// publish strictly in commit-log order no matter which thread ends
    /// up publishing, and batches staged while a publisher was fsyncing
    /// collapse into its successor's single publication (one fsync, one
    /// swap). On return, everything the calling thread staged beforehand
    /// is covered by a publication — its own or another's.
    fn publish_staged(&self) {
        if self.published_upto.load(Ordering::Acquire) >= self.staged_upto.load(Ordering::Acquire) {
            return;
        }
        let mut publ = self.publ.lock();
        let mut batches = std::mem::take(&mut publ.spare);
        std::mem::swap(&mut *self.staged.lock(), &mut batches);
        if batches.is_empty() {
            // The previous holder popped our batch and published it
            // before releasing the lock we just acquired.
            publ.spare = batches;
            return;
        }
        let t0 = std::time::Instant::now();
        // Failure latches the poison flag inside; every settlement and
        // exit check downstream reads it.
        let _ = self.publish_batches_locked(&mut publ, &batches);
        self.stat_publish_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed); // relaxed: stats counter
        batches.clear();
        publ.spare = batches;
    }

    /// Decides where a staged mint lands against the authoritative tree
    /// state, *without* touching membership: the original mint when its
    /// optimistic parent is still `tip` (the evolving batch tip), else a
    /// fresh re-mint under it. Returns the id to commit, or `None` when
    /// `P` rejects (either mint stays a non-member arena orphan, as a
    /// lost optimistic race always did). Runs user code (`P::is_valid`);
    /// callers record the outcome before inserting — the panic contract
    /// of the commit paths.
    fn resolve_target_locked(
        &self,
        tip: BlockId,
        minted: BlockId,
        parent: BlockId,
        prevalidated: bool,
        nonce: u64,
    ) -> Option<BlockId> {
        if parent == tip {
            return prevalidated.then_some(minted);
        }
        // The optimistic parent lost the race: re-mint under the current
        // selected tip and decide against the tree state at this — the
        // linearization — point. The stale mint's immutable fields come
        // back from the arena: `append` *moved* the payload into it, so
        // this clone — on the re-mint path only — is the sole payload
        // copy the append path ever makes. `mint_checked` runs `P` on
        // the locally built block, same as the fast path.
        let mut fields = None;
        self.store.with_block(minted, &mut |b| {
            fields = Some((b.producer, b.merit_index, b.work, b.payload.clone()));
        });
        let (producer, merit_index, work, payload) =
            fields.expect("the stale mint is fully minted in the arena");
        let (id, valid) =
            self.store
                .mint_checked(tip, producer, merit_index, work, nonce, payload, |b| {
                    self.predicate.is_valid(&self.store, b)
                });
        valid.then_some(id)
    }

    /// Membership insert + commit log + position index, under the
    /// selection lock. Scoring is separate
    /// ([`score_inserts_locked`](Self::score_inserts_locked)) so a batch
    /// pays one pass; publication is stage 2.
    fn insert_locked(&self, sel: &mut SelState, id: BlockId, parent: BlockId) {
        sel.tree.insert_with_parent(Some(parent), id);
        sel.commit_log.push(id);
        let pos = sel.commit_log.len() as u32;
        let idx = id.0 as usize;
        if sel.log_pos.len() <= idx {
            sel.log_pos.resize(idx + 1, 0);
        }
        sel.log_pos[idx] = pos;
    }

    /// The publication critical section proper — persist, splice, swap,
    /// retire — for a non-empty run of staged batches in commit-log
    /// order.
    ///
    /// `Err` means the WAL append failed (or the WAL was already
    /// poisoned): the run is **not** published — no chain advance, no
    /// `published_upto`/tip store, no generation bump — so nothing any
    /// reader or waiter can observe ever gets ahead of durability. The
    /// tree is poisoned before this returns; callers surface the error
    /// through their own exit checks and settlement.
    fn publish_batches_locked(
        &self,
        publ: &mut PubState,
        batches: &[PubBatch],
    ) -> Result<(), DurabilityError> {
        // Persist-then-ack: every commit this publication will expose
        // must be durable *before* the pointer swap makes it readable —
        // and the swap itself precedes the generation bump, the condvar
        // wakeups, and every settlement status store, so nothing
        // observable ever gets ahead of the fsync. One `append_batch`
        // call per publication means one fsync covers every batch in the
        // run: group commit riding the pipeline's natural cadence,
        // encoding borrowed arena data straight into the WAL's reused
        // scratch buffer — no per-record allocation, no payload clone.
        // All commit paths — inline, drain, graft, recovery, and the
        // panic-path rescue — funnel their batches through here, so this
        // is the one choke point durability needs.
        if let Some(ws) = publ.wal.as_mut() {
            let store = &self.store;
            let appended = ws.wal.append_batch(|framer| {
                for batch in batches {
                    for &id in &batch.ids {
                        store.with_block(id, &mut |b| {
                            framer.record(RecordRef {
                                id,
                                parent: b.parent.expect("committed blocks are never genesis"),
                                producer: b.producer,
                                merit_index: b.merit_index,
                                work: b.work,
                                digest: b.digest,
                                payload: &b.payload,
                            });
                        });
                    }
                }
            });
            if let Err(e) = appended {
                // A tree that cannot persist must not ack: acking an
                // unpersisted commit would let a crash forget a response
                // some caller already acted on — the one thing the WAL
                // exists to prevent. The WAL poisoned itself (fsyncgate:
                // no retry can prove the dirty pages survived); latch
                // the tree-level flag and abandon the run unpublished.
                let err = DurabilityError::PersistFailed { kind: e.kind() };
                self.poison_with(err);
                return Err(self.poison_error());
            }
            for batch in batches {
                publ.logged_ids.extend_from_slice(&batch.ids);
            }
        }
        let last = batches
            .last()
            .expect("publish_batches_locked takes a non-empty run");
        advance_chain(&self.store, &mut publ.chain, last.tip);
        // Reuse a reclaimed publication box when one is available: the
        // uncontended path retires one box per append, so without the
        // bin every commit paid a malloc here and a free in the sweep.
        let boxed = match self.spares.take() {
            Some(mut spare) => {
                *spare = publ.chain.clone();
                spare
            }
            None => Box::new(publ.chain.clone()),
        };
        // Watermark advance rides the publication (the pipeline's
        // natural cadence): the block `depth` links behind the new tip —
        // and everything below it — is storage-final. `fetch_max` inside
        // keeps the bound monotone across reorgs that shorten the chain.
        if let Some(bound) = self.watermark.target_for(boxed.ids()) {
            self.store.raise_flatten_target(bound);
        }
        // WAL compaction rides the same cadence, gated geometrically
        // inside `wants_checkpoint` so it stays amortized O(1) per
        // commit. Runs after the watermark raise so this publication's
        // own finality advance is already visible to the prefix cursor.
        self.maybe_wal_checkpoint(publ);
        let fresh = Box::into_raw(boxed);
        let old = self.published.swap(fresh, Ordering::AcqRel);
        self.published_tip.store(last.tip.0, Ordering::Release);
        // Published-upto after the swap: `is_committed` may say yes only
        // once the chain that corroborates it is readable.
        self.published_upto.store(last.upto, Ordering::Release);
        // Generation-after-publication: the counter moves only once the
        // swap is visible, so a waiter that observes the new generation
        // can already `read()` the chain that covers this batch run.
        self.commit_gen.fetch_add(1, Ordering::SeqCst);
        if self.gen_waiters.load(Ordering::SeqCst) > 0 {
            // Lock-then-notify closes the check-then-park race: a waiter
            // between its generation recheck (under `gen_lock`) and its
            // park either sees the new generation there, or is already
            // parked when this notify fires. With no waiters registered
            // the publication pays one relaxed-ish load and nothing else.
            drop(self.gen_lock.lock());
            self.gen_cv.notify_all();
        }
        // SAFETY: `old` came from `Box::into_raw` in `with_config` or a
        // previous publication; reconstituting the box moves ownership
        // into the epoch domain, which frees it only after every reader
        // pinned at (or before) the swap has unpinned.
        let old = unsafe { Box::from_raw(old) };
        let bytes = old.approx_heap_bytes();
        // SAFETY: `spares` outlives `epochs` (declaration order), the
        // domain's drop runs every pending item, and the bin sits behind
        // its own heap allocation so the address the deferred item keeps
        // stays valid even if the tree struct is moved before the item
        // runs.
        unsafe { self.epochs.retire_box_recycling(bytes, old, &self.spares) };
        Ok(())
    }

    /// Advances the storage-final prefix cursor and, when the geometric
    /// gate says it is worth it, *claims* a checkpoint of that prefix.
    /// The prefix is the longest leading run of the durable log whose
    /// ids sit below the flatten target — the same
    /// [`FinalityWatermark`]-derived bound the slab tier trusts, so
    /// compaction never captures an entry a reorg could still disturb
    /// in layout. The log is *not* id-sorted (grafts commit
    /// out-of-mint-order), so the cursor walks entries, not ids.
    ///
    /// Only the claim and an O(prefix) id memcpy happen here, under the
    /// publication lock (the cursor walks `PubState::logged_ids`, the
    /// published commit-log mirror, so `sel` is never touched); the
    /// O(prefix) record encoding and the write + fsync + rename run
    /// later in [`run_pending_checkpoint`](Self::run_pending_checkpoint),
    /// off both locks — a geometric-gate firing must not stall the
    /// pipeline for a prefix-sized IO pause.
    fn maybe_wal_checkpoint(&self, publ: &mut PubState) {
        let Some(ws) = publ.wal.as_mut() else { return };
        // Without a watermark the membership is still append-only and
        // never retracted, so the entire durable log is final.
        let bound = if self.watermark.is_enabled() {
            self.store.flatten_target()
        } else {
            u32::MAX
        };
        while ws.final_prefix < publ.logged_ids.len() && publ.logged_ids[ws.final_prefix].0 < bound
        {
            ws.final_prefix += 1;
        }
        if ws.wal.wants_checkpoint(ws.final_prefix as u64) {
            let job = ws.wal.begin_checkpoint(ws.final_prefix as u64);
            let ids = publ.logged_ids[..ws.final_prefix].to_vec();
            // The in-flight flag inside the WAL guarantees the slot is
            // free: no second claim can fire until this one settles.
            *self.pending_ckpt.lock() = Some(PendingCheckpoint { job, ids });
        }
    }

    /// Runs a claimed WAL checkpoint, if one is pending — called on the
    /// commit paths next to [`maybe_reclaim`](Self::maybe_reclaim) and
    /// [`maybe_flatten`](Self::maybe_flatten), with both pipeline locks
    /// released. Record encoding reads the arena lock-free
    /// (checkpointed ids are storage-final, their blocks immutable), and
    /// the WAL job writes a temp file and renames — never the active
    /// segment — so concurrent appends and their group-commit fsyncs
    /// proceed unimpeded. Only the coverage bookkeeping at the end
    /// briefly retakes the publication lock; covered segments are
    /// unlinked after it is released again. Checkpoint IO failures are
    /// non-fatal: the claim is aborted and the log keeps its segments,
    /// staying correct, merely uncompacted.
    fn run_pending_checkpoint(&self) {
        let Some(PendingCheckpoint { job, ids }) = self.pending_ckpt.lock().take() else {
            return;
        };
        let store = &self.store;
        let records: Vec<CommitRecord> = ids.iter().map(|&id| wal_record_of(store, id)).collect();
        let outcome = job.run(&records);
        drop(records);
        let (dead, vfs) = {
            let mut publ = self.publ.lock();
            let ws = publ
                .wal
                .as_mut()
                .expect("a durable tree never loses its WAL");
            let vfs = ws.wal.vfs();
            let dead = match outcome {
                Ok(done) => ws.wal.finish_checkpoint(done),
                Err(e) => {
                    // Non-fatal: the claim is released and the failure
                    // counted; the log keeps its segments — correct,
                    // merely uncompacted.
                    ws.wal.fail_checkpoint(&e);
                    Vec::new()
                }
            };
            (dead, vfs)
        };
        // Covered segments are unlinked off the lock, through the same
        // VFS seam as every other WAL IO. A failed unlink is harmless
        // (replay skips fully checkpointed segments by start index) but
        // counted, so leaks are observable.
        let mut failed = 0u64;
        for path in dead {
            if vfs.remove_file(&path).is_err() {
                failed += 1;
            }
        }
        if failed > 0 {
            if let Some(ws) = self.publ.lock().wal.as_mut() {
                ws.wal.note_unlink_failures(failed);
            }
        }
    }

    /// Durability counters of the underlying WAL (fsyncs, records,
    /// bytes, compaction activity), or `None` for a volatile tree.
    /// Takes the publication lock.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.publ.lock().wal.as_ref().map(|ws| ws.wal.stats())
    }

    /// Whether this tree persists its commits (see
    /// [`open_durable`](Self::open_durable)).
    pub fn is_durable(&self) -> bool {
        self.durable
    }

    /// Opens a **durable** tree backed by the WAL directory in `config`,
    /// recovering whatever a previous incarnation persisted there.
    ///
    /// Fresh directory: an empty tree that logs every commit. Existing
    /// directory: the commit log is replayed in order — arena entries
    /// reinstalled at their original ids with their original digests and
    /// jump pointers, membership and `ChainCache` rebuilt, commit
    /// generation advanced past every recovered publication — and the
    /// tree resumes appending (and logging) where the crash left off. A
    /// torn tail on the last segment is trimmed, not fatal: those
    /// records were never acked.
    ///
    /// Two recovery caveats, both inherent to what is (deliberately) not
    /// persisted:
    ///
    /// * Mint-time nonces are folded into digests but not stored, so
    ///   recovered blocks carry their recorded digest verbatim rather
    ///   than recomputing it.
    /// * Non-member mints (orphans, `P`-rejected blocks, consensus
    ///   losers) are not logged. Their ids are re-filled as inert
    ///   genesis-parented *ghosts* so the arena keeps the dense id space
    ///   its invariants assume; membership-filtered queries never see
    ///   them, but raw arena walks (e.g. `children` of genesis) will.
    pub fn open_durable(
        shards: usize,
        watermark: FinalityWatermark,
        selection: F,
        predicate: P,
        config: WalConfig,
    ) -> std::io::Result<Self> {
        let (wal, records) = Wal::open(config)?;
        let mut tree = ConcurrentBlockTree::with_config(shards, watermark, selection, predicate);
        // Owned and unshared here, so the flag needs no synchronization;
        // it must be set before any commit path can observe the tree.
        tree.durable = true;
        let (recovered_upto, recovered_tip, log_mirror) = {
            let mut sel = tree.sel.lock();
            for rec in &records {
                tree.store.install_recovered(rec);
                let fresh = sel.tree.insert_with_parent(Some(rec.parent), rec.id);
                assert!(fresh, "durable commit log holds no duplicates");
                sel.commit_log.push(rec.id);
                let pos = sel.commit_log.len() as u32;
                let idx = rec.id.0 as usize;
                if sel.log_pos.len() <= idx {
                    sel.log_pos.resize(idx + 1, 0);
                }
                sel.log_pos[idx] = pos;
            }
            tree.store.fill_recovery_gaps();
            tree.store.sort_recovered_children();
            // One full-scan derivation instead of n incremental folds:
            // replay is offline (nothing is published yet), so the O(n)
            // oracle scan is both simpler and faster than n× `on_insert`.
            // The aux stays reset — the first live scoring pass re-seeds
            // it from the membership.
            sel.tip = tree.selection.select_tip(&tree.store, &sel.tree);
            (sel.commit_log.len() as u64, sel.tip, sel.commit_log.clone())
        };
        {
            let mut publ = tree.publ.lock();
            publ.wal = Some(WalState {
                wal,
                final_prefix: 0,
            });
            publ.logged_ids = log_mirror;
        }
        if !records.is_empty() {
            // Stage the recovered chain with no new ids: the WAL append
            // in stage 2 frames zero records (everything is already
            // durable), but the splice, the watermark raise, and the
            // tip/generation stores all run as on any commit.
            tree.staged.lock().push(PubBatch {
                upto: recovered_upto,
                tip: recovered_tip,
                ids: Vec::new(),
            });
            tree.staged_upto.store(recovered_upto, Ordering::Release);
            tree.publish_staged();
            // One generation per historical publication keeps recovered
            // counters comparable with the live tree's. A fresh (empty)
            // WAL skips this: a durable tree that never published stays
            // at generation 0, exactly like a fresh volatile tree, so
            // `wait_commit_past(0)` parks until a real commit lands.
            tree.commit_gen
                .store(records.len() as u64 + 1, Ordering::SeqCst);
        }
        tree.run_pending_checkpoint();
        Ok(tree)
    }

    /// The current commit generation — advances by one with every chain
    /// publication (batched drain, inline commit, or graft). Pair with
    /// [`wait_commit_past`](Self::wait_commit_past) to sleep until the
    /// tree moves instead of polling it.
    pub fn commit_generation(&self) -> u64 {
        self.commit_gen.load(Ordering::SeqCst)
    }

    /// Parks this thread until the commit generation moves past `seen`
    /// or `deadline` passes, and returns the generation observed on the
    /// way out. The protocol is the standard missed-wakeup-free shape:
    /// callers load the generation *before* probing whatever state they
    /// are waiting on, then hand that pre-probe value here — a commit
    /// landing between the probe and the park changes the generation,
    /// and the recheck under `gen_lock` returns immediately.
    pub fn wait_commit_past(&self, seen: u64, deadline: std::time::Instant) -> u64 {
        self.gen_waiters.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.gen_lock.lock();
        loop {
            if self.commit_gen.load(Ordering::SeqCst) != seen {
                break;
            }
            // A poisoned tree publishes no further generations — waiters
            // must not sleep out their deadlines waiting for one
            // (`poison_with` notifies under this same lock).
            if self.is_poisoned() {
                break;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                break;
            }
            let (g, _timed_out) = self.gen_cv.wait_timeout(guard, deadline - now);
            guard = g;
        }
        drop(guard);
        self.gen_waiters.fetch_sub(1, Ordering::SeqCst);
        self.commit_gen.load(Ordering::SeqCst)
    }

    /// Number of committed blocks (including genesis).
    pub fn len(&self) -> usize {
        self.sel.lock().tree.len()
    }

    /// Whether the tree holds no blocks — always `false` in practice (a
    /// committed tree contains at least `b0`), but answered from the
    /// membership rather than hardcoded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sharded arena (all minted blocks, including orphaned and
    /// `P`-rejected mints).
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// The selection function `f`.
    pub fn selection(&self) -> &F {
        &self.selection
    }

    /// The validity predicate `P`.
    pub fn predicate(&self) -> &P {
        &self.predicate
    }

    /// The finality watermark driving finalized-prefix flattening.
    pub fn watermark(&self) -> FinalityWatermark {
        self.watermark
    }

    /// The epoch-reclamation domain guarding published snapshots —
    /// exposed for observability (`retired_bytes_peak`, pending garbage)
    /// and the churn stress tests.
    pub fn epochs(&self) -> &EpochDomain {
        &self.epochs
    }

    /// Commit-pipeline counters (batch count, batched appends, largest
    /// batch, inline fast-path commits) plus the stage timing totals:
    /// `drain_lock_ns` (stage-1 batch drains, selection lock held),
    /// `score_ns` (the batched-scoring slice of those drains), and
    /// `publish_ns` (stage 2, publication lock held). Before this
    /// pipeline split, everything in all three ran under the one
    /// selection lock. The timings cover the queue paths only —
    /// inline fast-path appends (counted by `inline_appends`) commit
    /// and publish unclocked, so the ratios compare like with like.
    pub fn pipeline_stats(&self) -> PipelineStats {
        let mut stats = self.queue.stats();
        // relaxed: approximate observability snapshot, counters are
        // independent of each other and of the pipeline state.
        stats.inline_appends = self.inline_commits.load(Ordering::Relaxed);
        stats.drain_lock_ns = self.stat_drain_ns.load(Ordering::Relaxed); // relaxed: stats snapshot
        stats.score_ns = self.stat_score_ns.load(Ordering::Relaxed); // relaxed: stats snapshot
        stats.publish_ns = self.stat_publish_ns.load(Ordering::Relaxed); // relaxed: stats snapshot
        stats
    }

    /// The membership commit order so far (parent-closed). Takes the
    /// selection lock.
    pub fn commit_log(&self) -> Vec<BlockId> {
        self.sel.lock().commit_log.clone()
    }

    /// The tip re-derived by the full Def. 3.1 rescan over the committed
    /// membership — the specification oracle for differential checks.
    /// Takes the selection lock.
    pub fn selected_tip_full_scan(&self) -> BlockId {
        let sel = self.sel.lock();
        self.selection.select_tip(&self.store, &sel.tree)
    }

    /// Sequential snapshot of the arena (see [`ShardedStore::snapshot`];
    /// requires quiescence).
    pub fn snapshot_store(&self) -> BlockStore {
        self.store.snapshot()
    }
}

/// Builds the durable record of a committed block straight from the
/// arena: one `with_block` read session, the digest copied verbatim (the
/// mint-time nonce is folded into it and not otherwise recoverable).
fn wal_record_of(store: &ShardedStore, id: BlockId) -> CommitRecord {
    let mut rec = None;
    store.with_block(id, &mut |b| {
        rec = Some(CommitRecord {
            id,
            parent: b.parent.expect("committed blocks are never genesis"),
            producer: b.producer,
            merit_index: b.merit_index,
            work: b.work,
            digest: b.digest,
            payload: b.payload.clone(),
        });
    });
    rec.expect("committed blocks are fully minted in the arena")
}

impl<F: SelectionFn, P: ValidityPredicate> Drop for ConcurrentBlockTree<F, P> {
    fn drop(&mut self) {
        let p = self.published.swap(std::ptr::null_mut(), Ordering::AcqRel);
        // SAFETY: the current publication is the one outstanding leaked
        // box (every predecessor was retired into the epoch domain, which
        // drops after this body and frees them); no reader can be alive,
        // since readers borrow `self`.
        drop(unsafe { Box::from_raw(p) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcessId;
    use crate::selection::{Ghost, HeaviestWork, LongestChain};
    use crate::validity::{AcceptAll, DigestPrefix};

    #[test]
    fn sharded_mint_matches_blockstore() {
        // The same mint sequence must produce identical ids, digests,
        // heights, jumps, and cumulative work in both stores.
        let sharded = ShardedStore::with_shards(4);
        let mut seq = BlockStore::new();
        let mut prev = BlockId::GENESIS;
        for i in 0..40u64 {
            let parent = if i % 5 == 0 { BlockId::GENESIS } else { prev };
            let a = sharded.mint(parent, ProcessId(0), 0, 1 + i % 3, i, Payload::Empty);
            let b = seq.mint(parent, ProcessId(0), 0, 1 + i % 3, i, Payload::Empty);
            assert_eq!(a, b);
            assert_eq!(sharded.meta(a), seq.meta(a), "block {i}");
            prev = a;
        }
        assert_eq!(sharded.block_count(), seq.block_count());
        for i in 0..seq.block_count() as u32 {
            let id = BlockId(i);
            let mut sh_kids = Vec::new();
            sharded.for_each_child(id, &mut |c| sh_kids.push(c));
            assert_eq!(sh_kids.as_slice(), seq.children(id));
        }
    }

    #[test]
    fn sharded_ancestry_queries_agree_with_sequential() {
        let sharded = ShardedStore::new();
        let mut prev = BlockId::GENESIS;
        let mut ids = vec![prev];
        for i in 0..64u64 {
            prev = sharded.mint(prev, ProcessId(0), 0, 1, i, Payload::Empty);
            ids.push(prev);
        }
        let snap = sharded.snapshot();
        for h in [0u32, 1, 13, 40, 63] {
            assert_eq!(sharded.ancestor_at(prev, h), ids[h as usize]);
            assert_eq!(sharded.ancestor_at(prev, h), snap.ancestor_at(prev, h));
        }
        assert!(sharded.is_ancestor(ids[10], ids[50]));
        assert!(!sharded.is_ancestor(ids[50], ids[10]));
        let fork = sharded.mint(ids[20], ProcessId(1), 1, 1, 99, Payload::Empty);
        assert_eq!(sharded.common_ancestor(fork, prev), ids[20]);
    }

    #[test]
    fn incremental_snapshot_tracks_growth() {
        let sharded = ShardedStore::with_shards(4);
        let mut cache = SnapshotCache::new();
        assert_eq!(sharded.refresh_snapshot(&mut cache), 0, "genesis only");
        let mut prev = BlockId::GENESIS;
        for i in 0..10u64 {
            prev = sharded.mint(prev, ProcessId(0), 0, 1, i, Payload::Empty);
        }
        assert_eq!(sharded.refresh_snapshot(&mut cache), 10);
        assert_eq!(cache.len(), 11);
        // No writes since the last refresh: the generation gate skips.
        assert_eq!(sharded.refresh_snapshot(&mut cache), 0);
        for i in 10..15u64 {
            prev = sharded.mint(prev, ProcessId(0), 0, 1, i, Payload::Empty);
        }
        assert_eq!(sharded.refresh_snapshot(&mut cache), 5);
        for i in 0..cache.len() as u32 {
            assert_eq!(cache.store().meta(BlockId(i)), sharded.meta(BlockId(i)));
        }
    }

    #[test]
    fn live_snapshot_mid_workload_is_parent_closed_and_consistent() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        std::thread::scope(|s| {
            for t in 0..3u32 {
                let bt = &bt;
                s.spawn(move || {
                    for i in 0..60u64 {
                        let _ =
                            bt.append(CandidateBlock::simple(ProcessId(t), (t as u64) << 32 | i));
                    }
                });
            }
            // Snapshot the tree while the appenders are running: every
            // refreshed prefix must be internally consistent.
            let bt = &bt;
            s.spawn(move || {
                let mut cache = SnapshotCache::new();
                for _ in 0..40 {
                    bt.store().refresh_snapshot(&mut cache);
                    let snap = cache.store();
                    for id in 1..snap.len() as u32 {
                        if snap.is_hole(BlockId(id)) {
                            continue; // leapfrogged mid-mint id, not yet filled
                        }
                        let meta = snap.meta(BlockId(id));
                        let parent = meta.parent.expect("non-genesis");
                        assert!(parent.0 < id, "parents precede children in id order");
                        assert_eq!(meta.height, snap.meta(parent).height + 1);
                        assert_eq!(meta, bt.store().meta(BlockId(id)), "meta agrees live");
                    }
                    std::thread::yield_now();
                }
            });
        });
        // After quiescence the same cache converges to the full snapshot.
        let mut cache = SnapshotCache::new();
        bt.store().refresh_snapshot(&mut cache);
        assert_eq!(cache.len(), bt.store().block_count());
    }

    #[test]
    fn fresh_tree_reads_genesis() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        assert_eq!(bt.read(), Blockchain::genesis());
        assert_eq!(bt.read_owned(), Blockchain::genesis());
        assert_eq!(bt.selected_tip(), BlockId::GENESIS);
        assert_eq!(bt.len(), 1);
    }

    #[test]
    fn sequential_appends_extend_the_chain() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        for i in 0..10 {
            assert!(bt
                .append(CandidateBlock::simple(ProcessId(0), i))
                .unwrap()
                .is_some());
        }
        assert_eq!(bt.read().len(), 11);
        assert_eq!(bt.len(), 11);
        assert_eq!(bt.selected_tip(), bt.selected_tip_full_scan());
    }

    #[test]
    fn rejected_append_leaves_tree_unchanged() {
        let bt = ConcurrentBlockTree::new(LongestChain, DigestPrefix { zero_bits: 64 });
        assert!(bt
            .append(CandidateBlock::simple(ProcessId(0), 1))
            .unwrap()
            .is_none());
        assert_eq!(bt.read(), Blockchain::genesis());
        assert_eq!(bt.len(), 1);
        // The rejected mint still occupies an arena slot, as on BlockTree.
        assert_eq!(bt.store().block_count(), 2);
    }

    #[test]
    fn graft_builds_forks_and_reorgs() {
        let bt = ConcurrentBlockTree::new(HeaviestWork, AcceptAll);
        let a = bt
            .graft(BlockId::GENESIS, CandidateBlock::simple(ProcessId(0), 1))
            .unwrap()
            .unwrap();
        let _a2 = bt
            .graft(a, CandidateBlock::simple(ProcessId(0), 2))
            .unwrap()
            .unwrap();
        let heavy = bt
            .graft(
                BlockId::GENESIS,
                CandidateBlock::simple(ProcessId(1), 3).with_work(10),
            )
            .unwrap()
            .unwrap();
        assert_eq!(bt.selected_tip(), heavy, "work 10 beats work 2");
        assert_eq!(bt.read().ids(), &[BlockId::GENESIS, heavy]);
    }

    #[test]
    fn held_views_and_owned_snapshots_survive_later_appends() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        bt.append(CandidateBlock::simple(ProcessId(0), 1)).unwrap();
        let view = bt.read(); // borrowed: parks an epoch pin
        let snap = bt.read_owned(); // owned: refcounted, pin released
        for i in 2..20 {
            bt.append(CandidateBlock::simple(ProcessId(0), i)).unwrap();
        }
        // The borrowed view still sees the chain it pinned — the epoch
        // guard kept the retired box alive across 18 publications.
        assert_eq!(view.len(), 2, "pinned view is immutable");
        assert_eq!(snap.len(), 2, "owned snapshot is immutable");
        assert!(view.is_prefix_of(&bt.read_owned()));
        assert!(snap.is_prefix_of(&bt.read_owned()));
        drop(view);
        assert_eq!(bt.read().len(), 20);
    }

    #[test]
    fn retired_snapshots_are_reclaimed_after_readers_pass() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        let n = 4 * RECLAIM_PENDING_MAX as u64;
        for i in 0..n {
            bt.append(CandidateBlock::simple(ProcessId(0), i)).unwrap();
            // Reads come and go: no pin outlives an iteration.
            assert_eq!(bt.read().len() as u64, i + 2);
        }
        // Every publication retired a box; with no reader parked, the
        // threshold-triggered sweeps must have kept the backlog near the
        // (adaptive, capped) reclaim threshold, not at the commit count.
        assert!(
            bt.epochs().pending_items() <= 2 * RECLAIM_PENDING_MAX,
            "pending garbage stays bounded: {} items",
            bt.epochs().pending_items()
        );
        assert!(bt.epochs().reclaimed_items() >= n / 2);
    }

    /// The adaptive threshold reacts to the observed batch size: all-
    /// inline (batch ≈ 1) runs sweep at the cap; a drain pattern with
    /// fat batches drags the threshold back toward the floor.
    #[test]
    fn reclaim_threshold_adapts_to_batch_size() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        assert_eq!(bt.reclaim_threshold(), RECLAIM_PENDING_MAX, "mean 1.0");
        // Simulate a contended history: fat batches reported by drains.
        bt.avg_batch_x8.store(8 * 8, Ordering::Relaxed); // mean batch 8; relaxed: single-threaded test
        assert_eq!(bt.reclaim_threshold(), RECLAIM_PENDING_MIN);
        bt.avg_batch_x8.store(8 * 2, Ordering::Relaxed); // mean batch 2; relaxed: single-threaded test
        assert_eq!(bt.reclaim_threshold(), RECLAIM_PENDING_MAX / 2);
    }

    /// Uncontended appends take the inline fast path: no queue traffic,
    /// no batches — the pipeline counters must say so.
    #[test]
    fn uncontended_appends_commit_inline() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        for i in 0..50 {
            assert!(bt
                .append(CandidateBlock::simple(ProcessId(0), i))
                .unwrap()
                .is_some());
        }
        let stats = bt.pipeline_stats();
        assert_eq!(stats.inline_appends, 50, "single appender never queues");
        assert_eq!(stats.batched_appends, 0);
        assert_eq!(stats.batches, 0);
        assert_eq!(bt.read().len(), 51);
    }

    /// Regression (allocation diet): `append` must *move* the candidate's
    /// payload into the arena — the committed block's transaction buffer
    /// is the very allocation the caller built, not a clone. Before, the
    /// payload was cloned unconditionally (even for blocks `P` rejected
    /// before enqueue).
    #[test]
    fn append_moves_the_payload_into_the_arena() {
        use crate::block::{Payload, Tx};
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        let txs = vec![Tx::new(0, 1, 2, 17)];
        let data_ptr = txs.as_ptr();
        let cand = CandidateBlock::simple(ProcessId(0), 1).with_payload(Payload::Transactions(txs));
        let id = bt.append(cand).unwrap().expect("AcceptAll");
        bt.store().with_block(id, &mut |b| match &b.payload {
            Payload::Transactions(v) => {
                assert_eq!(v.as_ptr(), data_ptr, "payload moved, not cloned")
            }
            other => panic!("payload kind changed: {other:?}"),
        });
        // A `P`-rejected candidate's payload is also moved (the mint
        // happens before prevalidation), never cloned on the way to the
        // rejection: same identity check on the orphan mint.
        let bt = ConcurrentBlockTree::new(LongestChain, DigestPrefix { zero_bits: 64 });
        let txs = vec![Tx::new(1, 3, 4, 5)];
        let data_ptr = txs.as_ptr();
        let cand = CandidateBlock::simple(ProcessId(0), 2).with_payload(Payload::Transactions(txs));
        assert!(
            bt.append(cand).unwrap().is_none(),
            "64 zero bits rejects everything"
        );
        let orphan = BlockId(1); // sole non-genesis mint
        bt.store().with_block(orphan, &mut |b| match &b.payload {
            Payload::Transactions(v) => {
                assert_eq!(v.as_ptr(), data_ptr, "rejected payload moved too")
            }
            other => panic!("payload kind changed: {other:?}"),
        });
    }

    /// `wait_committed` now parks on the commit generation: a waiter must
    /// wake when another thread's graft lands (not just poll), and a
    /// block that never commits must come back `false` at the deadline.
    #[test]
    fn wait_committed_parks_until_the_commit_lands() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        // Mint into the arena only — not yet a member (the winner's mint
        // before its graft, in Protocol-A terms).
        let minted = bt
            .store()
            .mint(BlockId::GENESIS, ProcessId(0), 0, 1, 7, Payload::Empty);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| {
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
                bt.wait_committed(minted, deadline)
            });
            // Give the waiter time to park, then commit.
            std::thread::sleep(std::time::Duration::from_millis(20));
            bt.graft_minted(minted).unwrap().expect("AcceptAll");
            assert!(waiter.join().expect("waiter"), "woken by the graft");
        });
        // An orphan that never commits: the deadline answer is `false`.
        let orphan = bt
            .store()
            .mint(BlockId::GENESIS, ProcessId(1), 1, 1, 8, Payload::Empty);
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(30);
        assert!(!bt.wait_committed(orphan, deadline));
    }

    #[test]
    fn concurrent_appenders_commit_every_block_exactly_once() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        let per_thread = 50u64;
        let threads = 4u32;
        std::thread::scope(|s| {
            for t in 0..threads {
                let bt = &bt;
                s.spawn(move || {
                    for i in 0..per_thread {
                        let nonce = (t as u64) << 32 | i;
                        assert!(bt
                            .append(CandidateBlock::simple(ProcessId(t), nonce))
                            .unwrap()
                            .is_some());
                    }
                });
            }
        });
        let expected = (threads as u64 * per_thread) as usize + 1;
        assert_eq!(bt.len(), expected, "every append committed");
        // Longest-chain appends always extend the tip: a single path.
        assert_eq!(bt.read().len(), expected);
        assert_eq!(bt.selected_tip(), bt.selected_tip_full_scan());
        let log = bt.commit_log();
        assert_eq!(log.len(), expected - 1);
        let mut sorted = log.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), log.len(), "no double commits");
        // Every append resolved through exactly one of the two paths:
        // inline (uncontended try_lock) or the staged queue.
        let stats = bt.pipeline_stats();
        assert_eq!(
            stats.inline_appends + stats.batched_appends,
            (threads as u64) * per_thread
        );
        assert!(stats.batches <= stats.batched_appends);
        assert_eq!(stats.batches == 0, stats.batched_appends == 0);
    }

    #[test]
    fn concurrent_readers_observe_monotone_prefix_chains() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let bt = &bt;
                s.spawn(move || {
                    let mut last = bt.read_owned();
                    for _ in 0..400 {
                        let now = bt.read();
                        assert!(
                            last.is_prefix_of(&now),
                            "longest-chain published reads grow monotonically"
                        );
                        last = now.to_owned();
                    }
                });
            }
            let bt = &bt;
            s.spawn(move || {
                for i in 0..200 {
                    bt.append(CandidateBlock::simple(ProcessId(0), i)).unwrap();
                }
            });
        });
        assert_eq!(bt.read().len(), 201);
    }

    #[test]
    fn concurrent_ghost_grafts_agree_with_full_scan() {
        let bt = ConcurrentBlockTree::new(Ghost::default(), AcceptAll);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let bt = &bt;
                s.spawn(move || {
                    for i in 0..30u64 {
                        // Fork off a block of the current chain at a
                        // pseudo-random depth — real reorg pressure.
                        let chain = bt.read();
                        let ids = chain.ids();
                        let r = crate::ids::splitmix64_at((t as u64) << 8, i);
                        let parent = ids[(r as usize) % ids.len()];
                        drop(chain);
                        let _ = bt.graft(
                            parent,
                            CandidateBlock::simple(ProcessId(t), (t as u64) << 32 | i),
                        );
                    }
                });
            }
        });
        assert_eq!(bt.len(), 121);
        assert_eq!(bt.selected_tip(), bt.selected_tip_full_scan());
        // And the snapshot replays to the same selection.
        let snap = bt.snapshot_store();
        let mut tree = TreeMembership::genesis_only();
        for id in bt.commit_log() {
            tree.insert(&snap, id);
        }
        assert_eq!(Ghost::default().select_tip(&snap, &tree), bt.selected_tip());
    }

    /// A selection rule that panics on its nth membership insert —
    /// injected user-code failure inside the drain's critical section.
    struct PanicOnInsert {
        at: u32,
        seen: std::sync::atomic::AtomicU32,
    }

    impl crate::selection::SelectionFn for PanicOnInsert {
        fn select_tip(
            &self,
            store: &dyn crate::store::BlockView,
            tree: &TreeMembership,
        ) -> BlockId {
            LongestChain.select_tip(store, tree)
        }

        fn on_insert(
            &self,
            store: &dyn crate::store::BlockView,
            tree: &TreeMembership,
            aux: &mut crate::selection::SelectionAux,
            new_block: BlockId,
            current_tip: BlockId,
        ) -> crate::selection::TipUpdate {
            if self.seen.fetch_add(1, Ordering::SeqCst) + 1 == self.at {
                panic!("injected selection panic");
            }
            LongestChain.on_insert(store, tree, aux, new_block, current_tip)
        }

        fn name(&self) -> &'static str {
            "panic-on-insert"
        }
    }

    /// A panic in user code inside the batch drain must kill only the
    /// draining thread: every other appender whose request was already
    /// taken off the queue gets resolved by the unwind path — recorded
    /// outcomes (covered by the recovery publication) or rejected —
    /// instead of spinning forever. Completion of this test is half the
    /// assertion (before the unwind handling, the non-panicking threads
    /// hung); the read-after-response check inside the appenders is the
    /// other half.
    #[test]
    fn drainer_panic_resolves_the_batch_instead_of_hanging() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let bt = ConcurrentBlockTree::new(
            PanicOnInsert {
                at: 5,
                seen: std::sync::atomic::AtomicU32::new(0),
            },
            AcceptAll,
        );
        let mut reported: Vec<BlockId> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3u32)
                .map(|t| {
                    let bt = &bt;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        for i in 0..4u64 {
                            // The injected panic (and, in debug builds, the
                            // cache-divergence asserts that follow it) stay
                            // on whichever thread drains — catch and move on.
                            let r = catch_unwind(AssertUnwindSafe(|| {
                                bt.append(CandidateBlock::simple(
                                    ProcessId(t),
                                    (t as u64) << 32 | i,
                                ))
                            }));
                            if let Ok(Ok(Some(id))) = r {
                                // Publish-before-respond must survive the
                                // panic path: a committed response, even
                                // one delivered by the drainer's unwind
                                // recovery, is covered by a publication
                                // (longest-chain commits here form one
                                // growing path, so later publications
                                // only extend it).
                                assert!(
                                    bt.read().ids().contains(&id),
                                    "append responded committed but the \
                                     published chain lacks {id}"
                                );
                                mine.push(id);
                            }
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                reported.extend(h.join().expect("appender threads terminate"));
            }
        });
        // Every append call terminated (returned or panicked in place);
        // the pre-panic commits went through, and every id an append
        // *reported* as committed really is in the commit log — even the
        // ones whose statuses the unwind path delivered.
        assert!(bt.len() >= 4, "pre-panic commits landed: {}", bt.len());
        let log: std::collections::HashSet<_> = bt.commit_log().into_iter().collect();
        for id in reported {
            assert!(log.contains(&id), "reported-committed {id} not in log");
        }
    }

    #[test]
    fn snapshot_reproduces_the_arena() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        for i in 0..12 {
            if i % 3 == 0 {
                let _ = bt.graft(
                    BlockId::GENESIS,
                    CandidateBlock::simple(ProcessId(1), 100 + i),
                );
            } else {
                let _ = bt.append(CandidateBlock::simple(ProcessId(0), i));
            }
        }
        let snap = bt.snapshot_store();
        assert_eq!(snap.block_count(), bt.store().block_count());
        for i in 0..snap.block_count() as u32 {
            assert_eq!(snap.meta(BlockId(i)), bt.store().meta(BlockId(i)));
        }
    }

    #[test]
    fn flattened_tier_preserves_every_read() {
        // Build a fork-heavy arena, record every read, flatten most of
        // it incrementally, and require bit-identical answers after.
        let store = ShardedStore::with_flattening(4);
        let mut all = vec![BlockId::GENESIS];
        let mut prev = BlockId::GENESIS;
        for i in 0..80u64 {
            let parent = if i % 7 == 0 {
                all[(i as usize * 13) % all.len()]
            } else {
                prev
            };
            let payload = if i % 5 == 0 {
                Payload::Opaque(i)
            } else {
                Payload::Empty
            };
            let id = store.mint(parent, ProcessId((i % 3) as u32), 0, 1 + i % 4, i, payload);
            all.push(id);
            prev = id;
        }
        let metas: Vec<BlockMeta> = all.iter().map(|&id| store.meta(id)).collect();
        let blocks: Vec<Block> = all.iter().map(|&id| store.block(id)).collect();
        let kids: Vec<Vec<BlockId>> = all
            .iter()
            .map(|&id| {
                let mut v = Vec::new();
                store.for_each_child(id, &mut |c| v.push(c));
                v
            })
            .collect();
        store.raise_flatten_target(60);
        let mut done = 0;
        while done < 60 {
            let n = store.flatten_some(7);
            assert!(n > 0, "bounded flattening makes progress");
            done += n;
        }
        assert_eq!(store.flattened_count(), 60);
        assert_eq!(store.flatten_some(8), 0, "no work past the bound");
        for (i, &id) in all.iter().enumerate() {
            assert_eq!(store.meta(id), metas[i], "meta of {id}");
            assert_eq!(store.block(id), blocks[i], "block of {id}");
            let mut v = Vec::new();
            store.for_each_child(id, &mut |c| v.push(c));
            assert_eq!(v, kids[i], "children of {id}");
        }
        // Walks crossing the tier boundary agree with the sequential
        // mirror of the same arena.
        let snap = store.snapshot();
        for &a in &all {
            for &b in all.iter().step_by(9) {
                assert_eq!(store.is_ancestor(a, b), snap.is_ancestor(a, b));
                assert_eq!(store.common_ancestor(a, b), snap.common_ancestor(a, b));
            }
        }
    }

    #[test]
    fn flattening_retires_spine_chunks_through_the_epoch_domain() {
        let store = ShardedStore::with_flattening(1);
        let mut prev = BlockId::GENESIS;
        for i in 0..2045u64 {
            prev = store.mint(prev, ProcessId(0), 0, 1, i, Payload::Empty);
        }
        let before = store.approx_heap_bytes();
        store.raise_flatten_target(2000);
        while store.flatten_some(256) > 0 {}
        assert_eq!(store.flattened_count(), 2000);
        let dom = store.reclaim_domain();
        assert!(dom.retired_bytes_peak() > 0, "spine chunks were retired");
        // Nothing is pinned: a quiescent sweep frees every retired chunk.
        assert!(dom.reclaim_quiescent() > 0);
        assert_eq!(dom.pending_items(), 0);
        assert_eq!(dom.retired_bytes(), 0);
        let after = store.approx_heap_bytes();
        assert!(
            after < before,
            "flattened arena should be smaller: {after} !< {before}"
        );
        // Deep walks still cross the tier boundary correctly.
        assert_eq!(store.height(prev), 2045);
        assert_eq!(store.ancestor_at(prev, 0), BlockId::GENESIS);
        assert_eq!(store.ancestor_at(prev, 1234), BlockId(1234));
        assert!(store.is_ancestor(BlockId(1), prev));
    }

    #[test]
    fn retired_chunk_reads_reroute_to_the_slab() {
        // Deterministic replay of the state a reader in the
        // tier-check-vs-retirement window observes: the spine chunk is
        // already swapped to null while the id is flat. The `None`
        // fallback (`flat_after_retire`, used by meta_raw / nav_raw /
        // has_block / mint_checked) must confirm the flat tier, and the
        // slab readers must serve the id.
        let store = ShardedStore::with_flattening(1);
        let mut prev = BlockId::GENESIS;
        for i in 0..2045u64 {
            prev = store.mint(prev, ProcessId(0), 0, 1, i, Payload::Empty);
        }
        store.raise_flatten_target(2000);
        while store.flatten_some(256) > 0 {}
        assert_eq!(store.flattened_count(), 2000);
        // One shard ⇒ slot == id; chunks k ≤ 9 (ids through 1022) lie
        // wholly below the 2000 frontier and are retired.
        for id in [BlockId::GENESIS, BlockId(1), BlockId(500), BlockId(1022)] {
            assert!(
                store.shards[store.shard_of(id)]
                    .entry(store.slot_of(id))
                    .is_none(),
                "{id:?}'s chunk is retired"
            );
            assert!(store.flat_after_retire(id), "fallback reroutes {id:?}");
            assert_eq!(store.meta_raw(id).height, id.0);
            assert_eq!(store.flat_nav(id).1, id.0);
            assert_eq!(store.flat_block(id).height, id.0);
        }
        // The first unretired chunk still serves spine reads directly.
        assert!(store.shards[0].entry(1023).is_some());
        // A never-minted id keeps its half-minted verdict through the
        // same fallback (`has_block` is the only caller that probes).
        assert!(!store.has_block(BlockId(1 << 20)));
    }

    #[test]
    fn children_minted_under_flattened_parents_are_still_visible() {
        let store = ShardedStore::with_flattening(2);
        let mut prev = BlockId::GENESIS;
        for i in 0..50u64 {
            prev = store.mint(prev, ProcessId(0), 0, 1, i, Payload::Empty);
        }
        store.raise_flatten_target(51);
        while store.flatten_some(64) > 0 {}
        assert_eq!(store.flattened_count(), 51, "the whole arena is flat");
        // Fork under a deep flattened parent: the child lands in the
        // late-kids side table and merges after the frozen list.
        let deep = BlockId(10);
        let late = store.mint(deep, ProcessId(1), 0, 5, 99, Payload::Opaque(7));
        let mut kids = Vec::new();
        store.for_each_child(deep, &mut |c| kids.push(c));
        assert_eq!(kids, vec![BlockId(11), late], "frozen first, late after");
        assert_eq!(store.parent(late), Some(deep));
        assert_eq!(store.height(late), 11);
        assert_eq!(store.meta(late).work, 5);
        assert_eq!(store.common_ancestor(late, prev), deep);
        assert_eq!(store.cumulative_work(late), store.cumulative_work(deep) + 5);
    }

    #[test]
    fn snapshot_cache_leapfrogs_isolated_gaps() {
        let store = ShardedStore::with_shards(1);
        let a = store.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        // A genuinely in-flight mint: the check blocks with the id
        // already allocated, so the slot stays a gap until released.
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        std::thread::scope(|s| {
            let store_ref = &store;
            let straggler = s.spawn(move || {
                store_ref.mint_checked(a, ProcessId(0), 0, 1, 1, Payload::Empty, |_| {
                    rx.recv().unwrap();
                    true
                })
            });
            while store.block_count() < 3 {
                std::thread::yield_now();
            }
            let mut cache = SnapshotCache::new();
            store.refresh_snapshot(&mut cache);
            // No later mint witnesses the leapfrog yet: adoption stalls.
            assert_eq!(cache.len(), 2);
            let c = store.mint(a, ProcessId(1), 0, 1, 2, Payload::Empty);
            store.refresh_snapshot(&mut cache);
            assert_eq!(cache.len(), 4, "adopted past the gap");
            assert_eq!(cache.store().hole_count(), 1);
            assert!(!cache.store().has_block(BlockId(2)));
            assert!(cache.store().has_block(c));
            assert_eq!(cache.store().children(a), &[c]);
            assert_eq!(cache.store().meta(c), store.meta(c));
            tx.send(()).unwrap();
            straggler.join().unwrap();
        });
    }

    /// A `P` check that panics after its id is allocated must not leave
    /// a permanent dead gap: the flattener (and with it chunk retirement
    /// and WAL compaction) would wedge behind the never-ready slot
    /// forever. `mint_checked` shields the check, so the block lands in
    /// the arena like any rejected mint and the panic resumes after.
    #[test]
    fn panicked_checks_leave_no_dead_gap() {
        let store = ShardedStore::with_flattening(1);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.mint_checked(
                BlockId::GENESIS,
                ProcessId(0),
                0,
                1,
                0,
                Payload::Empty,
                |_| panic!("boom"),
            )
        }));
        assert!(unwound.is_err(), "the check's panic still propagates");
        let b = store.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 1, Payload::Empty);
        // The panicked mint's slot is occupied, not a hole...
        assert!(store.has_block(BlockId(1)));
        let snap = store.snapshot();
        assert_eq!(snap.len(), 3, "quiescent snapshot adopts everything");
        assert_eq!(snap.hole_count(), 0);
        // ...so flattening proceeds straight past it instead of wedging.
        store.raise_flatten_target(3);
        while store.flatten_some(8) > 0 {}
        assert_eq!(
            store.flattened_count(),
            3,
            "flattened past the panicked mint"
        );
        assert_eq!(store.parent(b), Some(BlockId::GENESIS));
    }

    #[test]
    fn stragglers_fill_their_holes_after_completion() {
        let store = ShardedStore::with_shards(1);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        std::thread::scope(|s| {
            let store_ref = &store;
            let straggler = s.spawn(move || {
                store_ref.mint_checked(
                    BlockId::GENESIS,
                    ProcessId(7),
                    0,
                    3,
                    9,
                    Payload::Opaque(9),
                    |_| {
                        rx.recv().unwrap(); // stall mid-mint, id allocated
                        true
                    },
                )
            });
            while store.block_count() < 2 {
                std::thread::yield_now();
            }
            let c = store.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 1, Payload::Empty);
            let mut cache = SnapshotCache::new();
            store.refresh_snapshot(&mut cache);
            assert_eq!(cache.len(), 3, "leapfrogged the stalled mint");
            assert_eq!(cache.store().hole_count(), 1);
            tx.send(()).unwrap();
            let (sid, ok) = straggler.join().unwrap();
            assert!(ok);
            assert_eq!(sid, BlockId(1));
            store.refresh_snapshot(&mut cache);
            assert_eq!(cache.store().hole_count(), 0, "the hole filled");
            assert_eq!(cache.store().meta(sid), store.meta(sid));
            let kids = cache.store().children(BlockId::GENESIS);
            assert_eq!(kids, &[sid, c], "sorted child order after the fill");
            let snap = store.snapshot();
            assert_eq!(snap.block_count(), 3);
        });
    }

    #[test]
    fn tree_watermark_flattens_the_committed_prefix() {
        let bt = ConcurrentBlockTree::with_config(
            4,
            FinalityWatermark::new(16),
            LongestChain,
            AcceptAll,
        );
        assert!(bt.store().flatten_capable());
        for i in 0..200u64 {
            bt.append(CandidateBlock::simple(ProcessId(0), i)).unwrap();
        }
        let target = bt.store().flatten_target();
        assert!(target > 0, "the watermark advanced");
        assert_eq!(
            bt.store().flattened_count(),
            target,
            "the per-publication budget keeps up with sequential appends"
        );
        let snap = bt.snapshot_store();
        for id in 0..snap.block_count() as u32 {
            assert_eq!(bt.store().meta(BlockId(id)), snap.meta(BlockId(id)));
            assert_eq!(bt.store().block(BlockId(id)), snap.block(BlockId(id)));
        }
        assert_eq!(bt.selected_tip(), bt.selected_tip_full_scan());

        let plain = ConcurrentBlockTree::with_config(
            4,
            FinalityWatermark::disabled(),
            LongestChain,
            AcceptAll,
        );
        assert!(!plain.store().flatten_capable());
        for i in 0..40u64 {
            plain
                .append(CandidateBlock::simple(ProcessId(0), i))
                .unwrap();
        }
        assert_eq!(plain.store().flattened_count(), 0);
        assert_eq!(plain.store().flatten_target(), 0);
    }
}
