//! The concurrent BT-ADT: a thread-safe BlockTree whose `read()` is
//! lock-free.
//!
//! §4.1 models processes racing on atomic base objects; everything else in
//! this crate is single-threaded. [`ConcurrentBlockTree`] is the shared
//! object those processes would race on: many appender threads, any number
//! of reader threads, one tree.
//!
//! # Architecture
//!
//! * **Sharded arena** ([`ShardedStore`]): block data lives in
//!   `S` lock-sharded slot vectors (shard = low bits of the [`BlockId`],
//!   which round-robins dense ids perfectly). Ids come from one atomic
//!   counter; minting writes exactly one shard, so appenders working on
//!   different blocks do not contend on block data. Jump-pointer
//!   maintenance and the O(log n) ancestry queries (`ancestor_at`,
//!   `is_ancestor`, `common_ancestor`) run lock-striped through the
//!   [`BlockView`] metadata interface — at most one shard read lock held
//!   at a time, so there is no lock-order cycle. Every shard write bumps a
//!   per-shard generation counter, which is what lets [`SnapshotCache`]
//!   extend a sequential snapshot incrementally against a *live* tree.
//! * **Staged commits** (`crate::commit`): tree membership, the
//!   incremental [`ChainCache`], and the commit log still live behind one
//!   mutex — the linearization point of successful appends — but appends
//!   no longer serialize through it one by one. An `append` mints and
//!   pre-validates against the published tip outside any lock (as
//!   before), then *enqueues* a commit request on a lock-free MPSC queue;
//!   whichever enqueued appender acquires the selection mutex (one CAS
//!   uncontended; contended appenders park and are usually resolved by
//!   the incumbent — a combining lock) drains the queue as a batch — one
//!   membership insert plus incremental re-selection fold per request,
//!   one chain publication
//!   for the whole batch. A request whose optimistic parent lost the race
//!   is re-minted by the drainer under the authoritative cache tip, so
//!   every append resolves in exactly one queue pass (the old design
//!   looped mint→lock→check per collision).
//! * **Lock-free reads with grace periods** (`crate::epoch`): after every
//!   batch the selected chain `{b0}⌢f(bt)` is republished as a boxed
//!   [`Blockchain`] through an atomic pointer swap. `read()` pins the
//!   epoch domain and hands back a borrowed [`ChainView`] — one epoch pin
//!   (a CAS on a thread-private padded slot) plus one `Acquire` load, no
//!   lock and **no shared refcount**: the `Arc` bump that previously made
//!   every full-chain read hit one shared cache line is gone from the hot
//!   path. [`ChainView::to_owned`] upgrades to an owned [`Blockchain`]
//!   (that `Arc` clone) for snapshots that must outlive the guard.
//!
//! # Publication & reclamation
//!
//! Swapped-out snapshot boxes are *retired* into the tree's
//! [`EpochDomain`]: a reader holding a [`ChainView`] may still be looking
//! through the old pointer, so the box is freed only after every reader
//! pinned at (or before) the swap has unpinned — the two-epoch grace
//! period of `crate::epoch`. This replaces PR 2's grow-forever retire
//! list: memory now tracks the *reader horizon*, not the commit count.
//! The ordering contract is publish-before-respond: the batch's swap
//! (`AcqRel`) happens inside the commit lock, before any of the batch's
//! `append`s return, so any read invoked after an append's response
//! observes that append's chain (or a later one) — the property the
//! recorded-history linearizability suite checks from the outside.

use crate::block::{Block, Payload};
use crate::blocktree::CandidateBlock;
use crate::chain::Blockchain;
use crate::commit::{CommitQueue, CommitReq, PipelineStats};
use crate::epoch::{EpochDomain, Guard};
use crate::ids::BlockId;
use crate::selection::SelectionFn;
use crate::store::{BlockMeta, BlockStore, BlockView, TreeMembership};
use crate::tipcache::ChainCache;
use crate::validity::ValidityPredicate;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};

/// Default shard count for [`ShardedStore`] (must be a power of two).
pub const DEFAULT_SHARDS: usize = 16;

/// Commit paths attempt an epoch advance + bag sweep only once this many
/// retirees are pending: reclamation cost is amortized over ~a batch of
/// commits while the backlog stays a small constant (the churn stress
/// asserts the bound from the outside).
const RECLAIM_PENDING_THRESHOLD: usize = 32;

struct Entry {
    block: Block,
    cum_work: u64,
    jump: BlockId,
    /// Forward edges: member-or-not children, in minting order.
    children: Vec<BlockId>,
}

#[derive(Default)]
struct Shard {
    /// Slot `i` holds the block with id `i * shards + shard_index`.
    /// Ids are allocated before their entry is written, so a slot can be
    /// transiently `None` mid-mint.
    slots: Vec<Option<Entry>>,
}

/// A lock-sharded, append-only block arena safe for concurrent minting.
///
/// Shard selection hashes the [`BlockId`] by its low bits — ids are dense
/// (one atomic counter), so consecutive mints land on distinct shards.
/// All read access goes through [`BlockView`]; each query acquires at most
/// one shard read lock at a time (child lists are copied out before any
/// callback runs), so queries never deadlock against concurrent minters.
pub struct ShardedStore {
    shards: Box<[RwLock<Shard>]>,
    /// Per-shard write-generation counters (bumped after every slot write
    /// or child-list push, outside the shard lock). Writers touch only
    /// their own shard's counter — no shared cache line — and
    /// [`SnapshotCache`] compares them to skip rescans when nothing
    /// changed: the copy-on-write gate for incremental snapshots.
    gens: Box<[AtomicU64]>,
    next_id: AtomicU32,
    mask: u32,
    shift: u32,
}

impl ShardedStore {
    /// A store holding only genesis, with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        ShardedStore::with_shards(DEFAULT_SHARDS)
    }

    /// A store holding only genesis, with `shards` lock shards
    /// (power of two).
    pub fn with_shards(shards: usize) -> Self {
        assert!(
            shards.is_power_of_two() && shards > 0,
            "shard count must be a power of two"
        );
        let store = ShardedStore {
            shards: (0..shards).map(|_| RwLock::new(Shard::default())).collect(),
            gens: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            next_id: AtomicU32::new(1),
            mask: shards as u32 - 1,
            shift: shards.trailing_zeros(),
        };
        // Install genesis (same block BlockStore::new mints into slot 0).
        let genesis = BlockStore::new().block(BlockId::GENESIS);
        store.shards[0].write().slots.push(Some(Entry {
            block: genesis,
            cum_work: 0,
            jump: BlockId::GENESIS,
            children: Vec::new(),
        }));
        store
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, id: BlockId) -> usize {
        (id.0 & self.mask) as usize
    }

    #[inline]
    fn slot_of(&self, id: BlockId) -> usize {
        (id.0 >> self.shift) as usize
    }

    /// Mints a new block under `parent` and returns its id. Safe to call
    /// from any number of threads; `parent` must be fully minted (callers
    /// obtain parents from published tips, commit logs, or their own
    /// earlier mints — all release/acquire-ordered after the parent's
    /// shard write).
    ///
    /// The jump pointer is computed exactly as `BlockStore::mint` does
    /// (skew-binary, distance a function of height alone), reading the
    /// parent's — fully immutable — ancestor metadata.
    pub fn mint(
        &self,
        parent: BlockId,
        producer: crate::ids::ProcessId,
        merit_index: u32,
        work: u64,
        nonce: u64,
        payload: Payload,
    ) -> BlockId {
        let pm = self.meta(parent);
        let height = pm.height + 1;
        let digest = Block::compute_digest(pm.digest, producer, nonce, &payload);
        let jump = crate::store::jump_for_child(self, parent);
        let id = BlockId(self.next_id.fetch_add(1, Ordering::AcqRel));
        let entry = Entry {
            block: Block {
                id,
                parent: Some(parent),
                height,
                producer,
                merit_index,
                work,
                digest,
                payload,
            },
            cum_work: pm.cum_work + work,
            jump,
            children: Vec::new(),
        };
        {
            let mut shard = self.shards[self.shard_of(id)].write();
            let slot = self.slot_of(id);
            if shard.slots.len() <= slot {
                shard.slots.resize_with(slot + 1, || None);
            }
            shard.slots[slot] = Some(entry);
        }
        self.gens[self.shard_of(id)].fetch_add(1, Ordering::Release);
        // Forward edge on the parent, after the entry is in place: anyone
        // discovering `id` through the child list finds a complete entry.
        self.shards[self.shard_of(parent)].write().slots[self.slot_of(parent)]
            .as_mut()
            .expect("parent fully minted")
            .children
            .push(id);
        self.gens[self.shard_of(parent)].fetch_add(1, Ordering::Release);
        id
    }

    /// Extends `cache` with every *fully minted* block not yet adopted,
    /// in id order, stopping at the first still-in-flight mint. Safe
    /// against live minters: parents always carry smaller ids and finish
    /// minting before their children's ids are allocated, so the adopted
    /// prefix is parent-closed and internally consistent — checkers can
    /// run over `cache.store()` while the workload is still appending.
    ///
    /// Returns the number of newly adopted blocks. Cost is O(new blocks);
    /// when no shard's generation counter moved since the last refresh,
    /// the call is O(shards) and touches no shard lock at all.
    pub fn refresh_snapshot(&self, cache: &mut SnapshotCache) -> usize {
        let gens: Vec<u64> = self
            .gens
            .iter()
            .map(|g| g.load(Ordering::Acquire))
            .collect();
        if gens == cache.gens {
            return 0;
        }
        let count = self.block_count();
        let mut adopted = 0;
        while cache.base.len() < count {
            let id = BlockId(cache.base.len() as u32);
            if !self.has_block(id) {
                break; // allocated but still mid-mint: stop at the gap
            }
            cache.base.adopt(self.block(id));
            adopted += 1;
        }
        cache.gens = gens;
        adopted
    }

    /// Materializes a sequential [`BlockStore`] with identical ids,
    /// digests, and memoized indices — the bridge to every single-threaded
    /// checker (linearizability, criteria, differential replay).
    ///
    /// Requires quiescence (no in-flight `mint`), e.g. after joining the
    /// workload threads; panics on a half-minted id. For snapshots of
    /// *live* trees, keep a [`SnapshotCache`] and call
    /// [`refresh_snapshot`](Self::refresh_snapshot) instead.
    pub fn snapshot(&self) -> BlockStore {
        let mut cache = SnapshotCache::new();
        self.refresh_snapshot(&mut cache);
        assert_eq!(
            cache.base.len(),
            self.block_count(),
            "snapshot of a half-minted id (snapshot requires quiescence)"
        );
        cache.base
    }
}

impl Default for ShardedStore {
    fn default() -> Self {
        ShardedStore::new()
    }
}

/// An incrementally maintained sequential snapshot of a [`ShardedStore`].
///
/// Holds the adopted prefix as a plain [`BlockStore`] plus the per-shard
/// generation counters observed at the last refresh. Each
/// [`ShardedStore::refresh_snapshot`] call extends the prefix by only the
/// newly minted blocks (never rescanning the arena), and skips even that
/// when no generation moved — which is what makes running the sequential
/// checkers against a live, non-quiescent tree affordable.
pub struct SnapshotCache {
    base: BlockStore,
    gens: Vec<u64>,
}

impl SnapshotCache {
    /// An empty cache (genesis only, no generations observed).
    pub fn new() -> Self {
        SnapshotCache {
            base: BlockStore::new(),
            gens: Vec::new(),
        }
    }

    /// The adopted prefix as a sequential store.
    pub fn store(&self) -> &BlockStore {
        &self.base
    }

    /// Blocks adopted so far (including genesis).
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Never empty: genesis is always adopted.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Default for SnapshotCache {
    fn default() -> Self {
        SnapshotCache::new()
    }
}

impl BlockView for ShardedStore {
    fn block_count(&self) -> usize {
        self.next_id.load(Ordering::Acquire) as usize
    }

    fn has_block(&self, id: BlockId) -> bool {
        self.shards[self.shard_of(id)]
            .read()
            .slots
            .get(self.slot_of(id))
            .map(|s| s.is_some())
            .unwrap_or(false)
    }

    fn meta(&self, id: BlockId) -> BlockMeta {
        let shard = self.shards[self.shard_of(id)].read();
        let e = shard.slots[self.slot_of(id)]
            .as_ref()
            .expect("meta of a half-minted id");
        BlockMeta {
            parent: e.block.parent,
            height: e.block.height,
            work: e.block.work,
            cum_work: e.cum_work,
            digest: e.block.digest,
            jump: e.jump,
        }
    }

    fn with_block(&self, id: BlockId, f: &mut dyn FnMut(&Block)) {
        let shard = self.shards[self.shard_of(id)].read();
        let e = shard.slots[self.slot_of(id)]
            .as_ref()
            .expect("block of a half-minted id");
        f(&e.block);
    }

    fn for_each_child(&self, id: BlockId, f: &mut dyn FnMut(BlockId)) {
        // Copy the child list out so `f` may query the store without this
        // shard's lock held (no nested acquisition, no deadlock).
        let kids: Vec<BlockId> = {
            let shard = self.shards[self.shard_of(id)].read();
            shard.slots[self.slot_of(id)]
                .as_ref()
                .expect("children of a half-minted id")
                .children
                .clone()
        };
        for c in kids {
            f(c);
        }
    }
}

/// Selection state — the serialization point of tip movement.
struct SelState {
    tree: TreeMembership,
    cache: ChainCache,
    /// Membership inserts in commit order (parent-closed by construction):
    /// replaying it into the sequential machinery must reproduce the same
    /// selected chain (see `tests/selection_differential.rs`).
    commit_log: Vec<BlockId>,
}

/// An epoch-guarded borrowed view of the published chain `{b0}⌢f(bt)` —
/// what [`ConcurrentBlockTree::read`] returns.
///
/// Dereferences to [`Blockchain`]; the pointee stays valid for as long as
/// the view (and its epoch pin) lives, **without** bumping the chain's
/// shared `Arc` refcount — which is what lets full-chain reads scale
/// across reader threads instead of serializing on one refcount cache
/// line. Call [`to_owned`](Self::to_owned) to upgrade to an owned
/// [`Blockchain`] (the `Arc` clone) when the snapshot must outlive the
/// view — e.g. to store it in a recorded history.
///
/// Holding a view parks its epoch pin: retired snapshots accumulate (but
/// are never unsafe) until it drops. Hold views briefly; hold
/// [`Blockchain`]s long.
pub struct ChainView<'t> {
    chain: *const Blockchain,
    _guard: Guard<'t>,
}

impl std::ops::Deref for ChainView<'_> {
    type Target = Blockchain;

    #[inline]
    fn deref(&self) -> &Blockchain {
        // SAFETY: the pointee was published via `Box::into_raw` and is
        // retired through the epoch domain this view's guard pins — it
        // cannot be freed before the guard drops, and published chains
        // are immutable.
        unsafe { &*self.chain }
    }
}

impl ChainView<'_> {
    /// Upgrades to an owned snapshot (an `Arc` clone of the underlying
    /// buffer) that survives past this view.
    pub fn to_owned(&self) -> Blockchain {
        (**self).clone()
    }
}

impl PartialEq<Blockchain> for ChainView<'_> {
    fn eq(&self, other: &Blockchain) -> bool {
        **self == *other
    }
}

impl PartialEq for ChainView<'_> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl std::fmt::Debug for ChainView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl std::fmt::Display for ChainView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&**self, f)
    }
}

/// A thread-safe BlockTree: Def. 3.1 semantics under concurrent appenders
/// with lock-free O(1) `read()`.
///
/// See the module docs for the architecture. The selection function and
/// validity predicate are immutable over the computation, as the paper
/// requires.
pub struct ConcurrentBlockTree<F: SelectionFn, P: ValidityPredicate> {
    store: ShardedStore,
    selection: F,
    predicate: P,
    sel: Mutex<SelState>,
    /// Pending appends awaiting a batch drain (see `crate::commit`).
    queue: CommitQueue,
    /// Grace-period tracking for readers of `published`.
    epochs: EpochDomain,
    /// Current `{b0}⌢f(bt)`; always a valid leaked box.
    published: AtomicPtr<Blockchain>,
    /// The published chain's tip id, readable without touching the box.
    published_tip: AtomicU32,
}

impl<F: SelectionFn, P: ValidityPredicate> ConcurrentBlockTree<F, P> {
    /// A tree holding only `b0`, with [`DEFAULT_SHARDS`] store shards.
    pub fn new(selection: F, predicate: P) -> Self {
        ConcurrentBlockTree::with_shards(DEFAULT_SHARDS, selection, predicate)
    }

    /// A tree holding only `b0`, with an explicit shard count.
    pub fn with_shards(shards: usize, selection: F, predicate: P) -> Self {
        ConcurrentBlockTree {
            store: ShardedStore::with_shards(shards),
            selection,
            predicate,
            sel: Mutex::new(SelState {
                tree: TreeMembership::genesis_only(),
                cache: ChainCache::new(),
                commit_log: Vec::new(),
            }),
            queue: CommitQueue::new(),
            epochs: EpochDomain::new(),
            published: AtomicPtr::new(Box::into_raw(Box::new(Blockchain::genesis()))),
            published_tip: AtomicU32::new(BlockId::GENESIS.0),
        }
    }

    /// `read()`: the blockchain `{b0}⌢f(bt)` as an epoch-guarded borrowed
    /// [`ChainView`]. Lock-free and refcount-free — one epoch pin (a CAS
    /// on a thread-private padded slot) plus one `Acquire` pointer load;
    /// O(1) regardless of chain length, tree size, or writer activity,
    /// and readers on different threads touch no common cache line.
    pub fn read(&self) -> ChainView<'_> {
        let guard = self.epochs.pin();
        // The pin (SeqCst CAS + fence) happens before this load, so the
        // loaded box cannot complete a grace period while `guard` lives.
        let p = self.published.load(Ordering::Acquire);
        ChainView {
            chain: p,
            _guard: guard,
        }
    }

    /// `read()` upgraded to an owned [`Blockchain`] in one call — for
    /// callers that store the snapshot (recorded histories, replays).
    pub fn read_owned(&self) -> Blockchain {
        self.read().to_owned()
    }

    /// The tip of `f(bt)` — one `Acquire` load of the published tip id;
    /// no lock, no pin, no pointer chase.
    ///
    /// This is a monotone *hint*, not an operation linearized with
    /// [`read`](Self::read): the tip id is a separate atomic from the
    /// chain pointer, so a caller interleaving both may see this value
    /// lag a just-observed chain by one in-flight publication. The BT-ADT
    /// surface of Def. 3.1 (append/read — what the recorded-history
    /// checkers judge) is unaffected; internal users treat it as the
    /// optimistic mint target, where a stale answer only costs a re-mint
    /// in the drain. Callers that need the tip consistent with a chain
    /// should take one `read()` and use [`Blockchain::tip`].
    pub fn selected_tip(&self) -> BlockId {
        BlockId(self.published_tip.load(Ordering::Acquire))
    }

    /// `append(b)` per Def. 3.1, safe under concurrent appenders: mints
    /// `candidate` under the tip of `f(bt)`; if valid it joins the tree
    /// (returning its id), else the tree is unchanged and `None` returns.
    ///
    /// Staged (see `crate::commit`): the mint and validity check run
    /// outside any lock against the published tip; the commit request
    /// then rides the MPSC queue to whichever appender wins the drain
    /// ticket, which batches membership inserts + incremental
    /// re-selection and publishes the chain once per batch. If the
    /// optimistic parent lost the race, the drainer re-mints the
    /// candidate under the authoritative tip (the stale mint stays a
    /// non-member orphan in the arena, exactly like a `P`-rejected
    /// block). The append returns only after the publication covering
    /// its commit: publish-before-respond.
    pub fn append(&self, candidate: CandidateBlock) -> Option<BlockId> {
        let parent = self.selected_tip();
        let minted = self.store.mint(
            parent,
            candidate.producer,
            candidate.merit_index,
            candidate.work,
            candidate.nonce,
            candidate.payload.clone(),
        );
        let prevalidated = {
            let block = self.store.block(minted);
            self.predicate.is_valid(&self.store, &block)
        };
        if !prevalidated {
            // `P` refused the block. If the tip it was minted under is
            // still the published one, the rejection is definitive and
            // linearizes right here — no need to enter the commit queue.
            // The check must read the *published chain itself*, not the
            // `published_tip` hint: the hint is stored after the pointer
            // swap, so it can lag a chain another operation has already
            // observed, and deciding a response from the lagging value
            // could contradict the recorded history. (The hint is only
            // ever the optimistic mint target above, where staleness
            // costs a re-mint in the drain, never an outcome.)
            let published = self.read();
            if published.tip() == parent {
                return None;
            }
            // The tip moved under us: let the drainer re-mint under the
            // authoritative tip and decide there.
        }
        let req = CommitReq::new(minted, parent, prevalidated, candidate);
        // SAFETY: `req` lives on this stack frame, and we do not return
        // until it is resolved; `take_all` unlinks it before any drainer
        // dereferences it (see the queue's contract).
        unsafe { self.queue.push(&req) };
        loop {
            if let Some(outcome) = req.poll() {
                return outcome;
            }
            // The drain ticket is the mutex acquisition itself: one CAS
            // when uncontended (the solo-appender fast path), and a
            // *parked* waiter — not a spinning one — when a drainer is at
            // work. The incumbent usually resolves us before we wake; a
            // woken thread that is still pending becomes the next drainer
            // for whatever queued meanwhile (combining-lock pattern, no
            // scheduler convoy when the holder gets preempted).
            {
                let mut sel = self.sel.lock();
                self.drain_locked(&mut sel);
            }
            // Reclamation runs off the lock: parked appenders wake on
            // commit latency, not on garbage-sweep latency.
            self.maybe_reclaim();
        }
    }

    /// Mints `candidate` under an explicit committed `parent` (the refined
    /// append of Def. 3.7, where the oracle fixes the parent — and the
    /// fork-builder for adversarial workloads). Returns the new id if `P`
    /// accepted the block.
    pub fn graft(&self, parent: BlockId, candidate: CandidateBlock) -> Option<BlockId> {
        let id = self.store.mint(
            parent,
            candidate.producer,
            candidate.merit_index,
            candidate.work,
            candidate.nonce,
            candidate.payload,
        );
        self.graft_minted(id)
    }

    /// Commits a block already minted into the arena (via
    /// [`ShardedStore::mint`] on [`store`](Self::store)) under its minted
    /// parent, which must itself be committed. Returns the id if `P`
    /// accepted the block, `None` (leaving it a non-member orphan)
    /// otherwise.
    ///
    /// This is the commit half of the refined append: oracle-gated
    /// workloads (`Θ_F` consumeToken feedback) mint first, ask the oracle
    /// which mints won, and commit exactly those.
    pub fn graft_minted(&self, id: BlockId) -> Option<BlockId> {
        let valid = {
            let block = self.store.block(id);
            self.predicate.is_valid(&self.store, &block)
        };
        if !valid {
            return None;
        }
        let parent = self
            .store
            .parent(id)
            .expect("grafted blocks are not genesis");
        {
            let mut sel = self.sel.lock();
            // Opportunistically resolve any pending batch first — grafts
            // already paid for the lock, and queued appenders are parked
            // on it.
            self.drain_locked(&mut sel);
            assert!(
                sel.tree.contains(parent),
                "graft parent {parent} not committed to the tree"
            );
            self.insert_locked(&mut sel, id);
            self.publish_locked(&mut sel);
        }
        self.maybe_reclaim();
        Some(id)
    }

    /// Amortized reclamation: sweep only when the backlog crosses the
    /// threshold (callers outside the hot path may always call
    /// [`EpochDomain::try_reclaim`] directly via [`epochs`](Self::epochs)).
    fn maybe_reclaim(&self) {
        if self.epochs.pending_items() >= RECLAIM_PENDING_THRESHOLD {
            self.epochs.try_reclaim();
        }
    }

    /// Whether `id` has been committed to the tree membership (not merely
    /// minted into the arena). Takes the selection lock.
    pub fn is_committed(&self, id: BlockId) -> bool {
        self.sel.lock().tree.contains(id)
    }

    /// Decide-path hook: blocks until `id` is committed to the membership
    /// or `deadline` passes; returns whether it committed. Membership is
    /// never retracted, so a `true` stays true.
    ///
    /// This is how a decide orders itself after the winner's graft
    /// (Protocol A's graft-before-decide): a process that learned a block
    /// through a side channel — the oracle's `K`-set feedback — must not
    /// act on it before the block's committer has grafted it. Polls with
    /// `yield_now`; the caller owns the stall diagnostic (the commit is
    /// another thread's obligation, so only the caller knows who wedged).
    ///
    /// The hot probe is lock-free: a chain block sits at the index equal
    /// to its height in the published prefix, and commits publish inside
    /// the same critical section as their insert, so most waits resolve
    /// off one epoch-pinned `read()`. The selection mutex — which answers
    /// for members *off* the selected chain too — is consulted only every
    /// 64th spin, so a pack of waiters does not convoy the very lock the
    /// committer needs for the graft.
    pub fn wait_committed(&self, id: BlockId, deadline: std::time::Instant) -> bool {
        let height = self.store.meta(id).height as usize;
        let mut spin = 0u32;
        loop {
            if self.read().ids().get(height) == Some(&id) {
                return true;
            }
            if spin.is_multiple_of(64) && self.is_committed(id) {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return self.is_committed(id);
            }
            spin = spin.wrapping_add(1);
            std::thread::yield_now();
        }
    }

    /// Resolves every queued commit request as one batch: per request a
    /// membership insert + incremental re-selection (re-minting under the
    /// authoritative tip if the optimistic parent went stale), then a
    /// single publication, then the responses. Statuses are stored only
    /// after the publication swap — publish-before-respond holds for
    /// every append in the batch.
    fn drain_locked(&self, sel: &mut SelState) {
        let batch = self.queue.take_all();
        if batch.is_empty() {
            return;
        }
        // `take_all` removed these requests from the queue, so nobody
        // else can ever resolve them — this drainer owes every one a
        // status, on the panic path included. A committing request
        // records its outcome *before* its membership insert runs, and
        // the insert updates membership + commit log *before* the
        // user-code re-selection stage, so whatever panics inside user
        // code (`P::is_valid`, `SelectionFn::on_insert`), the recorded
        // outcomes always match the state the membership and commit log
        // actually reached.
        fn resolve_batch(batch: &[*const CommitReq], outcomes: &[Option<BlockId>]) {
            for (i, &req_ptr) in batch.iter().enumerate() {
                // SAFETY: owners are still polling (they only return
                // once a status lands), and only this drainer holds the
                // taken nodes; after `resolve` the node is never touched
                // again by this thread.
                let req = unsafe { &*req_ptr };
                if req.poll().is_none() {
                    req.resolve(outcomes.get(i).copied().flatten());
                }
            }
        }
        let mut outcomes: Vec<Option<BlockId>> = Vec::new();
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut committed_any = false;
            for &req_ptr in &batch {
                // SAFETY: `take_all` transferred ownership of the node;
                // its enqueueing appender is blocked polling until we
                // resolve it.
                let req = unsafe { &*req_ptr };
                let outcome = if req.parent == sel.cache.tip() {
                    if req.prevalidated {
                        outcomes.push(Some(req.minted));
                        self.insert_locked(sel, req.minted);
                        Some(req.minted)
                    } else {
                        outcomes.push(None);
                        None
                    }
                } else {
                    // The optimistic parent lost the race: re-mint under
                    // the current selected tip and decide against the
                    // tree state at this — the linearization — point. The
                    // stale mint stays an orphan, as a lost optimistic
                    // race always did.
                    let id = self.store.mint(
                        sel.cache.tip(),
                        req.candidate.producer,
                        req.candidate.merit_index,
                        req.candidate.work,
                        req.candidate.nonce,
                        req.candidate.payload.clone(),
                    );
                    let valid = {
                        let block = self.store.block(id);
                        self.predicate.is_valid(&self.store, &block)
                    };
                    if valid {
                        outcomes.push(Some(id));
                        self.insert_locked(sel, id);
                        Some(id)
                    } else {
                        outcomes.push(None);
                        None
                    }
                };
                committed_any |= outcome.is_some();
            }
            committed_any
        }));
        match run {
            Ok(committed_any) => {
                if committed_any {
                    self.publish_locked(sel);
                }
                // Statuses land only now, after the publication swap:
                // publish-before-respond for every append in the batch.
                resolve_batch(&batch, &outcomes);
            }
            Err(payload) => {
                // User code panicked mid-batch. Membership and commit log
                // are sound (see above), but the incremental cache may be
                // mid-update and the batch publication has not run —
                // delivering a "committed" status now would hand a
                // healthy appender a response no read can corroborate,
                // breaking publish-before-respond. Re-derive the cache
                // from the membership with a full scan and publish, so
                // every status the unwind delivers is covered by a
                // publication; this also leaves the tree consistent for
                // subsequent drains instead of degraded. The rebuild runs
                // selection user code again, so it is shielded: if it
                // panics too, publication is skipped and responses fall
                // back to matching only the commit log (a tree whose
                // selection panics nondeterministically offers nothing
                // stronger). Then resolve the batch — recorded outcomes,
                // untouched tail as rejected — and let the panic continue
                // on this thread; nobody waits forever.
                if outcomes.iter().any(Option::is_some) {
                    let rebuilt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        sel.cache.rebuild(&self.selection, &self.store, &sel.tree);
                    }))
                    .is_ok();
                    if rebuilt {
                        self.publish_locked(sel);
                    }
                }
                resolve_batch(&batch, &outcomes);
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Membership insert + commit log + incremental re-selection, under
    /// the selection lock. Publication is separate so a batch pays it
    /// once.
    fn insert_locked(&self, sel: &mut SelState, id: BlockId) {
        sel.tree.insert(&self.store, id);
        sel.commit_log.push(id);
        sel.cache
            .on_insert(&self.selection, &self.store, &sel.tree, id);
    }

    /// Publishes the cached chain: box, swap, retire the predecessor into
    /// the epoch domain (readers may still hold it through stale loads).
    fn publish_locked(&self, sel: &mut SelState) {
        let fresh = Box::into_raw(Box::new(sel.cache.chain()));
        let old = self.published.swap(fresh, Ordering::AcqRel);
        self.published_tip
            .store(sel.cache.tip().0, Ordering::Release);
        // SAFETY: `old` came from `Box::into_raw` in `with_shards` or a
        // previous publication; reconstituting the box moves ownership
        // into the epoch domain, which frees it only after every reader
        // pinned at (or before) the swap has unpinned.
        let old = unsafe { Box::from_raw(old) };
        let bytes = old.approx_heap_bytes();
        self.epochs.retire(bytes, old);
    }

    /// Number of committed blocks (including genesis).
    pub fn len(&self) -> usize {
        self.sel.lock().tree.len()
    }

    /// Whether the tree holds no blocks — always `false` in practice (a
    /// committed tree contains at least `b0`), but answered from the
    /// membership rather than hardcoded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sharded arena (all minted blocks, including orphaned and
    /// `P`-rejected mints).
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// The selection function `f`.
    pub fn selection(&self) -> &F {
        &self.selection
    }

    /// The validity predicate `P`.
    pub fn predicate(&self) -> &P {
        &self.predicate
    }

    /// The epoch-reclamation domain guarding published snapshots —
    /// exposed for observability (`retired_bytes_peak`, pending garbage)
    /// and the churn stress tests.
    pub fn epochs(&self) -> &EpochDomain {
        &self.epochs
    }

    /// Commit-pipeline counters (batch count, batched appends, largest
    /// batch).
    pub fn pipeline_stats(&self) -> PipelineStats {
        self.queue.stats()
    }

    /// The membership commit order so far (parent-closed). Takes the
    /// selection lock.
    pub fn commit_log(&self) -> Vec<BlockId> {
        self.sel.lock().commit_log.clone()
    }

    /// The tip re-derived by the full Def. 3.1 rescan over the committed
    /// membership — the specification oracle for differential checks.
    /// Takes the selection lock.
    pub fn selected_tip_full_scan(&self) -> BlockId {
        let sel = self.sel.lock();
        self.selection.select_tip(&self.store, &sel.tree)
    }

    /// Sequential snapshot of the arena (see [`ShardedStore::snapshot`];
    /// requires quiescence).
    pub fn snapshot_store(&self) -> BlockStore {
        self.store.snapshot()
    }
}

impl<F: SelectionFn, P: ValidityPredicate> Drop for ConcurrentBlockTree<F, P> {
    fn drop(&mut self) {
        let p = self.published.swap(std::ptr::null_mut(), Ordering::AcqRel);
        // SAFETY: the current publication is the one outstanding leaked
        // box (every predecessor was retired into the epoch domain, which
        // drops after this body and frees them); no reader can be alive,
        // since readers borrow `self`.
        drop(unsafe { Box::from_raw(p) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcessId;
    use crate::selection::{Ghost, HeaviestWork, LongestChain};
    use crate::validity::{AcceptAll, DigestPrefix};

    #[test]
    fn sharded_mint_matches_blockstore() {
        // The same mint sequence must produce identical ids, digests,
        // heights, jumps, and cumulative work in both stores.
        let sharded = ShardedStore::with_shards(4);
        let mut seq = BlockStore::new();
        let mut prev = BlockId::GENESIS;
        for i in 0..40u64 {
            let parent = if i % 5 == 0 { BlockId::GENESIS } else { prev };
            let a = sharded.mint(parent, ProcessId(0), 0, 1 + i % 3, i, Payload::Empty);
            let b = seq.mint(parent, ProcessId(0), 0, 1 + i % 3, i, Payload::Empty);
            assert_eq!(a, b);
            assert_eq!(sharded.meta(a), seq.meta(a), "block {i}");
            prev = a;
        }
        assert_eq!(sharded.block_count(), seq.block_count());
        for i in 0..seq.block_count() as u32 {
            let id = BlockId(i);
            let mut sh_kids = Vec::new();
            sharded.for_each_child(id, &mut |c| sh_kids.push(c));
            assert_eq!(sh_kids.as_slice(), seq.children(id));
        }
    }

    #[test]
    fn sharded_ancestry_queries_agree_with_sequential() {
        let sharded = ShardedStore::new();
        let mut prev = BlockId::GENESIS;
        let mut ids = vec![prev];
        for i in 0..64u64 {
            prev = sharded.mint(prev, ProcessId(0), 0, 1, i, Payload::Empty);
            ids.push(prev);
        }
        let snap = sharded.snapshot();
        for h in [0u32, 1, 13, 40, 63] {
            assert_eq!(sharded.ancestor_at(prev, h), ids[h as usize]);
            assert_eq!(sharded.ancestor_at(prev, h), snap.ancestor_at(prev, h));
        }
        assert!(sharded.is_ancestor(ids[10], ids[50]));
        assert!(!sharded.is_ancestor(ids[50], ids[10]));
        let fork = sharded.mint(ids[20], ProcessId(1), 1, 1, 99, Payload::Empty);
        assert_eq!(sharded.common_ancestor(fork, prev), ids[20]);
    }

    #[test]
    fn incremental_snapshot_tracks_growth() {
        let sharded = ShardedStore::with_shards(4);
        let mut cache = SnapshotCache::new();
        assert_eq!(sharded.refresh_snapshot(&mut cache), 0, "genesis only");
        let mut prev = BlockId::GENESIS;
        for i in 0..10u64 {
            prev = sharded.mint(prev, ProcessId(0), 0, 1, i, Payload::Empty);
        }
        assert_eq!(sharded.refresh_snapshot(&mut cache), 10);
        assert_eq!(cache.len(), 11);
        // No writes since the last refresh: the generation gate skips.
        assert_eq!(sharded.refresh_snapshot(&mut cache), 0);
        for i in 10..15u64 {
            prev = sharded.mint(prev, ProcessId(0), 0, 1, i, Payload::Empty);
        }
        assert_eq!(sharded.refresh_snapshot(&mut cache), 5);
        for i in 0..cache.len() as u32 {
            assert_eq!(cache.store().meta(BlockId(i)), sharded.meta(BlockId(i)));
        }
    }

    #[test]
    fn live_snapshot_mid_workload_is_parent_closed_and_consistent() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        std::thread::scope(|s| {
            for t in 0..3u32 {
                let bt = &bt;
                s.spawn(move || {
                    for i in 0..60u64 {
                        bt.append(CandidateBlock::simple(ProcessId(t), (t as u64) << 32 | i));
                    }
                });
            }
            // Snapshot the tree while the appenders are running: every
            // refreshed prefix must be internally consistent.
            let bt = &bt;
            s.spawn(move || {
                let mut cache = SnapshotCache::new();
                for _ in 0..40 {
                    bt.store().refresh_snapshot(&mut cache);
                    let snap = cache.store();
                    for id in 1..snap.len() as u32 {
                        let meta = snap.meta(BlockId(id));
                        let parent = meta.parent.expect("non-genesis");
                        assert!(parent.0 < id, "parents precede children in id order");
                        assert_eq!(meta.height, snap.meta(parent).height + 1);
                        assert_eq!(meta, bt.store().meta(BlockId(id)), "meta agrees live");
                    }
                    std::thread::yield_now();
                }
            });
        });
        // After quiescence the same cache converges to the full snapshot.
        let mut cache = SnapshotCache::new();
        bt.store().refresh_snapshot(&mut cache);
        assert_eq!(cache.len(), bt.store().block_count());
    }

    #[test]
    fn fresh_tree_reads_genesis() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        assert_eq!(bt.read(), Blockchain::genesis());
        assert_eq!(bt.read_owned(), Blockchain::genesis());
        assert_eq!(bt.selected_tip(), BlockId::GENESIS);
        assert_eq!(bt.len(), 1);
    }

    #[test]
    fn sequential_appends_extend_the_chain() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        for i in 0..10 {
            assert!(bt.append(CandidateBlock::simple(ProcessId(0), i)).is_some());
        }
        assert_eq!(bt.read().len(), 11);
        assert_eq!(bt.len(), 11);
        assert_eq!(bt.selected_tip(), bt.selected_tip_full_scan());
    }

    #[test]
    fn rejected_append_leaves_tree_unchanged() {
        let bt = ConcurrentBlockTree::new(LongestChain, DigestPrefix { zero_bits: 64 });
        assert!(bt.append(CandidateBlock::simple(ProcessId(0), 1)).is_none());
        assert_eq!(bt.read(), Blockchain::genesis());
        assert_eq!(bt.len(), 1);
        // The rejected mint still occupies an arena slot, as on BlockTree.
        assert_eq!(bt.store().block_count(), 2);
    }

    #[test]
    fn graft_builds_forks_and_reorgs() {
        let bt = ConcurrentBlockTree::new(HeaviestWork, AcceptAll);
        let a = bt
            .graft(BlockId::GENESIS, CandidateBlock::simple(ProcessId(0), 1))
            .unwrap();
        let _a2 = bt
            .graft(a, CandidateBlock::simple(ProcessId(0), 2))
            .unwrap();
        let heavy = bt
            .graft(
                BlockId::GENESIS,
                CandidateBlock::simple(ProcessId(1), 3).with_work(10),
            )
            .unwrap();
        assert_eq!(bt.selected_tip(), heavy, "work 10 beats work 2");
        assert_eq!(bt.read().ids(), &[BlockId::GENESIS, heavy]);
    }

    #[test]
    fn held_views_and_owned_snapshots_survive_later_appends() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        bt.append(CandidateBlock::simple(ProcessId(0), 1)).unwrap();
        let view = bt.read(); // borrowed: parks an epoch pin
        let snap = bt.read_owned(); // owned: refcounted, pin released
        for i in 2..20 {
            bt.append(CandidateBlock::simple(ProcessId(0), i)).unwrap();
        }
        // The borrowed view still sees the chain it pinned — the epoch
        // guard kept the retired box alive across 18 publications.
        assert_eq!(view.len(), 2, "pinned view is immutable");
        assert_eq!(snap.len(), 2, "owned snapshot is immutable");
        assert!(view.is_prefix_of(&bt.read_owned()));
        assert!(snap.is_prefix_of(&bt.read_owned()));
        drop(view);
        assert_eq!(bt.read().len(), 20);
    }

    #[test]
    fn retired_snapshots_are_reclaimed_after_readers_pass() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        for i in 0..200 {
            bt.append(CandidateBlock::simple(ProcessId(0), i)).unwrap();
            // Reads come and go: no pin outlives an iteration.
            assert_eq!(bt.read().len() as u64, i + 2);
        }
        // 200 publications retired 200 boxes; with no reader parked, the
        // threshold-triggered sweeps must have kept the backlog near the
        // reclaim threshold, not at the commit count.
        assert!(
            bt.epochs().pending_items() <= 2 * RECLAIM_PENDING_THRESHOLD,
            "pending garbage stays bounded: {} items",
            bt.epochs().pending_items()
        );
        assert!(bt.epochs().reclaimed_items() >= 100);
    }

    #[test]
    fn concurrent_appenders_commit_every_block_exactly_once() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        let per_thread = 50u64;
        let threads = 4u32;
        std::thread::scope(|s| {
            for t in 0..threads {
                let bt = &bt;
                s.spawn(move || {
                    for i in 0..per_thread {
                        let nonce = (t as u64) << 32 | i;
                        assert!(bt
                            .append(CandidateBlock::simple(ProcessId(t), nonce))
                            .is_some());
                    }
                });
            }
        });
        let expected = (threads as u64 * per_thread) as usize + 1;
        assert_eq!(bt.len(), expected, "every append committed");
        // Longest-chain appends always extend the tip: a single path.
        assert_eq!(bt.read().len(), expected);
        assert_eq!(bt.selected_tip(), bt.selected_tip_full_scan());
        let log = bt.commit_log();
        assert_eq!(log.len(), expected - 1);
        let mut sorted = log.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), log.len(), "no double commits");
        // The staged pipeline resolved every append through the queue.
        let stats = bt.pipeline_stats();
        assert_eq!(stats.batched_appends, (threads as u64) * per_thread);
        assert!(stats.batches >= 1 && stats.batches <= stats.batched_appends);
        assert!(stats.max_batch >= 1);
    }

    #[test]
    fn concurrent_readers_observe_monotone_prefix_chains() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let bt = &bt;
                s.spawn(move || {
                    let mut last = bt.read_owned();
                    for _ in 0..400 {
                        let now = bt.read();
                        assert!(
                            last.is_prefix_of(&now),
                            "longest-chain published reads grow monotonically"
                        );
                        last = now.to_owned();
                    }
                });
            }
            let bt = &bt;
            s.spawn(move || {
                for i in 0..200 {
                    bt.append(CandidateBlock::simple(ProcessId(0), i)).unwrap();
                }
            });
        });
        assert_eq!(bt.read().len(), 201);
    }

    #[test]
    fn concurrent_ghost_grafts_agree_with_full_scan() {
        let bt = ConcurrentBlockTree::new(Ghost::default(), AcceptAll);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let bt = &bt;
                s.spawn(move || {
                    for i in 0..30u64 {
                        // Fork off a block of the current chain at a
                        // pseudo-random depth — real reorg pressure.
                        let chain = bt.read();
                        let ids = chain.ids();
                        let r = crate::ids::splitmix64_at((t as u64) << 8, i);
                        let parent = ids[(r as usize) % ids.len()];
                        drop(chain);
                        bt.graft(
                            parent,
                            CandidateBlock::simple(ProcessId(t), (t as u64) << 32 | i),
                        );
                    }
                });
            }
        });
        assert_eq!(bt.len(), 121);
        assert_eq!(bt.selected_tip(), bt.selected_tip_full_scan());
        // And the snapshot replays to the same selection.
        let snap = bt.snapshot_store();
        let mut tree = TreeMembership::genesis_only();
        for id in bt.commit_log() {
            tree.insert(&snap, id);
        }
        assert_eq!(Ghost::default().select_tip(&snap, &tree), bt.selected_tip());
    }

    /// A selection rule that panics on its nth membership insert —
    /// injected user-code failure inside the drain's critical section.
    struct PanicOnInsert {
        at: u32,
        seen: std::sync::atomic::AtomicU32,
    }

    impl crate::selection::SelectionFn for PanicOnInsert {
        fn select_tip(
            &self,
            store: &dyn crate::store::BlockView,
            tree: &TreeMembership,
        ) -> BlockId {
            LongestChain.select_tip(store, tree)
        }

        fn on_insert(
            &self,
            store: &dyn crate::store::BlockView,
            tree: &TreeMembership,
            aux: &mut crate::selection::SelectionAux,
            new_block: BlockId,
            current_tip: BlockId,
        ) -> crate::selection::TipUpdate {
            if self.seen.fetch_add(1, Ordering::SeqCst) + 1 == self.at {
                panic!("injected selection panic");
            }
            LongestChain.on_insert(store, tree, aux, new_block, current_tip)
        }

        fn name(&self) -> &'static str {
            "panic-on-insert"
        }
    }

    /// A panic in user code inside the batch drain must kill only the
    /// draining thread: every other appender whose request was already
    /// taken off the queue gets resolved by the unwind path — recorded
    /// outcomes (covered by the recovery publication) or rejected —
    /// instead of spinning forever. Completion of this test is half the
    /// assertion (before the unwind handling, the non-panicking threads
    /// hung); the read-after-response check inside the appenders is the
    /// other half.
    #[test]
    fn drainer_panic_resolves_the_batch_instead_of_hanging() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let bt = ConcurrentBlockTree::new(
            PanicOnInsert {
                at: 5,
                seen: std::sync::atomic::AtomicU32::new(0),
            },
            AcceptAll,
        );
        let mut reported: Vec<BlockId> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3u32)
                .map(|t| {
                    let bt = &bt;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        for i in 0..4u64 {
                            // The injected panic (and, in debug builds, the
                            // cache-divergence asserts that follow it) stay
                            // on whichever thread drains — catch and move on.
                            let r = catch_unwind(AssertUnwindSafe(|| {
                                bt.append(CandidateBlock::simple(
                                    ProcessId(t),
                                    (t as u64) << 32 | i,
                                ))
                            }));
                            if let Ok(Some(id)) = r {
                                // Publish-before-respond must survive the
                                // panic path: a committed response, even
                                // one delivered by the drainer's unwind
                                // recovery, is covered by a publication
                                // (longest-chain commits here form one
                                // growing path, so later publications
                                // only extend it).
                                assert!(
                                    bt.read().ids().contains(&id),
                                    "append responded committed but the \
                                     published chain lacks {id}"
                                );
                                mine.push(id);
                            }
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                reported.extend(h.join().expect("appender threads terminate"));
            }
        });
        // Every append call terminated (returned or panicked in place);
        // the pre-panic commits went through, and every id an append
        // *reported* as committed really is in the commit log — even the
        // ones whose statuses the unwind path delivered.
        assert!(bt.len() >= 4, "pre-panic commits landed: {}", bt.len());
        let log: std::collections::HashSet<_> = bt.commit_log().into_iter().collect();
        for id in reported {
            assert!(log.contains(&id), "reported-committed {id} not in log");
        }
    }

    #[test]
    fn snapshot_reproduces_the_arena() {
        let bt = ConcurrentBlockTree::new(LongestChain, AcceptAll);
        for i in 0..12 {
            if i % 3 == 0 {
                bt.graft(
                    BlockId::GENESIS,
                    CandidateBlock::simple(ProcessId(1), 100 + i),
                );
            } else {
                bt.append(CandidateBlock::simple(ProcessId(0), i));
            }
        }
        let snap = bt.snapshot_store();
        assert_eq!(snap.block_count(), bt.store().block_count());
        for i in 0..snap.block_count() as u32 {
            assert_eq!(snap.meta(BlockId(i)), bt.store().meta(BlockId(i)));
        }
    }
}
