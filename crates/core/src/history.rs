//! Concurrent histories `H = ⟨Σ, E, Λ, ↦→, ≺, ր⟩` (Def. 2.4).
//!
//! A history is the record of a program's ADT operations: a countable event
//! set `E` holding every invocation and response, labelled by `Λ` with
//! operations in `Σ`, with three orders:
//!
//! * `↦→` — *process order*: events of the same (sequential) process;
//! * `≺` — *operation order*: the invocation of an operation precedes its
//!   response, and a response at global time `t` precedes every invocation
//!   occurring at `t' > t`;
//! * `ր` — *program order*: the transitive closure of `↦→ ∪ ≺`.
//!
//! Events carry timestamps of the *fictional global clock* (§4.2) that
//! processes cannot read; the clock exists precisely so histories can state
//! `≺`. With such timestamps, `e ր e'` between events of the paper's
//! relevant shapes reduces to timestamp comparison (same-process events are
//! clock-ordered too), which is how [`History`] evaluates the orders.
//!
//! Operations are recorded as invocation/response *pairs* ([`OpRecord`]);
//! pending operations simply lack the response half. Well-formedness
//! (sequential processes ⇒ non-overlapping operations per process) is
//! checkable via [`History::validate`].

use crate::chain::Blockchain;
use crate::ids::{BlockId, ProcessId, Time};
use crate::score::ScoreFn;
use std::fmt;

/// Identifier of an operation inside one [`History`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

impl fmt::Debug for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Invocation labels: the `A` part of `Σ` for the BT-ADT.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Invocation {
    /// `append(b)` — the block is identified globally; validity and token
    /// bookkeeping live with the store/oracle.
    Append { block: BlockId },
    /// `read()`
    Read,
    /// `propose(b)` of Protocol A (Fig. 11) run against the shared tree:
    /// the proposal is identified by its candidate nonce (the block id is
    /// only allocated if the proposer reaches its mint — see
    /// [`Response::Decided`]).
    Propose { nonce: u64 },
}

/// Response labels: the `B` part of `Σ` for the BT-ADT.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Outcome of `append` (`true` iff the block entered the tree).
    Appended(bool),
    /// The blockchain returned by `read`.
    Chain(Blockchain),
    /// The decision of a `propose`: the block installed in `K[anchor]`.
    /// `grafted` is true for exactly the propose whose own mint the oracle
    /// admitted — that operation committed the block to the tree (via
    /// graft) before anyone decided it, so it replays as the append of
    /// the sequential word; every other propose replays as a decide of an
    /// already-committed block (graft-before-decide).
    Decided { block: BlockId, grafted: bool },
}

/// One operation: an invocation event and (if completed) a response event.
#[derive(Clone, Debug)]
pub struct OpRecord {
    pub id: OpId,
    pub process: ProcessId,
    pub invocation: Invocation,
    pub invoked_at: Time,
    pub response: Option<Response>,
    pub responded_at: Option<Time>,
}

impl OpRecord {
    pub fn is_read(&self) -> bool {
        matches!(self.invocation, Invocation::Read)
    }

    pub fn is_append(&self) -> bool {
        matches!(self.invocation, Invocation::Append { .. })
    }

    pub fn is_propose(&self) -> bool {
        matches!(self.invocation, Invocation::Propose { .. })
    }

    pub fn is_complete(&self) -> bool {
        self.response.is_some()
    }
}

/// Ill-formedness diagnoses from [`History::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HistoryError {
    /// Response recorded at or before its own invocation.
    ResponseBeforeInvocation(OpId),
    /// Two operations of one (sequential) process overlap in time.
    OverlappingOps(OpId, OpId),
    /// Response value shape does not match the invocation kind.
    MismatchedResponse(OpId),
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::ResponseBeforeInvocation(op) => {
                write!(f, "{op:?}: response not after invocation")
            }
            HistoryError::OverlappingOps(a, b) => {
                write!(f, "{a:?} and {b:?} overlap at the same sequential process")
            }
            HistoryError::MismatchedResponse(op) => {
                write!(f, "{op:?}: response shape does not match invocation")
            }
        }
    }
}

impl std::error::Error for HistoryError {}

/// A recorded concurrent history.
#[derive(Clone, Debug, Default)]
pub struct History {
    ops: Vec<OpRecord>,
}

impl History {
    pub fn new() -> Self {
        History { ops: Vec::new() }
    }

    /// Records a complete operation; returns its id.
    pub fn push_complete(
        &mut self,
        process: ProcessId,
        invocation: Invocation,
        invoked_at: Time,
        response: Response,
        responded_at: Time,
    ) -> OpId {
        let id = OpId(self.ops.len() as u32);
        self.ops.push(OpRecord {
            id,
            process,
            invocation,
            invoked_at,
            response: Some(response),
            responded_at: Some(responded_at),
        });
        id
    }

    /// Records a pending invocation (no response yet).
    pub fn push_invocation(
        &mut self,
        process: ProcessId,
        invocation: Invocation,
        invoked_at: Time,
    ) -> OpId {
        let id = OpId(self.ops.len() as u32);
        self.ops.push(OpRecord {
            id,
            process,
            invocation,
            invoked_at,
            response: None,
            responded_at: None,
        });
        id
    }

    /// Completes a pending operation.
    pub fn complete(&mut self, id: OpId, response: Response, responded_at: Time) {
        let op = &mut self.ops[id.0 as usize];
        debug_assert!(op.response.is_none(), "{id:?} completed twice");
        op.response = Some(response);
        op.responded_at = Some(responded_at);
    }

    /// All operations, in recording order.
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    pub fn get(&self, id: OpId) -> &OpRecord {
        &self.ops[id.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Completed `read()` operations, in recording order.
    pub fn reads(&self) -> impl Iterator<Item = &OpRecord> {
        self.ops
            .iter()
            .filter(|op| op.is_read() && op.is_complete())
    }

    /// All `append` operations (complete or pending: Block-validity only
    /// needs the *invocation* event, Def. 3.2).
    pub fn appends(&self) -> impl Iterator<Item = &OpRecord> {
        self.ops.iter().filter(|op| op.is_append())
    }

    /// Number of append invocations — distinguishes `E(a, r*)` (finite
    /// appends) workloads from `E(a*, r*)` ones.
    pub fn append_count(&self) -> usize {
        self.appends().count()
    }

    /// All `propose` operations (complete or pending), in recording order.
    pub fn proposes(&self) -> impl Iterator<Item = &OpRecord> {
        self.ops.iter().filter(|op| op.is_propose())
    }

    /// The decided blocks of the completed proposes, in recording order —
    /// Agreement (Def. 4.1) over one consensus instance is "this iterator
    /// is constant".
    pub fn decisions(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.ops.iter().filter_map(|op| match op.response {
            Some(Response::Decided { block, .. }) => Some(block),
            _ => None,
        })
    }

    /// Process order `↦→`: both events at the same process, `a` first.
    /// Evaluated on completed operations via their clock interval.
    pub fn process_ordered(&self, a: OpId, b: OpId) -> bool {
        let (oa, ob) = (self.get(a), self.get(b));
        oa.process == ob.process
            && match (oa.responded_at, Some(ob.invoked_at)) {
                (Some(ra), Some(ib)) => ra <= ib,
                _ => false,
            }
    }

    /// Operation order `≺` between whole operations: `a`'s response precedes
    /// `b`'s invocation on the global clock ("returns-before").
    pub fn returns_before(&self, a: OpId, b: OpId) -> bool {
        match (self.get(a).responded_at, Some(self.get(b).invoked_at)) {
            (Some(ra), Some(ib)) => ra < ib,
            _ => false,
        }
    }

    /// Program order `ր` (union of the two, which timestamped events make
    /// transitive already).
    pub fn program_ordered(&self, a: OpId, b: OpId) -> bool {
        self.process_ordered(a, b) || self.returns_before(a, b)
    }

    /// `einv(append(b)) ր ersp(r)` as needed by Block Validity: the append
    /// *invocation* precedes the read *response* on the global clock.
    pub fn append_invoked_before_response_of(&self, append: OpId, read: OpId) -> bool {
        match self.get(read).responded_at {
            Some(rr) => self.get(append).invoked_at < rr,
            None => false,
        }
    }

    /// Checks well-formedness; returns every diagnosis found.
    pub fn validate(&self) -> Vec<HistoryError> {
        let mut errs = Vec::new();
        for op in &self.ops {
            if let (Some(r), i) = (op.responded_at, op.invoked_at) {
                if r <= i {
                    errs.push(HistoryError::ResponseBeforeInvocation(op.id));
                }
            }
            match (&op.invocation, &op.response) {
                (Invocation::Read, Some(Response::Chain(_)))
                | (Invocation::Append { .. }, Some(Response::Appended(_)))
                | (Invocation::Propose { .. }, Some(Response::Decided { .. }))
                | (_, None) => {}
                _ => errs.push(HistoryError::MismatchedResponse(op.id)),
            }
        }
        // Per-process overlap check.
        let mut by_proc: Vec<&OpRecord> = self.ops.iter().collect();
        by_proc.sort_by_key(|op| (op.process, op.invoked_at));
        for w in by_proc.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a.process == b.process {
                let a_end = a.responded_at.unwrap_or(Time(u64::MAX));
                if b.invoked_at < a_end {
                    errs.push(HistoryError::OverlappingOps(a.id, b.id));
                }
            }
        }
        errs
    }

    /// Splits this history at *quiescent points* — instants where no
    /// operation is in flight — into sub-histories of at most `max_ops`
    /// operations each (as close to `max_ops` as the quiescent structure
    /// allows: cuts are only ever placed at quiescent points, so a span
    /// with no internal quiescent point stays one window even when it
    /// exceeds `max_ops`).
    ///
    /// Every operation before a cut returns-before every operation after
    /// it, so per-window checking (e.g.
    /// [`check_linearizable`](crate::linearizability::check_linearizable)
    /// seeded with the committed prefix state) loses nothing: a long
    /// concurrent run need not come back as `TooLarge { .. }`.
    ///
    /// A pending operation never completes, so no quiescent point exists
    /// after its invocation: everything from there on lands in one final
    /// window. Operations are renumbered from [`OpId`] 0 inside each
    /// window, in invocation order; timestamps, processes, and responses
    /// are preserved.
    pub fn split_at_quiescence(&self, max_ops: usize) -> Vec<History> {
        assert!(max_ops >= 1, "windows must hold at least one operation");
        let all: Vec<&OpRecord> = self.ops.iter().collect();
        let segments = quiescent_segments(&all);

        // Greedily merge adjacent segments while they fit the cap, so the
        // result is "checkable windows", not one window per gap.
        let mut windows: Vec<Vec<&OpRecord>> = Vec::new();
        for seg in segments {
            match windows.last_mut() {
                Some(last) if last.len() + seg.len() <= max_ops => last.extend(seg),
                _ => windows.push(seg),
            }
        }

        windows
            .into_iter()
            .map(|ops| {
                let mut h = History::new();
                for op in ops {
                    match (&op.response, op.responded_at) {
                        (Some(resp), Some(at)) => {
                            h.push_complete(
                                op.process,
                                op.invocation.clone(),
                                op.invoked_at,
                                resp.clone(),
                                at,
                            );
                        }
                        _ => {
                            h.push_invocation(op.process, op.invocation.clone(), op.invoked_at);
                        }
                    }
                }
                h
            })
            .collect()
    }

    /// Extracts the completed reads as [`ReadView`]s scored by `score`,
    /// sorted by response time (ties by op id — deterministic).
    pub fn read_views(&self, score: &dyn ScoreFn) -> Vec<ReadView> {
        let mut views: Vec<ReadView> = self
            .reads()
            .filter_map(|op| match &op.response {
                Some(Response::Chain(chain)) => Some(ReadView {
                    op: op.id,
                    process: op.process,
                    invoked_at: op.invoked_at,
                    responded_at: op.responded_at.expect("complete"),
                    score: score.score(chain),
                    chain: chain.clone(),
                }),
                _ => None,
            })
            .collect();
        views.sort_by_key(|v| (v.responded_at, v.op));
        views
    }
}

/// The shared quiescent-segmentation sweep behind
/// [`History::split_at_quiescence`] and the windowed linearizability
/// checker: sorts `ops` by invocation and cuts wherever every earlier
/// operation's response *strictly* precedes the next invocation on the
/// global clock — the same strict `<` as the returns-before order `≺`, so
/// a cut never imposes an order between operations the history leaves
/// concurrent (equal cross-process timestamps stay in one segment).
/// Pending operations never quiesce: everything after their invocation is
/// one segment.
pub(crate) fn quiescent_segments<'h>(ops: &[&'h OpRecord]) -> Vec<Vec<&'h OpRecord>> {
    let mut sorted: Vec<&OpRecord> = ops.to_vec();
    sorted.sort_by_key(|op| (op.invoked_at, op.id));
    let mut segments: Vec<Vec<&OpRecord>> = Vec::new();
    let mut segment: Vec<&OpRecord> = Vec::new();
    let mut horizon: Option<Time> = None;
    for op in sorted {
        if let Some(h) = horizon {
            if h < op.invoked_at {
                segments.push(std::mem::take(&mut segment));
                horizon = None;
            }
        }
        let resp = op.responded_at.unwrap_or(Time(u64::MAX));
        horizon = Some(horizon.map_or(resp, |h| h.max(resp)));
        segment.push(op);
    }
    if !segment.is_empty() {
        segments.push(segment);
    }
    segments
}

/// A completed read, scored: the unit the consistency criteria quantify
/// over.
#[derive(Clone, Debug)]
pub struct ReadView {
    pub op: OpId,
    pub process: ProcessId,
    pub invoked_at: Time,
    pub responded_at: Time,
    pub chain: Blockchain,
    pub score: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::LengthScore;

    fn chain(ids: &[u32]) -> Blockchain {
        Blockchain::from_ids(ids.iter().map(|&i| BlockId(i)).collect())
    }

    fn read_at(h: &mut History, p: u32, t0: u64, t1: u64, c: Blockchain) -> OpId {
        h.push_complete(
            ProcessId(p),
            Invocation::Read,
            Time(t0),
            Response::Chain(c),
            Time(t1),
        )
    }

    #[test]
    fn orders() {
        let mut h = History::new();
        let a = read_at(&mut h, 0, 0, 2, chain(&[0]));
        let b = read_at(&mut h, 0, 3, 4, chain(&[0]));
        let c = read_at(&mut h, 1, 1, 5, chain(&[0]));

        assert!(h.process_ordered(a, b));
        assert!(!h.process_ordered(b, a));
        assert!(!h.process_ordered(a, c), "different processes");

        assert!(h.returns_before(a, b));
        assert!(!h.returns_before(a, c), "c invoked before a responded");

        assert!(h.program_ordered(a, b));
        assert!(!h.program_ordered(a, c));
        assert!(!h.program_ordered(b, c));
        // c responds after b invoked: no order between b and c either way.
        assert!(!h.program_ordered(c, b));
    }

    #[test]
    fn pending_then_complete() {
        let mut h = History::new();
        let id = h.push_invocation(ProcessId(0), Invocation::Read, Time(1));
        assert!(!h.get(id).is_complete());
        assert_eq!(h.reads().count(), 0, "pending reads not yielded");
        h.complete(id, Response::Chain(chain(&[0])), Time(2));
        assert!(h.get(id).is_complete());
        assert_eq!(h.reads().count(), 1);
    }

    #[test]
    fn validate_catches_overlap() {
        let mut h = History::new();
        let a = read_at(&mut h, 0, 0, 10, chain(&[0]));
        let b = read_at(&mut h, 0, 5, 15, chain(&[0]));
        let errs = h.validate();
        assert!(errs.contains(&HistoryError::OverlappingOps(a, b)));
    }

    #[test]
    fn validate_catches_bad_interval_and_shape() {
        let mut h = History::new();
        let a = h.push_complete(
            ProcessId(0),
            Invocation::Read,
            Time(5),
            Response::Chain(chain(&[0])),
            Time(5),
        );
        let b = h.push_complete(
            ProcessId(1),
            Invocation::Read,
            Time(1),
            Response::Appended(true),
            Time(2),
        );
        let errs = h.validate();
        assert!(errs.contains(&HistoryError::ResponseBeforeInvocation(a)));
        assert!(errs.contains(&HistoryError::MismatchedResponse(b)));
    }

    #[test]
    fn clean_history_validates() {
        let mut h = History::new();
        read_at(&mut h, 0, 0, 1, chain(&[0]));
        read_at(&mut h, 0, 2, 3, chain(&[0, 1]));
        read_at(&mut h, 1, 0, 4, chain(&[0, 1]));
        h.push_complete(
            ProcessId(2),
            Invocation::Append { block: BlockId(1) },
            Time(0),
            Response::Appended(true),
            Time(1),
        );
        assert!(h.validate().is_empty());
        assert_eq!(h.append_count(), 1);
    }

    #[test]
    fn read_views_sorted_and_scored() {
        let mut h = History::new();
        read_at(&mut h, 1, 4, 9, chain(&[0, 1, 2]));
        read_at(&mut h, 0, 0, 3, chain(&[0, 1]));
        let views = h.read_views(&LengthScore);
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].responded_at, Time(3));
        assert_eq!(views[0].score, 1);
        assert_eq!(views[1].score, 2);
    }

    #[test]
    fn split_empty_history_yields_no_windows() {
        let h = History::new();
        assert!(h.split_at_quiescence(4).is_empty());
    }

    #[test]
    fn split_sequential_history_respects_cap() {
        // Six strictly sequential reads: quiescent between every pair,
        // so the greedy merge packs them into caps of 4 → windows 4 + 2.
        let mut h = History::new();
        for i in 0..6u64 {
            read_at(&mut h, 0, 10 * i, 10 * i + 1, chain(&[0]));
        }
        let windows = h.split_at_quiescence(4);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].len(), 4);
        assert_eq!(windows[1].len(), 2);
        // Timestamps and contents preserved, ids renumbered per window.
        assert_eq!(windows[1].get(OpId(0)).invoked_at, Time(40));
        for w in &windows {
            assert!(w.validate().is_empty());
        }
    }

    #[test]
    fn split_never_cuts_overlapping_ops() {
        let mut h = History::new();
        // Three mutually overlapping reads, then a gap, then one more.
        read_at(&mut h, 0, 0, 10, chain(&[0]));
        read_at(&mut h, 1, 2, 12, chain(&[0]));
        read_at(&mut h, 2, 4, 14, chain(&[0]));
        read_at(&mut h, 0, 20, 21, chain(&[0]));
        let windows = h.split_at_quiescence(1);
        // The overlapping trio is indivisible even with max_ops = 1.
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].len(), 3);
        assert_eq!(windows[1].len(), 1);
    }

    #[test]
    fn split_never_cuts_at_equal_timestamps() {
        // Response at t and another process's invocation at the same t:
        // `returns_before` is strict (`<`), so the two operations are
        // concurrent and a cut between them would impose an order the
        // history does not contain — they must share a window.
        let mut h = History::new();
        read_at(&mut h, 0, 0, 5, chain(&[0]));
        read_at(&mut h, 1, 5, 9, chain(&[0]));
        assert_eq!(h.split_at_quiescence(1).len(), 1);
        // One tick later the response strictly precedes the invocation:
        // now the cut is sound.
        let mut h = History::new();
        read_at(&mut h, 0, 0, 5, chain(&[0]));
        read_at(&mut h, 1, 6, 9, chain(&[0]));
        assert_eq!(h.split_at_quiescence(1).len(), 2);
    }

    #[test]
    fn split_recording_order_does_not_matter() {
        // Ops recorded out of invocation order still split identically.
        let mut h = History::new();
        read_at(&mut h, 1, 20, 21, chain(&[0]));
        read_at(&mut h, 0, 0, 1, chain(&[0]));
        let windows = h.split_at_quiescence(1);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].get(OpId(0)).invoked_at, Time(0));
        assert_eq!(windows[1].get(OpId(0)).invoked_at, Time(20));
    }

    #[test]
    fn split_pending_op_blocks_later_cuts() {
        let mut h = History::new();
        read_at(&mut h, 0, 0, 1, chain(&[0]));
        h.push_invocation(ProcessId(1), Invocation::Read, Time(5));
        read_at(&mut h, 0, 50, 51, chain(&[0]));
        read_at(&mut h, 0, 60, 61, chain(&[0]));
        let windows = h.split_at_quiescence(1);
        // Cut before the pending op is fine; after it, never.
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[1].len(), 3);
        assert_eq!(
            windows[1].ops().iter().filter(|o| o.is_complete()).count(),
            2
        );
    }

    #[test]
    fn propose_decide_events_record_and_validate() {
        let mut h = History::new();
        // One consensus instance: p0's mint wins, p1 decides p0's block.
        h.push_complete(
            ProcessId(0),
            Invocation::Propose { nonce: 10 },
            Time(1),
            Response::Decided {
                block: BlockId(1),
                grafted: true,
            },
            Time(4),
        );
        h.push_complete(
            ProcessId(1),
            Invocation::Propose { nonce: 11 },
            Time(2),
            Response::Decided {
                block: BlockId(1),
                grafted: false,
            },
            Time(5),
        );
        assert!(h.validate().is_empty());
        assert_eq!(h.proposes().count(), 2);
        let decisions: Vec<_> = h.decisions().collect();
        assert_eq!(decisions, vec![BlockId(1), BlockId(1)], "agreement");
        assert_eq!(h.append_count(), 0, "proposes are not appends");
    }

    #[test]
    fn validate_catches_mismatched_propose_response() {
        let mut h = History::new();
        let a = h.push_complete(
            ProcessId(0),
            Invocation::Propose { nonce: 1 },
            Time(1),
            Response::Appended(true),
            Time(2),
        );
        let b = h.push_complete(
            ProcessId(1),
            Invocation::Read,
            Time(3),
            Response::Decided {
                block: BlockId(1),
                grafted: false,
            },
            Time(4),
        );
        let errs = h.validate();
        assert!(errs.contains(&HistoryError::MismatchedResponse(a)));
        assert!(errs.contains(&HistoryError::MismatchedResponse(b)));
    }

    #[test]
    fn append_before_read_response() {
        let mut h = History::new();
        let ap = h.push_complete(
            ProcessId(0),
            Invocation::Append { block: BlockId(1) },
            Time(0),
            Response::Appended(true),
            Time(2),
        );
        let rd = read_at(&mut h, 1, 1, 5, chain(&[0, 1]));
        assert!(h.append_invoked_before_response_of(ap, rd));
        let rd_early = read_at(&mut h, 1, 6, 7, chain(&[0, 1]));
        // append invoked at 0 < 7: still ordered.
        assert!(h.append_invoked_before_response_of(ap, rd_early));
    }
}
