//! # btadt-core — the Blockchain Abstract Data Type
//!
//! Core formalization of *Blockchain Abstract Data Type* (Anceaume,
//! Del Pozzo, Ludinard, Potop-Butucaru, Tucci-Piergiovanni; poster at
//! PPoPP 2019, full version arXiv:1802.09877): the BlockTree ADT, concurrent
//! histories, the BT Strong/Eventual consistency criteria, and the
//! refinement hierarchy.
//!
//! ## Map from paper to modules
//!
//! | Paper | Module |
//! |---|---|
//! | §2.1 ADTs `⟨A,B,Z,ξ0,τ,δ⟩`, Def. 2.3 `L(T)` | [`adt`] |
//! | §2.3 concurrent histories `⟨Σ,E,Λ,↦→,≺,ր⟩` | [`history`] |
//! | §3.1 BlockTree, blocks, chains, `f`, `P`, `score` | [`blocktree`], [`block`], [`store`], [`chain`], [`selection`], [`validity`], [`score`] |
//! | §3.1.2 consistency criteria (Defs. 3.2–3.4) | [`criteria`] |
//! | §3.4 hierarchy (Figs. 8/14) | [`hierarchy`] |
//!
//! Performance-architecture modules with no direct paper counterpart:
//!
//! | Concern | Module |
//! |---|---|
//! | O(log n) ancestry/LCA (jump pointers) | [`store`] |
//! | Incremental selection (`on_insert`/`TipUpdate`) | [`selection`] |
//! | Cached selected chain, zero-rewalk `read()` | [`tipcache`] |
//! | Epoch-based reclamation (grace periods for lock-free readers) | [`epoch`] |
//! | Staged commit pipeline (batched appends) | [`commit`] |
//! | Durable commit log (segmented WAL, group-commit fsync, crash recovery) | [`wal`] |
//! | Storage-fault injection (VFS seam, deterministic power-loss model) | [`vfs`] |
//!
//! The literal Def. 3.1 semantics (full `f(bt)` rescans) remain available
//! as `select_tip` / `selected_tip_full_scan` and serve as the
//! differential-testing oracle for the incremental path.
//!
//! Token oracles (§3.2) live in the companion crate `btadt-oracle`; the
//! shared-memory results of §4.1 in `btadt-registers`; the message-passing
//! substrate of §4.2–4.4 in `btadt-sim`; the Table-1 protocol models in
//! `btadt-protocols`.
//!
//! ## Quick start
//!
//! ```
//! use btadt_core::blocktree::{BlockTree, CandidateBlock};
//! use btadt_core::selection::LongestChain;
//! use btadt_core::validity::AcceptAll;
//! use btadt_core::ids::ProcessId;
//!
//! let mut bt = BlockTree::new(LongestChain, AcceptAll);
//! assert!(bt.append(CandidateBlock::simple(ProcessId(0), 1)));
//! let chain = bt.read(); // {b0}⌢f(bt)
//! assert_eq!(chain.len(), 2);
//! ```

#![allow(rustdoc::broken_intra_doc_links)] // paper notation uses brackets

pub mod adt;
pub mod block;
pub mod blocktree;
pub mod chain;
pub mod commit;
pub mod concurrent;
pub mod criteria;
pub mod epoch;
pub mod hierarchy;
pub mod history;
pub mod ids;
pub mod linearizability;
pub mod score;
pub mod selection;
pub mod store;
pub mod sync;
pub mod tipcache;
pub mod validity;
pub mod vfs;
pub mod wal;

/// Convenient single-import surface.
pub mod prelude {
    pub use crate::adt::{check_sequential_history, AbstractDataType, Operation};
    pub use crate::block::{Block, Payload, Tx};
    pub use crate::blocktree::{BlockTree, BlockTreeAdt, BtInput, BtOutput, CandidateBlock};
    pub use crate::chain::Blockchain;
    pub use crate::commit::{FinalityWatermark, PipelineStats};
    pub use crate::concurrent::{
        ChainView, ConcurrentBlockTree, ShardedStore, SnapshotCache, DEFAULT_FINALITY_DEPTH,
    };
    pub use crate::criteria::{
        check_eventual_consistency, check_strong_consistency, classify, ConsistencyClass,
        ConsistencyParams, ConsistencyReport, LivenessMode, Verdict, Violation,
    };
    pub use crate::epoch::{EpochDomain, Guard};
    pub use crate::hierarchy::{OracleModel, RefinementClass};
    pub use crate::history::{History, Invocation, OpId, OpRecord, ReadView, Response};
    pub use crate::ids::{BlockId, ProcessId, Time};
    pub use crate::linearizability::{
        check_linearizable, check_linearizable_windowed, Linearizability,
    };
    pub use crate::score::{LengthScore, ScoreFn, WorkScore};
    pub use crate::selection::{
        Ghost, HeaviestWork, LongestChain, SelectionAux, SelectionFn, TipUpdate, TrivialProjection,
    };
    pub use crate::store::{BlockMeta, BlockStore, BlockView, TreeMembership};
    pub use crate::tipcache::ChainCache;
    pub use crate::validity::{
        AcceptAll, DigestPrefix, NoDoubleSpend, RejectAll, ValidityPredicate,
    };
    pub use crate::vfs::{FaultConfig, FaultKind, FaultRule, FaultVfs, StdVfs, TornTail, Vfs};
    pub use crate::wal::{CommitRecord, DurabilityError, Wal, WalConfig, WalStats};
}
