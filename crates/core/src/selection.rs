//! Selection functions `f ∈ F : BT → BC` (§3.1).
//!
//! A selection function picks one blockchain out of a BlockTree; the paper
//! leaves `f` generic "to suit the different blockchain implementations" and
//! names the longest-chain rule (Bitcoin), the heaviest-chain rule, GHOST
//! (Ethereum, §5.2), and the trivial projection of single-chain trees
//! (Red Belly, §5.6). All four are implemented here.
//!
//! Determinism matters: `f` is "encoded in the state and do[es] not change
//! over the computation", and ties must break identically at every replica
//! (Fig. 2 breaks length ties by "the largest based on the lexicographical
//! order"). We compare candidate chains by their digest sequences, which is
//! a total, replica-independent order.
//!
//! # Incremental contract
//!
//! `select_tip` re-evaluates `f` from scratch — the literal Def. 3.1
//! semantics, kept as the specification oracle. The hot path uses
//! [`SelectionFn::on_insert`] instead: given the tip selected *before* a
//! block joined the tree, it answers how the selection changes, in O(log n)
//! for the chain rules and O(depth of the insert) for GHOST. Callers
//! (see [`crate::tipcache::ChainCache`]) own a [`SelectionAux`] scratch
//! holding whatever per-tree state a rule maintains (GHOST: subtree
//! weights), which keeps this trait object-safe and the selection values
//! themselves stateless and shareable, as the paper requires.
//!
//! `on_insert` may assume:
//!
//! * `new_block` is a member of `tree` and was inserted *after* the call
//!   that reported `current_tip` (exactly one membership insert per call,
//!   in insertion order);
//! * `current_tip` was the rule's selected tip for the tree without
//!   `new_block` (the caller maintains this inductively, seeding it with a
//!   full `select_tip` scan);
//! * the same `aux` is threaded through every call for a given tree.

use crate::ids::BlockId;
use crate::store::{BlockView, TreeMembership};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// How the selected tip changed when one block joined the tree — the
/// result of the incremental path of a [`SelectionFn`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TipUpdate {
    /// The previously selected chain is still selected.
    Unchanged,
    /// The new tip is a child of the previous tip: the selected chain grew
    /// by exactly one block (`{b0}⌢f(bt)⌢{b}`, the common case).
    Extended(BlockId),
    /// The selection moved to a different branch (a reorg); the new tip is
    /// not a child of the previous one.
    Switched(BlockId),
}

/// Per-tree scratch state for incremental selection, owned by the caller
/// and threaded through [`SelectionFn::on_insert`]. Chain rules ignore it;
/// GHOST maintains its subtree weights here.
#[derive(Clone, Debug, Default)]
pub struct SelectionAux {
    /// GHOST: weight of the membership subtree rooted at each block
    /// (indexed by arena slot; non-members weigh 0).
    subtree_weight: Vec<u64>,
    /// Whether `subtree_weight` reflects the current tree (rules
    /// initialize lazily on first use).
    ready: bool,
    /// Chain rules: the current tip's memoized score. A block's score
    /// (height, cumulative work) is immutable, so a matching entry is
    /// never stale — this takes the per-insert tip re-scoring (a shard
    /// lock on the concurrent store) off the commit hot path.
    tip_score: Option<(BlockId, u64)>,
}

impl SelectionAux {
    /// Fresh, uninitialized scratch (rules rebuild it on first use).
    pub fn new() -> Self {
        SelectionAux::default()
    }

    /// Drops any maintained state, forcing re-initialization on next use.
    pub fn reset(&mut self) {
        self.subtree_weight.clear();
        self.ready = false;
        self.tip_score = None;
    }

    /// Whether the weight state reflects a tree (false until the first
    /// GHOST scoring pass, and again after [`reset`](Self::reset)). A cold
    /// aux rebuilds from the *current* membership on first use, so
    /// incremental folds are only meaningful once this is true.
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    #[inline]
    fn weight(&self, id: BlockId) -> u64 {
        self.subtree_weight.get(id.index()).copied().unwrap_or(0)
    }

    #[inline]
    fn add_weight(&mut self, id: BlockId, w: u64) {
        if self.subtree_weight.len() <= id.index() {
            self.subtree_weight.resize(id.index() + 1, 0);
        }
        self.subtree_weight[id.index()] += w;
    }
}

/// A rule's score contribution from one shard of a batch of inserts — the
/// unit the two-stage drain farms out per subtree and folds back together
/// with [`AuxPartial::merge`] before touching the shared [`SelectionAux`].
///
/// The representation is rule-agnostic so the merge is too:
///
/// * `weights` — GHOST-style own-weights of the inserted blocks, sorted by
///   id (duplicates summed on merge). Chain rules leave this empty.
/// * `best` — the shard's best `(score, block)` under a chain rule's total
///   order (score, then path-lexicographic). GHOST leaves this `None`.
///
/// `merge` is associative and commutative — summing multisets and taking
/// the max of a total order both are — so shards can be folded in any
/// grouping and any order and produce the same value. That is the contract
/// the drain relies on and the proptests pin down.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuxPartial {
    weights: Vec<(BlockId, u64)>,
    best: Option<(u64, BlockId)>,
}

impl AuxPartial {
    /// The empty contribution (identity of `merge`).
    pub fn empty() -> Self {
        AuxPartial::default()
    }

    /// A GHOST-style contribution: one own-weight per inserted block.
    /// Ids are sorted and deduplicated (duplicate weights summed).
    pub fn from_weights(mut weights: Vec<(BlockId, u64)>) -> Self {
        weights.sort_unstable_by_key(|&(id, _)| id);
        weights.dedup_by(|next, keep| {
            if next.0 == keep.0 {
                keep.1 += next.1;
                true
            } else {
                false
            }
        });
        AuxPartial {
            weights,
            best: None,
        }
    }

    /// A chain-rule contribution: the shard's best-scored block.
    pub fn from_best(score: u64, id: BlockId) -> Self {
        AuxPartial {
            weights: Vec::new(),
            best: Some((score, id)),
        }
    }

    /// Whether this partial carries no contribution at all.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty() && self.best.is_none()
    }

    /// The inserted-block weights, sorted by id.
    pub fn weights(&self) -> &[(BlockId, u64)] {
        &self.weights
    }

    /// The chain-rule best entry, if any, as `(score, block)`.
    pub fn best(&self) -> Option<(u64, BlockId)> {
        self.best
    }

    /// Folds `other` into `self`. Associative and commutative: `weights`
    /// merge as a sorted multiset sum, `best` as the max under the rule's
    /// total order — score first, then the deterministic path-lexicographic
    /// tie-break every rule already uses, so equal-score shards resolve
    /// identically regardless of merge order.
    pub fn merge(mut self, store: &dyn BlockView, other: AuxPartial) -> AuxPartial {
        if !other.weights.is_empty() {
            if self.weights.is_empty() {
                self.weights = other.weights;
            } else {
                let a = std::mem::take(&mut self.weights);
                let mut merged = Vec::with_capacity(a.len() + other.weights.len());
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < other.weights.len() {
                    match a[i].0.cmp(&other.weights[j].0) {
                        Ordering::Less => {
                            merged.push(a[i]);
                            i += 1;
                        }
                        Ordering::Greater => {
                            merged.push(other.weights[j]);
                            j += 1;
                        }
                        Ordering::Equal => {
                            merged.push((a[i].0, a[i].1 + other.weights[j].1));
                            i += 1;
                            j += 1;
                        }
                    }
                }
                merged.extend_from_slice(&a[i..]);
                merged.extend_from_slice(&other.weights[j..]);
                self.weights = merged;
            }
        }
        self.best = match (self.best, other.best) {
            (a, None) => a,
            (None, b) => b,
            (Some((sa, ia)), Some((sb, ib))) => {
                let other_wins = sb
                    .cmp(&sa)
                    .then_with(|| cmp_paths_lexicographic(store, ib, ia))
                    == Ordering::Greater;
                Some(if other_wins { (sb, ib) } else { (sa, ia) })
            }
        };
        self
    }
}

/// Partitions a batch of inserted blocks by the genesis-child subtree each
/// falls under (its ancestor at height 1) — the sharding key the two-stage
/// drain uses to farm score updates before the associative merge. Shards
/// appear in first-encounter order; within a shard the batch order is kept.
pub fn partition_by_subtree(store: &dyn BlockView, inserts: &[BlockId]) -> Vec<Vec<BlockId>> {
    let mut shards: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
    for &id in inserts {
        let key = if store.height(id) == 0 {
            id
        } else {
            store.ancestor_at(id, 1)
        };
        match shards.iter_mut().find(|(k, _)| *k == key) {
            Some((_, shard)) => shard.push(id),
            None => shards.push((key, vec![id])),
        }
    }
    shards.into_iter().map(|(_, shard)| shard).collect()
}

/// Two-stage batch scoring: partition `inserts` by subtree, score each
/// shard to an [`AuxPartial`], fold the partials with the associative
/// [`AuxPartial::merge`], and apply the result to `aux`. Returns the new
/// selected tip.
///
/// `inserts` must be members of `tree`, parent-closed, and all inserted
/// after the call that reported `current_tip`; the result equals folding
/// [`SelectionFn::on_insert`] over them serially (differential-tested, and
/// cross-checked against the full-scan `select_tip` oracle in debug
/// builds by the concurrent drain).
pub fn batch_score(
    rule: &dyn SelectionFn,
    store: &dyn BlockView,
    tree: &TreeMembership,
    aux: &mut SelectionAux,
    inserts: &[BlockId],
    current_tip: BlockId,
) -> BlockId {
    if inserts.is_empty() {
        return current_tip;
    }
    let merged = partition_by_subtree(store, inserts)
        .into_iter()
        .map(|shard| rule.score_inserts(store, &shard))
        .fold(AuxPartial::empty(), |acc, p| acc.merge(store, p));
    rule.apply_partial(store, tree, aux, &merged, current_tip)
}

/// A deterministic selection function `f : BT → BC`, given by the tip of the
/// selected chain (the chain itself is the genesis→tip path).
pub trait SelectionFn: Sync {
    /// Tip of `f(bt)` for the tree `(store, tree)`. Returns the genesis id
    /// iff the tree contains only `b0` (Def. 3.1: `f(b0) = b0`).
    ///
    /// This is the full re-evaluation: O(tree). It stays the semantic
    /// oracle that the incremental path is differential-tested against.
    fn select_tip(&self, store: &dyn BlockView, tree: &TreeMembership) -> BlockId;

    /// Incremental re-selection after `new_block` joined `tree` (see the
    /// module docs for what may be assumed). The default falls back to a
    /// full `select_tip` scan, so custom rules are correct before they are
    /// fast.
    fn on_insert(
        &self,
        store: &dyn BlockView,
        tree: &TreeMembership,
        _aux: &mut SelectionAux,
        _new_block: BlockId,
        current_tip: BlockId,
    ) -> TipUpdate {
        let tip = self.select_tip(store, tree);
        if tip == current_tip {
            TipUpdate::Unchanged
        } else if store.parent(tip) == Some(current_tip) {
            TipUpdate::Extended(tip)
        } else {
            TipUpdate::Switched(tip)
        }
    }

    /// Scores one shard of a batch of inserts into an [`AuxPartial`]
    /// (see [`batch_score`]). Only immutable per-block metadata may be
    /// read — shard scoring runs before any shared selection state is
    /// touched, so it must not depend on `aux` or on membership order.
    ///
    /// The default carries the shard as unit weights, which the default
    /// `apply_partial` folds serially — correct before fast.
    fn score_inserts(&self, _store: &dyn BlockView, inserts: &[BlockId]) -> AuxPartial {
        AuxPartial::from_weights(inserts.iter().map(|&id| (id, 1)).collect())
    }

    /// Applies a merged batch contribution to `aux`, returning the new
    /// selected tip. `partial` is the [`AuxPartial::merge`]-fold of
    /// `score_inserts` over a partition of blocks that are already members
    /// of `tree` and were all inserted after the call that reported
    /// `current_tip`.
    ///
    /// The default replays the per-insert path in ascending id order (ids
    /// are minted parent-first, so that order is parent-closed). Rules
    /// whose `on_insert` reads membership state beyond the new block's
    /// own path should override with a true batch step — the serial
    /// replay sees the *final* membership at every step.
    fn apply_partial(
        &self,
        store: &dyn BlockView,
        tree: &TreeMembership,
        aux: &mut SelectionAux,
        partial: &AuxPartial,
        current_tip: BlockId,
    ) -> BlockId {
        let mut tip = current_tip;
        for &(id, _) in partial.weights() {
            match self.on_insert(store, tree, aux, id, tip) {
                TipUpdate::Unchanged => {}
                TipUpdate::Extended(t) | TipUpdate::Switched(t) => tip = t,
            }
        }
        tip
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Lexicographic comparison of the genesis→tip digest sequences of two
/// chains. Total order on distinct chains (digest sequences differ as soon
/// as the paths diverge, since digests commit to ancestry).
///
/// O(log n): the chains agree up to their deepest common ancestor and the
/// comparison is decided by the first divergent blocks — both reachable
/// through the store's jump pointers — rather than by materializing and
/// zipping the two full paths. If one chain prefixes the other, length
/// decides.
fn cmp_paths_lexicographic(store: &dyn BlockView, a: BlockId, b: BlockId) -> Ordering {
    if a == b {
        return Ordering::Equal;
    }
    let lca = store.common_ancestor(a, b);
    if lca == a {
        return Ordering::Less; // a is a proper prefix of b
    }
    if lca == b {
        return Ordering::Greater;
    }
    let fork_height = store.height(lca) + 1;
    let mut x = store.ancestor_at(a, fork_height);
    let mut y = store.ancestor_at(b, fork_height);
    loop {
        // First divergent position: digests commit to ancestry, so this
        // decides the order for any non-colliding digest function. The
        // walk below only continues on a 64-bit digest collision.
        let ord = store.digest_of(x).cmp(&store.digest_of(y));
        if ord != Ordering::Equal {
            return ord;
        }
        let h = store.height(x) + 1;
        let (ha, hb) = (store.height(a), store.height(b));
        match (h > ha, h > hb) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            (false, false) => {
                x = store.ancestor_at(a, h);
                y = store.ancestor_at(b, h);
            }
        }
    }
}

/// Shared incremental step for the two chain-scoring rules (longest,
/// heaviest): the tip is the arg-max over leaves of a score that is
/// memoized per block, so one insert only ever pits the new leaf against
/// the incumbent.
fn chain_rule_on_insert(
    store: &dyn BlockView,
    aux: &mut SelectionAux,
    new_block: BlockId,
    current_tip: BlockId,
    score: impl Fn(&crate::store::BlockMeta) -> u64,
) -> TipUpdate {
    // One meta read covers the new block's score *and* its parent link;
    // the incumbent's score comes from the aux memo (a block's score is
    // immutable, so a matching memo is never stale) — on the concurrent
    // store this turns three shard-lock crossings per insert into one.
    let new_meta = store.meta(new_block);
    let new_score = score(&new_meta);
    let tip_score = match aux.tip_score {
        Some((tip, s)) if tip == current_tip => s,
        _ => score(&store.meta(current_tip)),
    };
    match new_score
        .cmp(&tip_score)
        .then_with(|| cmp_paths_lexicographic(store, new_block, current_tip))
    {
        Ordering::Greater => {
            aux.tip_score = Some((new_block, new_score));
            if new_meta.parent == Some(current_tip) {
                TipUpdate::Extended(new_block)
            } else {
                TipUpdate::Switched(new_block)
            }
        }
        // The incumbent keeps winning; the only leaf the insert removed is
        // the new block's parent, which the incumbent already beat (or is).
        Ordering::Less | Ordering::Equal => {
            aux.tip_score = Some((current_tip, tip_score));
            TipUpdate::Unchanged
        }
    }
}

/// Shard scoring for the chain rules: a shard's contribution is just its
/// best `(score, block)` — scores are immutable per block, so this reads
/// one meta per insert and no shared state.
fn chain_rule_score_inserts(
    store: &dyn BlockView,
    inserts: &[BlockId],
    score: impl Fn(&crate::store::BlockMeta) -> u64,
) -> AuxPartial {
    let mut best: Option<(u64, BlockId)> = None;
    for &id in inserts {
        let s = score(&store.meta(id));
        best = Some(match best {
            None => (s, id),
            Some((bs, bid)) => {
                if s.cmp(&bs)
                    .then_with(|| cmp_paths_lexicographic(store, id, bid))
                    == Ordering::Greater
                {
                    (s, id)
                } else {
                    (bs, bid)
                }
            }
        });
    }
    match best {
        Some((s, id)) => AuxPartial::from_best(s, id),
        None => AuxPartial::empty(),
    }
}

/// Batch apply for the chain rules: the tip after a batch is the arg-max
/// over {incumbent} ∪ batch, and the merged partial already holds the
/// batch's arg-max, so this is one comparison against the memoized tip
/// score — the batched counterpart of [`chain_rule_on_insert`].
fn chain_rule_apply_partial(
    store: &dyn BlockView,
    aux: &mut SelectionAux,
    partial: &AuxPartial,
    current_tip: BlockId,
    score: impl Fn(&crate::store::BlockMeta) -> u64,
) -> BlockId {
    let Some((new_score, new_block)) = partial.best() else {
        return current_tip;
    };
    let tip_score = match aux.tip_score {
        Some((tip, s)) if tip == current_tip => s,
        _ => score(&store.meta(current_tip)),
    };
    if new_score
        .cmp(&tip_score)
        .then_with(|| cmp_paths_lexicographic(store, new_block, current_tip))
        == Ordering::Greater
    {
        aux.tip_score = Some((new_block, new_score));
        new_block
    } else {
        aux.tip_score = Some((current_tip, tip_score));
        current_tip
    }
}

/// The longest-chain rule with lexicographic tie-break (largest wins), as in
/// the paper's running examples (Figs. 2–4) and Bitcoin's original rule.
#[derive(Clone, Copy, Debug, Default)]
pub struct LongestChain;

impl SelectionFn for LongestChain {
    fn select_tip(&self, store: &dyn BlockView, tree: &TreeMembership) -> BlockId {
        let mut best: Option<BlockId> = None;
        for leaf in tree.leaves(store) {
            best = Some(match best {
                None => leaf,
                Some(cur) => {
                    let (hl, hc) = (store.height(leaf), store.height(cur));
                    match hl.cmp(&hc) {
                        Ordering::Greater => leaf,
                        Ordering::Less => cur,
                        Ordering::Equal => {
                            if cmp_paths_lexicographic(store, leaf, cur) == Ordering::Greater {
                                leaf
                            } else {
                                cur
                            }
                        }
                    }
                }
            });
        }
        best.expect("tree always contains genesis")
    }

    fn on_insert(
        &self,
        store: &dyn BlockView,
        _tree: &TreeMembership,
        aux: &mut SelectionAux,
        new_block: BlockId,
        current_tip: BlockId,
    ) -> TipUpdate {
        chain_rule_on_insert(store, aux, new_block, current_tip, |m| m.height as u64)
    }

    fn score_inserts(&self, store: &dyn BlockView, inserts: &[BlockId]) -> AuxPartial {
        chain_rule_score_inserts(store, inserts, |m| m.height as u64)
    }

    fn apply_partial(
        &self,
        store: &dyn BlockView,
        _tree: &TreeMembership,
        aux: &mut SelectionAux,
        partial: &AuxPartial,
        current_tip: BlockId,
    ) -> BlockId {
        chain_rule_apply_partial(store, aux, partial, current_tip, |m| m.height as u64)
    }

    fn name(&self) -> &'static str {
        "longest-chain"
    }
}

/// The heaviest-work rule: maximize cumulative work along the path
/// ("the blockchain which has required the most computational work", §5.1),
/// lexicographic tie-break.
#[derive(Clone, Copy, Debug, Default)]
pub struct HeaviestWork;

impl SelectionFn for HeaviestWork {
    fn select_tip(&self, store: &dyn BlockView, tree: &TreeMembership) -> BlockId {
        let mut best: Option<BlockId> = None;
        for leaf in tree.leaves(store) {
            best = Some(match best {
                None => leaf,
                Some(cur) => {
                    let (wl, wc) = (store.cumulative_work(leaf), store.cumulative_work(cur));
                    match wl.cmp(&wc) {
                        Ordering::Greater => leaf,
                        Ordering::Less => cur,
                        Ordering::Equal => {
                            if cmp_paths_lexicographic(store, leaf, cur) == Ordering::Greater {
                                leaf
                            } else {
                                cur
                            }
                        }
                    }
                }
            });
        }
        best.expect("tree always contains genesis")
    }

    fn on_insert(
        &self,
        store: &dyn BlockView,
        _tree: &TreeMembership,
        aux: &mut SelectionAux,
        new_block: BlockId,
        current_tip: BlockId,
    ) -> TipUpdate {
        chain_rule_on_insert(store, aux, new_block, current_tip, |m| m.cum_work)
    }

    fn score_inserts(&self, store: &dyn BlockView, inserts: &[BlockId]) -> AuxPartial {
        chain_rule_score_inserts(store, inserts, |m| m.cum_work)
    }

    fn apply_partial(
        &self,
        store: &dyn BlockView,
        _tree: &TreeMembership,
        aux: &mut SelectionAux,
        partial: &AuxPartial,
        current_tip: BlockId,
    ) -> BlockId {
        chain_rule_apply_partial(store, aux, partial, current_tip, |m| m.cum_work)
    }

    fn name(&self) -> &'static str {
        "heaviest-work"
    }
}

/// What GHOST weighs when descending.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GhostWeight {
    /// Number of member blocks in the subtree (classic GHOST).
    BlockCount,
    /// Total work of member blocks in the subtree.
    Work,
}

/// The Greedy Heaviest-Observed SubTree rule (Sompolinsky & Zohar [30]),
/// used by Ethereum (§5.2): descend from the root, at each step entering the
/// child whose *subtree* is heaviest, until reaching a leaf.
#[derive(Clone, Copy, Debug)]
pub struct Ghost {
    pub weight: GhostWeight,
}

impl Default for Ghost {
    fn default() -> Self {
        Ghost {
            weight: GhostWeight::BlockCount,
        }
    }
}

impl Ghost {
    /// The standalone weight of one member block under this rule.
    #[inline]
    fn own_weight(&self, store: &dyn BlockView, id: BlockId) -> u64 {
        match self.weight {
            GhostWeight::BlockCount => 1,
            GhostWeight::Work => store.work_of(id).max(1),
        }
    }

    /// Rebuilds `aux`'s subtree weights from scratch (used on first
    /// incremental call and after a cache reset).
    fn init_aux(&self, store: &dyn BlockView, tree: &TreeMembership, aux: &mut SelectionAux) {
        aux.subtree_weight = self.subtree_weights(store, tree);
        aux.ready = true;
    }

    /// The heaviest member child of `cur` under the maintained weights
    /// (`None` if `cur` is a member leaf). Tie-break: larger digest, same
    /// as the full scan.
    fn heaviest_child(
        &self,
        store: &dyn BlockView,
        tree: &TreeMembership,
        aux: &SelectionAux,
        cur: BlockId,
    ) -> Option<BlockId> {
        let mut best: Option<BlockId> = None;
        store.for_each_child(cur, &mut |c| {
            if !tree.contains(c) {
                return;
            }
            best = Some(match best {
                None => c,
                Some(b) => match aux.weight(c).cmp(&aux.weight(b)) {
                    Ordering::Greater => c,
                    Ordering::Less => b,
                    Ordering::Equal => {
                        if store.digest_of(c) > store.digest_of(b) {
                            c
                        } else {
                            b
                        }
                    }
                },
            });
        });
        best
    }

    /// Greedy descent from `from` to a member leaf under the maintained
    /// weights.
    fn descend(
        &self,
        store: &dyn BlockView,
        tree: &TreeMembership,
        aux: &SelectionAux,
        mut from: BlockId,
    ) -> BlockId {
        while let Some(next) = self.heaviest_child(store, tree, aux, from) {
            from = next;
        }
        from
    }

    /// Subtree weights for every member block, computed in one reverse pass
    /// (children have larger arena indices than parents, so a single
    /// back-to-front scan accumulates bottom-up).
    fn subtree_weights(&self, store: &dyn BlockView, tree: &TreeMembership) -> Vec<u64> {
        let n = store.block_count();
        let mut w = vec![0u64; n];
        for idx in (0..n).rev() {
            let id = BlockId(idx as u32);
            if !tree.contains(id) {
                continue;
            }
            w[idx] += self.own_weight(store, id);
            if let Some(p) = store.parent(id) {
                w[p.index()] += w[idx];
            }
        }
        w
    }
}

impl SelectionFn for Ghost {
    fn select_tip(&self, store: &dyn BlockView, tree: &TreeMembership) -> BlockId {
        let weights = self.subtree_weights(store, tree);
        let mut cur = BlockId::GENESIS;
        loop {
            let mut next: Option<BlockId> = None;
            store.for_each_child(cur, &mut |c| {
                if !tree.contains(c) {
                    return;
                }
                next = Some(match next {
                    None => c,
                    Some(b) => match weights[c.index()].cmp(&weights[b.index()]) {
                        Ordering::Greater => c,
                        Ordering::Less => b,
                        // Deterministic tie-break: larger digest wins.
                        Ordering::Equal => {
                            if store.digest_of(c) > store.digest_of(b) {
                                c
                            } else {
                                b
                            }
                        }
                    },
                });
            });
            match next {
                Some(n) => cur = n,
                None => return cur,
            }
        }
    }

    /// Incremental GHOST: the insert adds `own_weight(b)` to every subtree
    /// on the genesis→`b` path (an O(depth) leaf→root walk over the
    /// maintained weights), and the greedy descent can only change at the
    /// fork between the old tip's path and `b`'s path — above it both paths
    /// share vertices whose chosen child just gained weight, below the old
    /// side nothing moved. So the re-selection is one O(log n) LCA, one
    /// child comparison, and a descent only when the fork actually flips.
    fn on_insert(
        &self,
        store: &dyn BlockView,
        tree: &TreeMembership,
        aux: &mut SelectionAux,
        new_block: BlockId,
        current_tip: BlockId,
    ) -> TipUpdate {
        if !aux.ready {
            // First incremental call on this tree: weights include
            // `new_block` already, nothing to add on top.
            self.init_aux(store, tree, aux);
        } else {
            let own = self.own_weight(store, new_block);
            let mut cur = Some(new_block);
            while let Some(id) = cur {
                aux.add_weight(id, own);
                cur = store.parent(id);
            }
        }

        let lca = store.common_ancestor(current_tip, new_block);
        if lca == current_tip {
            // The old tip was a member leaf, so the only member path
            // through it is the new block itself: the selected chain grew.
            debug_assert_eq!(store.parent(new_block), Some(current_tip));
            return TipUpdate::Extended(new_block);
        }
        let fork_height = store.height(lca) + 1;
        let incumbent = store.ancestor_at(current_tip, fork_height);
        let winner = self
            .heaviest_child(store, tree, aux, lca)
            .expect("lca has member children on both paths");
        if winner == incumbent {
            TipUpdate::Unchanged
        } else {
            TipUpdate::Switched(self.descend(store, tree, aux, winner))
        }
    }

    fn score_inserts(&self, store: &dyn BlockView, inserts: &[BlockId]) -> AuxPartial {
        AuxPartial::from_weights(
            inserts
                .iter()
                .map(|&id| (id, self.own_weight(store, id)))
                .collect(),
        )
    }

    /// Batched GHOST: one converging leaf→root walk propagates every
    /// inserted weight (entries are processed deepest-first and pushed to
    /// their parent, so shared ancestor paths are walked once — O(|union
    /// of the insert paths|) instead of O(batch × depth)), then one
    /// descent re-selects from the highest fork the batch could have
    /// flipped.
    ///
    /// The descent may start at the old tip's ancestor at `h_min`, the
    /// minimum height of LCA(old tip, b) over the inserted blocks `b`: a
    /// flip at a node `v` strictly above every such LCA would need a
    /// non-chosen child of `v` to gain weight, which would make `v` itself
    /// an LCA of the old tip and some insert — contradicting minimality.
    fn apply_partial(
        &self,
        store: &dyn BlockView,
        tree: &TreeMembership,
        aux: &mut SelectionAux,
        partial: &AuxPartial,
        current_tip: BlockId,
    ) -> BlockId {
        if partial.weights().is_empty() {
            return current_tip;
        }
        if !aux.ready {
            // First batch on this tree: the rebuild sees the inserts'
            // weights already, nothing to propagate on top.
            self.init_aux(store, tree, aux);
        } else {
            let mut pending: BTreeMap<(u32, BlockId), u64> = BTreeMap::new();
            for &(id, w) in partial.weights() {
                *pending.entry((store.height(id), id)).or_insert(0) += w;
            }
            while let Some((&(h, id), _)) = pending.last_key_value() {
                let w = pending.remove(&(h, id)).expect("entry just observed");
                aux.add_weight(id, w);
                if let Some(p) = store.parent(id) {
                    *pending.entry((h - 1, p)).or_insert(0) += w;
                }
            }
        }
        let h_min = partial
            .weights()
            .iter()
            .map(|&(id, _)| store.height(store.common_ancestor(current_tip, id)))
            .min()
            .expect("non-empty batch");
        let start = store.ancestor_at(current_tip, h_min);
        self.descend(store, tree, aux, start)
    }

    fn name(&self) -> &'static str {
        "ghost"
    }
}

/// The trivial projection `BT ↦ BC` of Red Belly (§5.6): the tree *is* a
/// single chain by construction (consensus decides a unique block), so `f`
/// just returns it.
///
/// Panics if the tree has a fork — that would mean the protocol driving it
/// broke its k = 1 guarantee, which is a bug worth failing loudly on.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrivialProjection;

impl SelectionFn for TrivialProjection {
    fn select_tip(&self, store: &dyn BlockView, tree: &TreeMembership) -> BlockId {
        let leaves = tree.leaves(store);
        assert!(
            leaves.len() == 1,
            "TrivialProjection requires a forkless tree, found {} leaves",
            leaves.len()
        );
        leaves[0]
    }

    fn on_insert(
        &self,
        store: &dyn BlockView,
        _tree: &TreeMembership,
        _aux: &mut SelectionAux,
        new_block: BlockId,
        current_tip: BlockId,
    ) -> TipUpdate {
        assert!(
            store.parent(new_block) == Some(current_tip),
            "TrivialProjection requires a forkless tree, {new_block} does not extend {current_tip}"
        );
        TipUpdate::Extended(new_block)
    }

    fn name(&self) -> &'static str {
        "trivial-projection"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Payload;
    use crate::ids::ProcessId;
    use crate::store::BlockStore;

    /// b0 ── a ─┬─ b1 ── c1
    ///           └─ b2
    fn forked() -> (BlockStore, BlockId, BlockId, BlockId, BlockId) {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 10, Payload::Empty);
        let b1 = s.mint(a, ProcessId(0), 0, 1, 11, Payload::Empty);
        let b2 = s.mint(a, ProcessId(1), 1, 5, 12, Payload::Empty);
        let c1 = s.mint(b1, ProcessId(0), 0, 1, 13, Payload::Empty);
        (s, a, b1, b2, c1)
    }

    #[test]
    fn longest_picks_deepest() {
        let (s, _, _, _, c1) = forked();
        let t = TreeMembership::full(&s);
        assert_eq!(LongestChain.select_tip(&s, &t), c1);
    }

    #[test]
    fn longest_on_genesis_only() {
        let s = BlockStore::new();
        let t = TreeMembership::full(&s);
        assert_eq!(LongestChain.select_tip(&s, &t), BlockId::GENESIS);
    }

    #[test]
    fn longest_tie_break_is_deterministic() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        let b = s.mint(BlockId::GENESIS, ProcessId(1), 1, 1, 1, Payload::Empty);
        let t = TreeMembership::full(&s);
        let pick = LongestChain.select_tip(&s, &t);
        // Largest digest path wins.
        let expect = if s.get(a).digest > s.get(b).digest {
            a
        } else {
            b
        };
        assert_eq!(pick, expect);
        // Stable across repeated calls.
        assert_eq!(LongestChain.select_tip(&s, &t), pick);
    }

    #[test]
    fn heaviest_prefers_work_over_length() {
        let (s, _, _, b2, c1) = forked();
        let t = TreeMembership::full(&s);
        // Path to c1 has work 3; path to b2 has work 6.
        assert_eq!(s.cumulative_work(c1), 3);
        assert_eq!(s.cumulative_work(b2), 6);
        assert_eq!(HeaviestWork.select_tip(&s, &t), b2);
    }

    #[test]
    fn ghost_follows_heavier_subtree() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        let b = s.mint(BlockId::GENESIS, ProcessId(1), 1, 1, 1, Payload::Empty);
        // Two children under `a`, one under `b`: GHOST must enter `a`'s
        // subtree (weight 3 > 2) even though both leaves have equal height.
        let a1 = s.mint(a, ProcessId(0), 0, 1, 2, Payload::Empty);
        let _a2 = s.mint(a, ProcessId(2), 2, 1, 3, Payload::Empty);
        let _b1 = s.mint(b, ProcessId(1), 1, 1, 4, Payload::Empty);
        let t = TreeMembership::full(&s);
        let tip = Ghost::default().select_tip(&s, &t);
        assert!(
            tip == a1 || s.parent(tip) == Some(a),
            "GHOST must land in a's subtree, got {tip}"
        );
        assert!(s.is_ancestor(a, tip));
    }

    #[test]
    fn ghost_work_weighting() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 10, 0, Payload::Empty);
        let b = s.mint(BlockId::GENESIS, ProcessId(1), 1, 1, 1, Payload::Empty);
        let _b1 = s.mint(b, ProcessId(1), 1, 1, 2, Payload::Empty);
        let _b2 = s.mint(b, ProcessId(1), 1, 1, 3, Payload::Empty);
        let t = TreeMembership::full(&s);
        // By count, b's subtree (3) beats a's (1); by work, a (10) beats b (3).
        let by_count = Ghost {
            weight: GhostWeight::BlockCount,
        }
        .select_tip(&s, &t);
        let by_work = Ghost {
            weight: GhostWeight::Work,
        }
        .select_tip(&s, &t);
        assert!(s.is_ancestor(b, by_count));
        assert_eq!(by_work, a);
    }

    #[test]
    fn ghost_respects_membership() {
        let (s, a, b1, b2, c1) = forked();
        let mut t = TreeMembership::genesis_only();
        t.insert(&s, a);
        t.insert(&s, b2);
        // b1/c1 exist globally but are not in this replica's view.
        let tip = Ghost::default().select_tip(&s, &t);
        assert_eq!(tip, b2);
        let _ = (b1, c1);
    }

    #[test]
    fn trivial_projection_on_chain() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        let b = s.mint(a, ProcessId(0), 0, 1, 1, Payload::Empty);
        let t = TreeMembership::full(&s);
        assert_eq!(TrivialProjection.select_tip(&s, &t), b);
    }

    #[test]
    #[should_panic(expected = "forkless")]
    fn trivial_projection_rejects_forks() {
        let (s, ..) = forked();
        let t = TreeMembership::full(&s);
        TrivialProjection.select_tip(&s, &t);
    }

    #[test]
    fn names() {
        assert_eq!(LongestChain.name(), "longest-chain");
        assert_eq!(HeaviestWork.name(), "heaviest-work");
        assert_eq!(Ghost::default().name(), "ghost");
        assert_eq!(TrivialProjection.name(), "trivial-projection");
    }
}
