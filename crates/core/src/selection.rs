//! Selection functions `f ∈ F : BT → BC` (§3.1).
//!
//! A selection function picks one blockchain out of a BlockTree; the paper
//! leaves `f` generic "to suit the different blockchain implementations" and
//! names the longest-chain rule (Bitcoin), the heaviest-chain rule, GHOST
//! (Ethereum, §5.2), and the trivial projection of single-chain trees
//! (Red Belly, §5.6). All four are implemented here.
//!
//! Determinism matters: `f` is "encoded in the state and do[es] not change
//! over the computation", and ties must break identically at every replica
//! (Fig. 2 breaks length ties by "the largest based on the lexicographical
//! order"). We compare candidate chains by their digest sequences, which is
//! a total, replica-independent order.
//!
//! # Incremental contract
//!
//! `select_tip` re-evaluates `f` from scratch — the literal Def. 3.1
//! semantics, kept as the specification oracle. The hot path uses
//! [`SelectionFn::on_insert`] instead: given the tip selected *before* a
//! block joined the tree, it answers how the selection changes, in O(log n)
//! for the chain rules and O(depth of the insert) for GHOST. Callers
//! (see [`crate::tipcache::ChainCache`]) own a [`SelectionAux`] scratch
//! holding whatever per-tree state a rule maintains (GHOST: subtree
//! weights), which keeps this trait object-safe and the selection values
//! themselves stateless and shareable, as the paper requires.
//!
//! `on_insert` may assume:
//!
//! * `new_block` is a member of `tree` and was inserted *after* the call
//!   that reported `current_tip` (exactly one membership insert per call,
//!   in insertion order);
//! * `current_tip` was the rule's selected tip for the tree without
//!   `new_block` (the caller maintains this inductively, seeding it with a
//!   full `select_tip` scan);
//! * the same `aux` is threaded through every call for a given tree.

use crate::ids::BlockId;
use crate::store::{BlockView, TreeMembership};
use std::cmp::Ordering;

/// How the selected tip changed when one block joined the tree — the
/// result of the incremental path of a [`SelectionFn`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TipUpdate {
    /// The previously selected chain is still selected.
    Unchanged,
    /// The new tip is a child of the previous tip: the selected chain grew
    /// by exactly one block (`{b0}⌢f(bt)⌢{b}`, the common case).
    Extended(BlockId),
    /// The selection moved to a different branch (a reorg); the new tip is
    /// not a child of the previous one.
    Switched(BlockId),
}

/// Per-tree scratch state for incremental selection, owned by the caller
/// and threaded through [`SelectionFn::on_insert`]. Chain rules ignore it;
/// GHOST maintains its subtree weights here.
#[derive(Clone, Debug, Default)]
pub struct SelectionAux {
    /// GHOST: weight of the membership subtree rooted at each block
    /// (indexed by arena slot; non-members weigh 0).
    subtree_weight: Vec<u64>,
    /// Whether `subtree_weight` reflects the current tree (rules
    /// initialize lazily on first use).
    ready: bool,
    /// Chain rules: the current tip's memoized score. A block's score
    /// (height, cumulative work) is immutable, so a matching entry is
    /// never stale — this takes the per-insert tip re-scoring (a shard
    /// lock on the concurrent store) off the commit hot path.
    tip_score: Option<(BlockId, u64)>,
}

impl SelectionAux {
    /// Fresh, uninitialized scratch (rules rebuild it on first use).
    pub fn new() -> Self {
        SelectionAux::default()
    }

    /// Drops any maintained state, forcing re-initialization on next use.
    pub fn reset(&mut self) {
        self.subtree_weight.clear();
        self.ready = false;
        self.tip_score = None;
    }

    #[inline]
    fn weight(&self, id: BlockId) -> u64 {
        self.subtree_weight.get(id.index()).copied().unwrap_or(0)
    }

    #[inline]
    fn add_weight(&mut self, id: BlockId, w: u64) {
        if self.subtree_weight.len() <= id.index() {
            self.subtree_weight.resize(id.index() + 1, 0);
        }
        self.subtree_weight[id.index()] += w;
    }
}

/// A deterministic selection function `f : BT → BC`, given by the tip of the
/// selected chain (the chain itself is the genesis→tip path).
pub trait SelectionFn: Sync {
    /// Tip of `f(bt)` for the tree `(store, tree)`. Returns the genesis id
    /// iff the tree contains only `b0` (Def. 3.1: `f(b0) = b0`).
    ///
    /// This is the full re-evaluation: O(tree). It stays the semantic
    /// oracle that the incremental path is differential-tested against.
    fn select_tip(&self, store: &dyn BlockView, tree: &TreeMembership) -> BlockId;

    /// Incremental re-selection after `new_block` joined `tree` (see the
    /// module docs for what may be assumed). The default falls back to a
    /// full `select_tip` scan, so custom rules are correct before they are
    /// fast.
    fn on_insert(
        &self,
        store: &dyn BlockView,
        tree: &TreeMembership,
        _aux: &mut SelectionAux,
        _new_block: BlockId,
        current_tip: BlockId,
    ) -> TipUpdate {
        let tip = self.select_tip(store, tree);
        if tip == current_tip {
            TipUpdate::Unchanged
        } else if store.parent(tip) == Some(current_tip) {
            TipUpdate::Extended(tip)
        } else {
            TipUpdate::Switched(tip)
        }
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Lexicographic comparison of the genesis→tip digest sequences of two
/// chains. Total order on distinct chains (digest sequences differ as soon
/// as the paths diverge, since digests commit to ancestry).
///
/// O(log n): the chains agree up to their deepest common ancestor and the
/// comparison is decided by the first divergent blocks — both reachable
/// through the store's jump pointers — rather than by materializing and
/// zipping the two full paths. If one chain prefixes the other, length
/// decides.
fn cmp_paths_lexicographic(store: &dyn BlockView, a: BlockId, b: BlockId) -> Ordering {
    if a == b {
        return Ordering::Equal;
    }
    let lca = store.common_ancestor(a, b);
    if lca == a {
        return Ordering::Less; // a is a proper prefix of b
    }
    if lca == b {
        return Ordering::Greater;
    }
    let fork_height = store.height(lca) + 1;
    let mut x = store.ancestor_at(a, fork_height);
    let mut y = store.ancestor_at(b, fork_height);
    loop {
        // First divergent position: digests commit to ancestry, so this
        // decides the order for any non-colliding digest function. The
        // walk below only continues on a 64-bit digest collision.
        let ord = store.digest_of(x).cmp(&store.digest_of(y));
        if ord != Ordering::Equal {
            return ord;
        }
        let h = store.height(x) + 1;
        let (ha, hb) = (store.height(a), store.height(b));
        match (h > ha, h > hb) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            (false, false) => {
                x = store.ancestor_at(a, h);
                y = store.ancestor_at(b, h);
            }
        }
    }
}

/// Shared incremental step for the two chain-scoring rules (longest,
/// heaviest): the tip is the arg-max over leaves of a score that is
/// memoized per block, so one insert only ever pits the new leaf against
/// the incumbent.
fn chain_rule_on_insert(
    store: &dyn BlockView,
    aux: &mut SelectionAux,
    new_block: BlockId,
    current_tip: BlockId,
    score: impl Fn(&crate::store::BlockMeta) -> u64,
) -> TipUpdate {
    // One meta read covers the new block's score *and* its parent link;
    // the incumbent's score comes from the aux memo (a block's score is
    // immutable, so a matching memo is never stale) — on the concurrent
    // store this turns three shard-lock crossings per insert into one.
    let new_meta = store.meta(new_block);
    let new_score = score(&new_meta);
    let tip_score = match aux.tip_score {
        Some((tip, s)) if tip == current_tip => s,
        _ => score(&store.meta(current_tip)),
    };
    match new_score
        .cmp(&tip_score)
        .then_with(|| cmp_paths_lexicographic(store, new_block, current_tip))
    {
        Ordering::Greater => {
            aux.tip_score = Some((new_block, new_score));
            if new_meta.parent == Some(current_tip) {
                TipUpdate::Extended(new_block)
            } else {
                TipUpdate::Switched(new_block)
            }
        }
        // The incumbent keeps winning; the only leaf the insert removed is
        // the new block's parent, which the incumbent already beat (or is).
        Ordering::Less | Ordering::Equal => {
            aux.tip_score = Some((current_tip, tip_score));
            TipUpdate::Unchanged
        }
    }
}

/// The longest-chain rule with lexicographic tie-break (largest wins), as in
/// the paper's running examples (Figs. 2–4) and Bitcoin's original rule.
#[derive(Clone, Copy, Debug, Default)]
pub struct LongestChain;

impl SelectionFn for LongestChain {
    fn select_tip(&self, store: &dyn BlockView, tree: &TreeMembership) -> BlockId {
        let mut best: Option<BlockId> = None;
        for leaf in tree.leaves(store) {
            best = Some(match best {
                None => leaf,
                Some(cur) => {
                    let (hl, hc) = (store.height(leaf), store.height(cur));
                    match hl.cmp(&hc) {
                        Ordering::Greater => leaf,
                        Ordering::Less => cur,
                        Ordering::Equal => {
                            if cmp_paths_lexicographic(store, leaf, cur) == Ordering::Greater {
                                leaf
                            } else {
                                cur
                            }
                        }
                    }
                }
            });
        }
        best.expect("tree always contains genesis")
    }

    fn on_insert(
        &self,
        store: &dyn BlockView,
        _tree: &TreeMembership,
        aux: &mut SelectionAux,
        new_block: BlockId,
        current_tip: BlockId,
    ) -> TipUpdate {
        chain_rule_on_insert(store, aux, new_block, current_tip, |m| m.height as u64)
    }

    fn name(&self) -> &'static str {
        "longest-chain"
    }
}

/// The heaviest-work rule: maximize cumulative work along the path
/// ("the blockchain which has required the most computational work", §5.1),
/// lexicographic tie-break.
#[derive(Clone, Copy, Debug, Default)]
pub struct HeaviestWork;

impl SelectionFn for HeaviestWork {
    fn select_tip(&self, store: &dyn BlockView, tree: &TreeMembership) -> BlockId {
        let mut best: Option<BlockId> = None;
        for leaf in tree.leaves(store) {
            best = Some(match best {
                None => leaf,
                Some(cur) => {
                    let (wl, wc) = (store.cumulative_work(leaf), store.cumulative_work(cur));
                    match wl.cmp(&wc) {
                        Ordering::Greater => leaf,
                        Ordering::Less => cur,
                        Ordering::Equal => {
                            if cmp_paths_lexicographic(store, leaf, cur) == Ordering::Greater {
                                leaf
                            } else {
                                cur
                            }
                        }
                    }
                }
            });
        }
        best.expect("tree always contains genesis")
    }

    fn on_insert(
        &self,
        store: &dyn BlockView,
        _tree: &TreeMembership,
        aux: &mut SelectionAux,
        new_block: BlockId,
        current_tip: BlockId,
    ) -> TipUpdate {
        chain_rule_on_insert(store, aux, new_block, current_tip, |m| m.cum_work)
    }

    fn name(&self) -> &'static str {
        "heaviest-work"
    }
}

/// What GHOST weighs when descending.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GhostWeight {
    /// Number of member blocks in the subtree (classic GHOST).
    BlockCount,
    /// Total work of member blocks in the subtree.
    Work,
}

/// The Greedy Heaviest-Observed SubTree rule (Sompolinsky & Zohar [30]),
/// used by Ethereum (§5.2): descend from the root, at each step entering the
/// child whose *subtree* is heaviest, until reaching a leaf.
#[derive(Clone, Copy, Debug)]
pub struct Ghost {
    pub weight: GhostWeight,
}

impl Default for Ghost {
    fn default() -> Self {
        Ghost {
            weight: GhostWeight::BlockCount,
        }
    }
}

impl Ghost {
    /// The standalone weight of one member block under this rule.
    #[inline]
    fn own_weight(&self, store: &dyn BlockView, id: BlockId) -> u64 {
        match self.weight {
            GhostWeight::BlockCount => 1,
            GhostWeight::Work => store.work_of(id).max(1),
        }
    }

    /// Rebuilds `aux`'s subtree weights from scratch (used on first
    /// incremental call and after a cache reset).
    fn init_aux(&self, store: &dyn BlockView, tree: &TreeMembership, aux: &mut SelectionAux) {
        aux.subtree_weight = self.subtree_weights(store, tree);
        aux.ready = true;
    }

    /// The heaviest member child of `cur` under the maintained weights
    /// (`None` if `cur` is a member leaf). Tie-break: larger digest, same
    /// as the full scan.
    fn heaviest_child(
        &self,
        store: &dyn BlockView,
        tree: &TreeMembership,
        aux: &SelectionAux,
        cur: BlockId,
    ) -> Option<BlockId> {
        let mut best: Option<BlockId> = None;
        store.for_each_child(cur, &mut |c| {
            if !tree.contains(c) {
                return;
            }
            best = Some(match best {
                None => c,
                Some(b) => match aux.weight(c).cmp(&aux.weight(b)) {
                    Ordering::Greater => c,
                    Ordering::Less => b,
                    Ordering::Equal => {
                        if store.digest_of(c) > store.digest_of(b) {
                            c
                        } else {
                            b
                        }
                    }
                },
            });
        });
        best
    }

    /// Greedy descent from `from` to a member leaf under the maintained
    /// weights.
    fn descend(
        &self,
        store: &dyn BlockView,
        tree: &TreeMembership,
        aux: &SelectionAux,
        mut from: BlockId,
    ) -> BlockId {
        while let Some(next) = self.heaviest_child(store, tree, aux, from) {
            from = next;
        }
        from
    }

    /// Subtree weights for every member block, computed in one reverse pass
    /// (children have larger arena indices than parents, so a single
    /// back-to-front scan accumulates bottom-up).
    fn subtree_weights(&self, store: &dyn BlockView, tree: &TreeMembership) -> Vec<u64> {
        let n = store.block_count();
        let mut w = vec![0u64; n];
        for idx in (0..n).rev() {
            let id = BlockId(idx as u32);
            if !tree.contains(id) {
                continue;
            }
            w[idx] += self.own_weight(store, id);
            if let Some(p) = store.parent(id) {
                w[p.index()] += w[idx];
            }
        }
        w
    }
}

impl SelectionFn for Ghost {
    fn select_tip(&self, store: &dyn BlockView, tree: &TreeMembership) -> BlockId {
        let weights = self.subtree_weights(store, tree);
        let mut cur = BlockId::GENESIS;
        loop {
            let mut next: Option<BlockId> = None;
            store.for_each_child(cur, &mut |c| {
                if !tree.contains(c) {
                    return;
                }
                next = Some(match next {
                    None => c,
                    Some(b) => match weights[c.index()].cmp(&weights[b.index()]) {
                        Ordering::Greater => c,
                        Ordering::Less => b,
                        // Deterministic tie-break: larger digest wins.
                        Ordering::Equal => {
                            if store.digest_of(c) > store.digest_of(b) {
                                c
                            } else {
                                b
                            }
                        }
                    },
                });
            });
            match next {
                Some(n) => cur = n,
                None => return cur,
            }
        }
    }

    /// Incremental GHOST: the insert adds `own_weight(b)` to every subtree
    /// on the genesis→`b` path (an O(depth) leaf→root walk over the
    /// maintained weights), and the greedy descent can only change at the
    /// fork between the old tip's path and `b`'s path — above it both paths
    /// share vertices whose chosen child just gained weight, below the old
    /// side nothing moved. So the re-selection is one O(log n) LCA, one
    /// child comparison, and a descent only when the fork actually flips.
    fn on_insert(
        &self,
        store: &dyn BlockView,
        tree: &TreeMembership,
        aux: &mut SelectionAux,
        new_block: BlockId,
        current_tip: BlockId,
    ) -> TipUpdate {
        if !aux.ready {
            // First incremental call on this tree: weights include
            // `new_block` already, nothing to add on top.
            self.init_aux(store, tree, aux);
        } else {
            let own = self.own_weight(store, new_block);
            let mut cur = Some(new_block);
            while let Some(id) = cur {
                aux.add_weight(id, own);
                cur = store.parent(id);
            }
        }

        let lca = store.common_ancestor(current_tip, new_block);
        if lca == current_tip {
            // The old tip was a member leaf, so the only member path
            // through it is the new block itself: the selected chain grew.
            debug_assert_eq!(store.parent(new_block), Some(current_tip));
            return TipUpdate::Extended(new_block);
        }
        let fork_height = store.height(lca) + 1;
        let incumbent = store.ancestor_at(current_tip, fork_height);
        let winner = self
            .heaviest_child(store, tree, aux, lca)
            .expect("lca has member children on both paths");
        if winner == incumbent {
            TipUpdate::Unchanged
        } else {
            TipUpdate::Switched(self.descend(store, tree, aux, winner))
        }
    }

    fn name(&self) -> &'static str {
        "ghost"
    }
}

/// The trivial projection `BT ↦ BC` of Red Belly (§5.6): the tree *is* a
/// single chain by construction (consensus decides a unique block), so `f`
/// just returns it.
///
/// Panics if the tree has a fork — that would mean the protocol driving it
/// broke its k = 1 guarantee, which is a bug worth failing loudly on.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrivialProjection;

impl SelectionFn for TrivialProjection {
    fn select_tip(&self, store: &dyn BlockView, tree: &TreeMembership) -> BlockId {
        let leaves = tree.leaves(store);
        assert!(
            leaves.len() == 1,
            "TrivialProjection requires a forkless tree, found {} leaves",
            leaves.len()
        );
        leaves[0]
    }

    fn on_insert(
        &self,
        store: &dyn BlockView,
        _tree: &TreeMembership,
        _aux: &mut SelectionAux,
        new_block: BlockId,
        current_tip: BlockId,
    ) -> TipUpdate {
        assert!(
            store.parent(new_block) == Some(current_tip),
            "TrivialProjection requires a forkless tree, {new_block} does not extend {current_tip}"
        );
        TipUpdate::Extended(new_block)
    }

    fn name(&self) -> &'static str {
        "trivial-projection"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Payload;
    use crate::ids::ProcessId;
    use crate::store::BlockStore;

    /// b0 ── a ─┬─ b1 ── c1
    ///           └─ b2
    fn forked() -> (BlockStore, BlockId, BlockId, BlockId, BlockId) {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 10, Payload::Empty);
        let b1 = s.mint(a, ProcessId(0), 0, 1, 11, Payload::Empty);
        let b2 = s.mint(a, ProcessId(1), 1, 5, 12, Payload::Empty);
        let c1 = s.mint(b1, ProcessId(0), 0, 1, 13, Payload::Empty);
        (s, a, b1, b2, c1)
    }

    #[test]
    fn longest_picks_deepest() {
        let (s, _, _, _, c1) = forked();
        let t = TreeMembership::full(&s);
        assert_eq!(LongestChain.select_tip(&s, &t), c1);
    }

    #[test]
    fn longest_on_genesis_only() {
        let s = BlockStore::new();
        let t = TreeMembership::full(&s);
        assert_eq!(LongestChain.select_tip(&s, &t), BlockId::GENESIS);
    }

    #[test]
    fn longest_tie_break_is_deterministic() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        let b = s.mint(BlockId::GENESIS, ProcessId(1), 1, 1, 1, Payload::Empty);
        let t = TreeMembership::full(&s);
        let pick = LongestChain.select_tip(&s, &t);
        // Largest digest path wins.
        let expect = if s.get(a).digest > s.get(b).digest {
            a
        } else {
            b
        };
        assert_eq!(pick, expect);
        // Stable across repeated calls.
        assert_eq!(LongestChain.select_tip(&s, &t), pick);
    }

    #[test]
    fn heaviest_prefers_work_over_length() {
        let (s, _, _, b2, c1) = forked();
        let t = TreeMembership::full(&s);
        // Path to c1 has work 3; path to b2 has work 6.
        assert_eq!(s.cumulative_work(c1), 3);
        assert_eq!(s.cumulative_work(b2), 6);
        assert_eq!(HeaviestWork.select_tip(&s, &t), b2);
    }

    #[test]
    fn ghost_follows_heavier_subtree() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        let b = s.mint(BlockId::GENESIS, ProcessId(1), 1, 1, 1, Payload::Empty);
        // Two children under `a`, one under `b`: GHOST must enter `a`'s
        // subtree (weight 3 > 2) even though both leaves have equal height.
        let a1 = s.mint(a, ProcessId(0), 0, 1, 2, Payload::Empty);
        let _a2 = s.mint(a, ProcessId(2), 2, 1, 3, Payload::Empty);
        let _b1 = s.mint(b, ProcessId(1), 1, 1, 4, Payload::Empty);
        let t = TreeMembership::full(&s);
        let tip = Ghost::default().select_tip(&s, &t);
        assert!(
            tip == a1 || s.parent(tip) == Some(a),
            "GHOST must land in a's subtree, got {tip}"
        );
        assert!(s.is_ancestor(a, tip));
    }

    #[test]
    fn ghost_work_weighting() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 10, 0, Payload::Empty);
        let b = s.mint(BlockId::GENESIS, ProcessId(1), 1, 1, 1, Payload::Empty);
        let _b1 = s.mint(b, ProcessId(1), 1, 1, 2, Payload::Empty);
        let _b2 = s.mint(b, ProcessId(1), 1, 1, 3, Payload::Empty);
        let t = TreeMembership::full(&s);
        // By count, b's subtree (3) beats a's (1); by work, a (10) beats b (3).
        let by_count = Ghost {
            weight: GhostWeight::BlockCount,
        }
        .select_tip(&s, &t);
        let by_work = Ghost {
            weight: GhostWeight::Work,
        }
        .select_tip(&s, &t);
        assert!(s.is_ancestor(b, by_count));
        assert_eq!(by_work, a);
    }

    #[test]
    fn ghost_respects_membership() {
        let (s, a, b1, b2, c1) = forked();
        let mut t = TreeMembership::genesis_only();
        t.insert(&s, a);
        t.insert(&s, b2);
        // b1/c1 exist globally but are not in this replica's view.
        let tip = Ghost::default().select_tip(&s, &t);
        assert_eq!(tip, b2);
        let _ = (b1, c1);
    }

    #[test]
    fn trivial_projection_on_chain() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        let b = s.mint(a, ProcessId(0), 0, 1, 1, Payload::Empty);
        let t = TreeMembership::full(&s);
        assert_eq!(TrivialProjection.select_tip(&s, &t), b);
    }

    #[test]
    #[should_panic(expected = "forkless")]
    fn trivial_projection_rejects_forks() {
        let (s, ..) = forked();
        let t = TreeMembership::full(&s);
        TrivialProjection.select_tip(&s, &t);
    }

    #[test]
    fn names() {
        assert_eq!(LongestChain.name(), "longest-chain");
        assert_eq!(HeaviestWork.name(), "heaviest-work");
        assert_eq!(Ghost::default().name(), "ghost");
        assert_eq!(TrivialProjection.name(), "trivial-projection");
    }
}
