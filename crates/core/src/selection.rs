//! Selection functions `f ∈ F : BT → BC` (§3.1).
//!
//! A selection function picks one blockchain out of a BlockTree; the paper
//! leaves `f` generic "to suit the different blockchain implementations" and
//! names the longest-chain rule (Bitcoin), the heaviest-chain rule, GHOST
//! (Ethereum, §5.2), and the trivial projection of single-chain trees
//! (Red Belly, §5.6). All four are implemented here.
//!
//! Determinism matters: `f` is "encoded in the state and do[es] not change
//! over the computation", and ties must break identically at every replica
//! (Fig. 2 breaks length ties by "the largest based on the lexicographical
//! order"). We compare candidate chains by their digest sequences, which is
//! a total, replica-independent order.

use crate::ids::BlockId;
use crate::store::{BlockStore, TreeMembership};
use std::cmp::Ordering;

/// A deterministic selection function `f : BT → BC`, given by the tip of the
/// selected chain (the chain itself is the genesis→tip path).
pub trait SelectionFn: Sync {
    /// Tip of `f(bt)` for the tree `(store, tree)`. Returns the genesis id
    /// iff the tree contains only `b0` (Def. 3.1: `f(b0) = b0`).
    fn select_tip(&self, store: &BlockStore, tree: &TreeMembership) -> BlockId;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Lexicographic comparison of the genesis→tip digest sequences of two
/// chains. Total order on distinct chains (digest sequences differ as soon
/// as the paths diverge, since digests commit to ancestry).
fn cmp_paths_lexicographic(store: &BlockStore, a: BlockId, b: BlockId) -> Ordering {
    if a == b {
        return Ordering::Equal;
    }
    let pa = store.path_from_genesis(a);
    let pb = store.path_from_genesis(b);
    for (x, y) in pa.iter().zip(pb.iter()) {
        let ord = store.get(*x).digest.cmp(&store.get(*y).digest);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    pa.len().cmp(&pb.len())
}

/// The longest-chain rule with lexicographic tie-break (largest wins), as in
/// the paper's running examples (Figs. 2–4) and Bitcoin's original rule.
#[derive(Clone, Copy, Debug, Default)]
pub struct LongestChain;

impl SelectionFn for LongestChain {
    fn select_tip(&self, store: &BlockStore, tree: &TreeMembership) -> BlockId {
        let mut best: Option<BlockId> = None;
        for leaf in tree.leaves(store) {
            best = Some(match best {
                None => leaf,
                Some(cur) => {
                    let (hl, hc) = (store.height(leaf), store.height(cur));
                    match hl.cmp(&hc) {
                        Ordering::Greater => leaf,
                        Ordering::Less => cur,
                        Ordering::Equal => {
                            if cmp_paths_lexicographic(store, leaf, cur) == Ordering::Greater {
                                leaf
                            } else {
                                cur
                            }
                        }
                    }
                }
            });
        }
        best.expect("tree always contains genesis")
    }

    fn name(&self) -> &'static str {
        "longest-chain"
    }
}

/// The heaviest-work rule: maximize cumulative work along the path
/// ("the blockchain which has required the most computational work", §5.1),
/// lexicographic tie-break.
#[derive(Clone, Copy, Debug, Default)]
pub struct HeaviestWork;

impl SelectionFn for HeaviestWork {
    fn select_tip(&self, store: &BlockStore, tree: &TreeMembership) -> BlockId {
        let mut best: Option<BlockId> = None;
        for leaf in tree.leaves(store) {
            best = Some(match best {
                None => leaf,
                Some(cur) => {
                    let (wl, wc) = (store.cumulative_work(leaf), store.cumulative_work(cur));
                    match wl.cmp(&wc) {
                        Ordering::Greater => leaf,
                        Ordering::Less => cur,
                        Ordering::Equal => {
                            if cmp_paths_lexicographic(store, leaf, cur) == Ordering::Greater {
                                leaf
                            } else {
                                cur
                            }
                        }
                    }
                }
            });
        }
        best.expect("tree always contains genesis")
    }

    fn name(&self) -> &'static str {
        "heaviest-work"
    }
}

/// What GHOST weighs when descending.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GhostWeight {
    /// Number of member blocks in the subtree (classic GHOST).
    BlockCount,
    /// Total work of member blocks in the subtree.
    Work,
}

/// The Greedy Heaviest-Observed SubTree rule (Sompolinsky & Zohar [30]),
/// used by Ethereum (§5.2): descend from the root, at each step entering the
/// child whose *subtree* is heaviest, until reaching a leaf.
#[derive(Clone, Copy, Debug)]
pub struct Ghost {
    pub weight: GhostWeight,
}

impl Default for Ghost {
    fn default() -> Self {
        Ghost {
            weight: GhostWeight::BlockCount,
        }
    }
}

impl Ghost {
    /// Subtree weights for every member block, computed in one reverse pass
    /// (children have larger arena indices than parents, so a single
    /// back-to-front scan accumulates bottom-up).
    fn subtree_weights(&self, store: &BlockStore, tree: &TreeMembership) -> Vec<u64> {
        let n = store.len();
        let mut w = vec![0u64; n];
        for idx in (0..n).rev() {
            let id = BlockId(idx as u32);
            if !tree.contains(id) {
                continue;
            }
            let own = match self.weight {
                GhostWeight::BlockCount => 1,
                GhostWeight::Work => store.get(id).work.max(1),
            };
            w[idx] += own;
            if let Some(p) = store.parent(id) {
                w[p.index()] += w[idx];
            }
        }
        w
    }
}

impl SelectionFn for Ghost {
    fn select_tip(&self, store: &BlockStore, tree: &TreeMembership) -> BlockId {
        let weights = self.subtree_weights(store, tree);
        let mut cur = BlockId::GENESIS;
        loop {
            let mut next: Option<BlockId> = None;
            for &c in store.children(cur) {
                if !tree.contains(c) {
                    continue;
                }
                next = Some(match next {
                    None => c,
                    Some(b) => match weights[c.index()].cmp(&weights[b.index()]) {
                        Ordering::Greater => c,
                        Ordering::Less => b,
                        // Deterministic tie-break: larger digest wins.
                        Ordering::Equal => {
                            if store.get(c).digest > store.get(b).digest {
                                c
                            } else {
                                b
                            }
                        }
                    },
                });
            }
            match next {
                Some(n) => cur = n,
                None => return cur,
            }
        }
    }

    fn name(&self) -> &'static str {
        "ghost"
    }
}

/// The trivial projection `BT ↦ BC` of Red Belly (§5.6): the tree *is* a
/// single chain by construction (consensus decides a unique block), so `f`
/// just returns it.
///
/// Panics if the tree has a fork — that would mean the protocol driving it
/// broke its k = 1 guarantee, which is a bug worth failing loudly on.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrivialProjection;

impl SelectionFn for TrivialProjection {
    fn select_tip(&self, store: &BlockStore, tree: &TreeMembership) -> BlockId {
        let leaves = tree.leaves(store);
        assert!(
            leaves.len() == 1,
            "TrivialProjection requires a forkless tree, found {} leaves",
            leaves.len()
        );
        leaves[0]
    }

    fn name(&self) -> &'static str {
        "trivial-projection"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Payload;
    use crate::ids::ProcessId;

    /// b0 ── a ─┬─ b1 ── c1
    ///           └─ b2
    fn forked() -> (BlockStore, BlockId, BlockId, BlockId, BlockId) {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 10, Payload::Empty);
        let b1 = s.mint(a, ProcessId(0), 0, 1, 11, Payload::Empty);
        let b2 = s.mint(a, ProcessId(1), 1, 5, 12, Payload::Empty);
        let c1 = s.mint(b1, ProcessId(0), 0, 1, 13, Payload::Empty);
        (s, a, b1, b2, c1)
    }

    #[test]
    fn longest_picks_deepest() {
        let (s, _, _, _, c1) = forked();
        let t = TreeMembership::full(&s);
        assert_eq!(LongestChain.select_tip(&s, &t), c1);
    }

    #[test]
    fn longest_on_genesis_only() {
        let s = BlockStore::new();
        let t = TreeMembership::full(&s);
        assert_eq!(LongestChain.select_tip(&s, &t), BlockId::GENESIS);
    }

    #[test]
    fn longest_tie_break_is_deterministic() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        let b = s.mint(BlockId::GENESIS, ProcessId(1), 1, 1, 1, Payload::Empty);
        let t = TreeMembership::full(&s);
        let pick = LongestChain.select_tip(&s, &t);
        // Largest digest path wins.
        let expect = if s.get(a).digest > s.get(b).digest { a } else { b };
        assert_eq!(pick, expect);
        // Stable across repeated calls.
        assert_eq!(LongestChain.select_tip(&s, &t), pick);
    }

    #[test]
    fn heaviest_prefers_work_over_length() {
        let (s, _, _, b2, c1) = forked();
        let t = TreeMembership::full(&s);
        // Path to c1 has work 3; path to b2 has work 6.
        assert_eq!(s.cumulative_work(c1), 3);
        assert_eq!(s.cumulative_work(b2), 6);
        assert_eq!(HeaviestWork.select_tip(&s, &t), b2);
    }

    #[test]
    fn ghost_follows_heavier_subtree() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        let b = s.mint(BlockId::GENESIS, ProcessId(1), 1, 1, 1, Payload::Empty);
        // Two children under `a`, one under `b`: GHOST must enter `a`'s
        // subtree (weight 3 > 2) even though both leaves have equal height.
        let a1 = s.mint(a, ProcessId(0), 0, 1, 2, Payload::Empty);
        let _a2 = s.mint(a, ProcessId(2), 2, 1, 3, Payload::Empty);
        let _b1 = s.mint(b, ProcessId(1), 1, 1, 4, Payload::Empty);
        let t = TreeMembership::full(&s);
        let tip = Ghost::default().select_tip(&s, &t);
        assert!(
            tip == a1 || s.parent(tip) == Some(a),
            "GHOST must land in a's subtree, got {tip}"
        );
        assert!(s.is_ancestor(a, tip));
    }

    #[test]
    fn ghost_work_weighting() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 10, 0, Payload::Empty);
        let b = s.mint(BlockId::GENESIS, ProcessId(1), 1, 1, 1, Payload::Empty);
        let _b1 = s.mint(b, ProcessId(1), 1, 1, 2, Payload::Empty);
        let _b2 = s.mint(b, ProcessId(1), 1, 1, 3, Payload::Empty);
        let t = TreeMembership::full(&s);
        // By count, b's subtree (3) beats a's (1); by work, a (10) beats b (3).
        let by_count = Ghost {
            weight: GhostWeight::BlockCount,
        }
        .select_tip(&s, &t);
        let by_work = Ghost {
            weight: GhostWeight::Work,
        }
        .select_tip(&s, &t);
        assert!(s.is_ancestor(b, by_count));
        assert_eq!(by_work, a);
    }

    #[test]
    fn ghost_respects_membership() {
        let (s, a, b1, b2, c1) = forked();
        let mut t = TreeMembership::genesis_only();
        t.insert(&s, a);
        t.insert(&s, b2);
        // b1/c1 exist globally but are not in this replica's view.
        let tip = Ghost::default().select_tip(&s, &t);
        assert_eq!(tip, b2);
        let _ = (b1, c1);
    }

    #[test]
    fn trivial_projection_on_chain() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        let b = s.mint(a, ProcessId(0), 0, 1, 1, Payload::Empty);
        let t = TreeMembership::full(&s);
        assert_eq!(TrivialProjection.select_tip(&s, &t), b);
    }

    #[test]
    #[should_panic(expected = "forkless")]
    fn trivial_projection_rejects_forks() {
        let (s, ..) = forked();
        let t = TreeMembership::full(&s);
        TrivialProjection.select_tip(&s, &t);
    }

    #[test]
    fn names() {
        assert_eq!(LongestChain.name(), "longest-chain");
        assert_eq!(HeaviestWork.name(), "heaviest-work");
        assert_eq!(Ghost::default().name(), "ghost");
        assert_eq!(TrivialProjection.name(), "trivial-projection");
    }
}
