//! The refinement hierarchy of §3.4 (Fig. 8) and its message-passing
//! restriction of §4.4 (Fig. 14).
//!
//! A refinement `R(BT-ADT_C, Θ)` pairs a consistency criterion `C ∈ {SC,EC}`
//! with an oracle model `Θ ∈ {Θ_F,k, Θ_P}`. Refinements are ordered by
//! inclusion of their (purged) history sets `Ĥ`:
//!
//! * Thm. 3.3 — `Ĥ(R(BT, Θ_F)) ⊆ Ĥ(R(BT, Θ_P))`;
//! * Thm. 3.4 — `k1 ≤ k2 ⟹ Ĥ(R(BT, Θ_F,k1)) ⊆ Ĥ(R(BT, Θ_F,k2))`;
//! * Cor. 3.4.1 — `Ĥ(R(BT-ADT_SC, Θ)) ⊆ Ĥ(R(BT-ADT_EC, Θ))`;
//! * Thm. 4.8 — in a message-passing system, `R(BT-ADT_SC, Θ)` is
//!   implementable **only** for `Θ = Θ_F,k=1` (the grey nodes of Fig. 14).
//!
//! This module encodes the hierarchy as data so experiments F8/F14 can walk
//! it, and [`RefinementClass::includes`] gives the closed partial order.

use crate::criteria::conjunctions::CriterionKind;
use std::fmt;

/// The oracle models of §3.2 as descriptors (implementations live in the
/// `btadt-oracle` crate).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OracleModel {
    /// Frugal oracle Θ_F,k: at most `k` tokens consumed per object.
    Frugal { k: u32 },
    /// Prodigal oracle Θ_P = Θ_F with k = ∞.
    Prodigal,
}

impl OracleModel {
    /// `self` allows at most as many forks as `other` (the oracle-side
    /// inclusion of Thms. 3.3/3.4).
    pub fn at_most_as_permissive_as(&self, other: &OracleModel) -> bool {
        match (self, other) {
            (_, OracleModel::Prodigal) => true,
            (OracleModel::Frugal { k: k1 }, OracleModel::Frugal { k: k2 }) => k1 <= k2,
            (OracleModel::Prodigal, OracleModel::Frugal { .. }) => false,
        }
    }

    /// Does this oracle permit forks at all?
    pub fn allows_forks(&self) -> bool {
        !matches!(self, OracleModel::Frugal { k: 1 })
    }
}

impl fmt::Display for OracleModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleModel::Frugal { k } => write!(f, "Θ_F,k={k}"),
            OracleModel::Prodigal => write!(f, "Θ_P"),
        }
    }
}

/// One node of Figs. 8/14: `R(BT-ADT_C, Θ)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RefinementClass {
    pub criterion: CriterionKind,
    pub oracle: OracleModel,
}

impl RefinementClass {
    pub const fn new(criterion: CriterionKind, oracle: OracleModel) -> Self {
        RefinementClass { criterion, oracle }
    }

    /// History-set inclusion `Ĥ(self) ⊆ Ĥ(other)`: the criterion must relax
    /// (SC ⊆ EC, Cor. 3.4.1) and the oracle must be at most as permissive
    /// (Thms. 3.3/3.4). Reflexive and transitive by construction.
    pub fn includes_into(&self, other: &RefinementClass) -> bool {
        let criterion_ok = match (self.criterion, other.criterion) {
            (a, b) if a == b => true,
            (CriterionKind::Strong, CriterionKind::Eventual) => true,
            _ => false,
        };
        criterion_ok && self.oracle.at_most_as_permissive_as(&other.oracle)
    }

    /// Thm. 4.8 / Fig. 14: an SC refinement is implementable in a
    /// message-passing system only with the fork-free oracle Θ_F,k=1.
    pub fn message_passing_implementable(&self) -> bool {
        match self.criterion {
            CriterionKind::Eventual => true,
            CriterionKind::Strong => !self.oracle.allows_forks(),
        }
    }

    /// The label used in the paper's figures, e.g. `R(BT-ADT_SC, Θ_F,k=1)`.
    pub fn label(&self) -> String {
        let c = match self.criterion {
            CriterionKind::Strong => "SC",
            CriterionKind::Eventual => "EC",
        };
        format!("R(BT-ADT_{c}, {})", self.oracle)
    }
}

impl fmt::Display for RefinementClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The five nodes drawn in Figs. 8 and 14 (with `k>1` represented by a
/// concrete witness `k = 2` where a number is needed).
pub fn figure_nodes(k_gt_1: u32) -> Vec<RefinementClass> {
    assert!(k_gt_1 > 1, "witness for k>1 must exceed 1");
    vec![
        RefinementClass::new(CriterionKind::Strong, OracleModel::Frugal { k: 1 }),
        RefinementClass::new(CriterionKind::Strong, OracleModel::Frugal { k: k_gt_1 }),
        RefinementClass::new(CriterionKind::Strong, OracleModel::Prodigal),
        RefinementClass::new(CriterionKind::Eventual, OracleModel::Frugal { k: k_gt_1 }),
        RefinementClass::new(CriterionKind::Eventual, OracleModel::Prodigal),
    ]
}

/// A directed inclusion edge of Fig. 8, annotated with the theorem that
/// justifies it.
#[derive(Clone, Debug)]
pub struct HierarchyEdge {
    pub from: RefinementClass,
    pub to: RefinementClass,
    pub justification: &'static str,
}

/// The edges of Fig. 8 (inclusions between the five drawn nodes).
pub fn figure8_edges(k_gt_1: u32) -> Vec<HierarchyEdge> {
    let sc_k1 = RefinementClass::new(CriterionKind::Strong, OracleModel::Frugal { k: 1 });
    let sc_k = RefinementClass::new(CriterionKind::Strong, OracleModel::Frugal { k: k_gt_1 });
    let sc_p = RefinementClass::new(CriterionKind::Strong, OracleModel::Prodigal);
    let ec_k = RefinementClass::new(CriterionKind::Eventual, OracleModel::Frugal { k: k_gt_1 });
    let ec_p = RefinementClass::new(CriterionKind::Eventual, OracleModel::Prodigal);
    vec![
        HierarchyEdge {
            from: sc_k1,
            to: sc_k,
            justification: "Theorem 3.4",
        },
        HierarchyEdge {
            from: sc_k,
            to: sc_p,
            justification: "Theorem 3.3",
        },
        HierarchyEdge {
            from: ec_k,
            to: ec_p,
            justification: "Theorem 3.3",
        },
        HierarchyEdge {
            from: sc_k,
            to: ec_k,
            justification: "Corollary 3.4.1",
        },
        HierarchyEdge {
            from: sc_p,
            to: ec_p,
            justification: "Corollary 3.4.1",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_permissiveness() {
        let f1 = OracleModel::Frugal { k: 1 };
        let f2 = OracleModel::Frugal { k: 2 };
        let p = OracleModel::Prodigal;
        assert!(f1.at_most_as_permissive_as(&f1));
        assert!(f1.at_most_as_permissive_as(&f2));
        assert!(f2.at_most_as_permissive_as(&p));
        assert!(!f2.at_most_as_permissive_as(&f1));
        assert!(!p.at_most_as_permissive_as(&f2));
        assert!(p.at_most_as_permissive_as(&p));
    }

    #[test]
    fn fork_permission() {
        assert!(!OracleModel::Frugal { k: 1 }.allows_forks());
        assert!(OracleModel::Frugal { k: 2 }.allows_forks());
        assert!(OracleModel::Prodigal.allows_forks());
    }

    #[test]
    fn inclusion_partial_order() {
        let sc_k1 = RefinementClass::new(CriterionKind::Strong, OracleModel::Frugal { k: 1 });
        let ec_p = RefinementClass::new(CriterionKind::Eventual, OracleModel::Prodigal);
        let ec_k2 = RefinementClass::new(CriterionKind::Eventual, OracleModel::Frugal { k: 2 });
        // The bottom embeds everywhere.
        assert!(sc_k1.includes_into(&ec_p));
        assert!(sc_k1.includes_into(&ec_k2));
        assert!(sc_k1.includes_into(&sc_k1), "reflexive");
        // EC never includes into SC.
        assert!(!ec_p.includes_into(&sc_k1));
        assert!(!ec_k2.includes_into(&sc_k1));
    }

    #[test]
    fn figure8_edges_are_valid_inclusions() {
        for e in figure8_edges(2) {
            assert!(
                e.from.includes_into(&e.to),
                "{} ⊆ {} ({}) must hold",
                e.from,
                e.to,
                e.justification
            );
        }
    }

    #[test]
    fn inclusion_is_transitive_on_figure_nodes() {
        let nodes = figure_nodes(2);
        for a in &nodes {
            for b in &nodes {
                for c in &nodes {
                    if a.includes_into(b) && b.includes_into(c) {
                        assert!(a.includes_into(c), "{a} ⊆ {b} ⊆ {c} not transitive");
                    }
                }
            }
        }
    }

    #[test]
    fn figure14_greys_out_forking_sc() {
        let sc_k1 = RefinementClass::new(CriterionKind::Strong, OracleModel::Frugal { k: 1 });
        let sc_k2 = RefinementClass::new(CriterionKind::Strong, OracleModel::Frugal { k: 2 });
        let sc_p = RefinementClass::new(CriterionKind::Strong, OracleModel::Prodigal);
        let ec_p = RefinementClass::new(CriterionKind::Eventual, OracleModel::Prodigal);
        assert!(sc_k1.message_passing_implementable());
        assert!(!sc_k2.message_passing_implementable(), "Theorem 4.8");
        assert!(!sc_p.message_passing_implementable(), "Theorem 4.8");
        assert!(ec_p.message_passing_implementable());
    }

    #[test]
    fn labels_match_paper_notation() {
        let sc_k1 = RefinementClass::new(CriterionKind::Strong, OracleModel::Frugal { k: 1 });
        assert_eq!(sc_k1.label(), "R(BT-ADT_SC, Θ_F,k=1)");
        let ec_p = RefinementClass::new(CriterionKind::Eventual, OracleModel::Prodigal);
        assert_eq!(ec_p.label(), "R(BT-ADT_EC, Θ_P)");
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn figure_nodes_validates_witness() {
        figure_nodes(1);
    }
}
