//! The global append-only block arena and per-replica tree membership.
//!
//! Blocks are never removed or mutated: the BlockTree of §3.1 is an
//! *append-only* directed rooted tree. We exploit this by storing every block
//! of an execution in one arena (`BlockStore`) and representing each
//! replica's local BlockTree `bt_i` (§4.2) as a *membership set* over that
//! arena. Identity is global, so histories recorded at different replicas
//! can be compared directly (prefix tests, `mcps`) without renaming.
//!
//! Heights and cumulative work are memoized at insertion, making
//! `score`/ancestor queries cheap — an arena-with-indices layout as
//! recommended by the Rust Performance Book (no pointer graphs, no `Rc`
//! cycles).
//!
//! Every block additionally carries a *jump pointer* (Myers' skew-binary
//! ancestor scheme, O(1) extra work per `mint`): `jump[v]` points `d`
//! levels up, where `d` is a function of `height(v)` alone. This makes
//! `ancestor_at_height`, `is_ancestor`, and `common_ancestor` (the
//! block-level witness of the paper's `mcps`, §3.1.2) O(log n) instead of
//! O(depth) — the primitives the incremental selection path leans on.

use crate::block::{Block, Payload};
use crate::ids::{BlockId, ProcessId};

/// The per-block metadata every tree algorithm consumes: one lookup's
/// worth of the fields [`BlockView`] implementations memoize at mint time.
///
/// Returning this as one `Copy` value keeps [`BlockView`] object-safe and
/// lets lock-sharded stores answer a whole ancestry step with a single
/// shard acquisition instead of one lock round-trip per field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockMeta {
    /// Backward edge towards genesis (`None` only for `b0`).
    pub parent: Option<BlockId>,
    /// Distance to the root.
    pub height: u32,
    /// This block's own work weight.
    pub work: u64,
    /// Total work on the genesis→block path (inclusive).
    pub cum_work: u64,
    /// Deterministic content digest (lexicographic tie-breaks).
    pub digest: u64,
    /// Skew-binary jump pointer (distance a function of height alone).
    pub jump: BlockId,
}

/// Read access to an arena of blocks — the store abstraction the selection
/// functions, chain cache, validity predicates, and history checkers run
/// over.
///
/// Two implementations ship: the single-owner [`BlockStore`] and the
/// lock-sharded [`ShardedStore`](crate::concurrent::ShardedStore) behind
/// [`ConcurrentBlockTree`](crate::concurrent::ConcurrentBlockTree). The
/// trait is object-safe (`&dyn BlockView`) so `SelectionFn` stays a
/// trait object; `&BlockStore` coerces at every existing call site.
///
/// The provided ancestry algorithms (`ancestor_at`, `is_ancestor`,
/// `common_ancestor`) are the same O(log n) skew-binary-jump walks as the
/// `BlockStore` originals; implementations may override them when they
/// can answer faster (as `BlockStore` does, skipping the `BlockMeta`
/// round-trips).
pub trait BlockView: Sync {
    /// Number of block ids allocated so far (including genesis). Ids in
    /// `0..block_count()` are allocated, but for concurrent stores an id
    /// may be mid-mint — gate reads on [`has_block`](Self::has_block) or
    /// on tree membership.
    fn block_count(&self) -> usize;

    /// Whether `id` names a fully minted block.
    fn has_block(&self, id: BlockId) -> bool;

    /// The memoized metadata of a minted block. Panics on ids that are
    /// not fully minted (a cross-store mixup or a read of a mid-mint id —
    /// both bugs).
    fn meta(&self, id: BlockId) -> BlockMeta;

    /// Calls `f` with the full block (payload included). Sharded
    /// implementations hold the owning shard lock for the duration of
    /// `f`, so `f` must not call back into the store.
    fn with_block(&self, id: BlockId, f: &mut dyn FnMut(&Block));

    /// Calls `f` for every block minted directly under `id`, in minting
    /// order. Implementations release any internal locks before invoking
    /// `f`, so `f` may query the store.
    fn for_each_child(&self, id: BlockId, f: &mut dyn FnMut(BlockId));

    /// Owned copy of a block (for callers that need to hold it across
    /// further store queries).
    fn block(&self, id: BlockId) -> Block {
        let mut out = None;
        self.with_block(id, &mut |b| out = Some(b.clone()));
        out.expect("with_block invokes its callback")
    }

    /// Parent of `id` (`None` for genesis).
    fn parent(&self, id: BlockId) -> Option<BlockId> {
        self.meta(id).parent
    }

    /// Height of `id` (genesis = 0).
    fn height(&self, id: BlockId) -> u32 {
        self.meta(id).height
    }

    /// Total work on the genesis→`id` path (inclusive of `id`).
    fn cumulative_work(&self, id: BlockId) -> u64 {
        self.meta(id).cum_work
    }

    /// The block's deterministic digest.
    fn digest_of(&self, id: BlockId) -> u64 {
        self.meta(id).digest
    }

    /// The block's own work weight.
    fn work_of(&self, id: BlockId) -> u64 {
        self.meta(id).work
    }

    /// The ancestor of `id` at exactly `height` (≤ `height(id)`).
    /// O(log n) via the skew-binary jump pointers.
    fn ancestor_at(&self, id: BlockId, height: u32) -> BlockId {
        let mut m = self.meta(id);
        assert!(
            height <= m.height,
            "requested height {height} above block at {}",
            m.height
        );
        let mut cur = id;
        while m.height > height {
            let jm = self.meta(m.jump);
            if jm.height >= height {
                cur = m.jump;
                m = jm;
            } else {
                cur = m.parent.expect("above genesis, parent exists");
                m = self.meta(cur);
            }
        }
        cur
    }

    /// True iff `a` lies on the genesis→`b` path (reflexively). O(log n).
    fn is_ancestor(&self, a: BlockId, b: BlockId) -> bool {
        let (ha, hb) = (self.height(a), self.height(b));
        if ha > hb {
            return false;
        }
        self.ancestor_at(b, ha) == a
    }

    /// Deepest common ancestor of `a` and `b`. O(log n): heights are
    /// equalized, then both cursors jump in lockstep (equal heights have
    /// equal jump distances).
    fn common_ancestor(&self, a: BlockId, b: BlockId) -> BlockId {
        let (ha, hb) = (self.height(a), self.height(b));
        let (mut x, mut y) = if ha <= hb {
            (a, self.ancestor_at(b, ha))
        } else {
            (self.ancestor_at(a, hb), b)
        };
        while x != y {
            let (mx, my) = (self.meta(x), self.meta(y));
            if mx.jump != my.jump {
                x = mx.jump;
                y = my.jump;
            } else {
                x = mx.parent.expect("disjoint roots");
                y = my.parent.expect("disjoint roots");
            }
        }
        x
    }

    /// Materializes the genesis→`tip` path, genesis first.
    fn path_from_genesis(&self, tip: BlockId) -> Vec<BlockId> {
        let mut out = Vec::with_capacity(self.height(tip) as usize + 1);
        let mut cur = Some(tip);
        while let Some(id) = cur {
            out.push(id);
            cur = self.parent(id);
        }
        out.reverse();
        out
    }
}

/// Append-only arena of all blocks minted during an execution.
///
/// Slot 0 always holds the genesis block `b0`, which is valid by assumption
/// (§3.1: `b0 ∈ B'`).
#[derive(Clone, Debug)]
pub struct BlockStore {
    blocks: Vec<Block>,
    /// children[i] = blocks whose parent is block i (forward edges; the
    /// paper's tree has backward edges only, children lists are an index).
    children: Vec<Vec<BlockId>>,
    /// cumulative work along the path from genesis (inclusive).
    cum_work: Vec<u64>,
    /// Skew-binary jump pointers: `jump[i]` is an ancestor of block i whose
    /// distance depends only on `height(i)` (genesis points at itself).
    jump: Vec<BlockId>,
    /// Placeholder slots adopted *past* a skipped mid-mint id (see
    /// `SnapshotCache` gap adoption): the id is allocated in the source
    /// arena but its mint never completed when the snapshot caught up, so
    /// a hole keeps the id numbering dense without stalling the adoptable
    /// prefix. Holes have no children, are excluded from `has_block`, and
    /// are filled in place if the straggler mint completes later.
    /// Normally empty (`BTreeSet::contains` is gated on a len check).
    holes: std::collections::BTreeSet<u32>,
}

impl BlockStore {
    /// Creates a store holding only the genesis block.
    pub fn new() -> Self {
        let genesis = Block {
            id: BlockId::GENESIS,
            parent: None,
            height: 0,
            producer: ProcessId(u32::MAX), // no producer: exists by assumption
            merit_index: u32::MAX,
            work: 0,
            digest: 0x0067_656E_6573_6973, // "genesis"
            payload: Payload::Empty,
        };
        BlockStore {
            blocks: vec![genesis],
            children: vec![Vec::new()],
            cum_work: vec![0],
            jump: vec![BlockId::GENESIS],
            holes: std::collections::BTreeSet::new(),
        }
    }

    /// Number of blocks (including genesis).
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store holds no blocks. Always `false` in practice —
    /// `new()` installs genesis and nothing is ever removed — but answered
    /// honestly from the arena rather than hardcoded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Mints a new block under `parent` and returns its id.
    ///
    /// Panics if `parent` is not in the store: the BlockTree grows only by
    /// chaining to existing vertices (§3.2: "the new block must be closely
    /// related to an already existing valid block").
    pub fn mint(
        &mut self,
        parent: BlockId,
        producer: ProcessId,
        merit_index: u32,
        work: u64,
        nonce: u64,
        payload: Payload,
    ) -> BlockId {
        let parent_block = self.get(parent);
        let height = parent_block.height + 1;
        let digest = Block::compute_digest(parent_block.digest, producer, nonce, &payload);
        let id = BlockId(self.blocks.len() as u32);
        let cum = self.cum_work[parent.index()] + work;
        self.blocks.push(Block {
            id,
            parent: Some(parent),
            height,
            producer,
            merit_index,
            work,
            digest,
            payload,
        });
        self.children.push(Vec::new());
        self.cum_work.push(cum);
        let jump = jump_for_child(self, parent);
        self.jump.push(jump);
        self.children[parent.index()].push(id);
        id
    }

    /// Immutable access to a block. Panics on out-of-range ids (ids are only
    /// produced by `mint`, so this indicates a cross-store mixup — a bug).
    #[inline]
    pub fn get(&self, id: BlockId) -> &Block {
        debug_assert!(
            !self.is_hole(id),
            "read of hole {id}: the id was skipped mid-mint and never filled"
        );
        &self.blocks[id.index()]
    }

    /// Checked access.
    #[inline]
    pub fn try_get(&self, id: BlockId) -> Option<&Block> {
        self.blocks.get(id.index())
    }

    /// Parent of `id` (`None` for genesis).
    #[inline]
    pub fn parent(&self, id: BlockId) -> Option<BlockId> {
        self.get(id).parent
    }

    /// Height of `id` (genesis = 0).
    #[inline]
    pub fn height(&self, id: BlockId) -> u32 {
        self.get(id).height
    }

    /// Total work on the genesis→`id` path (inclusive of `id`).
    #[inline]
    pub fn cumulative_work(&self, id: BlockId) -> u64 {
        self.cum_work[id.index()]
    }

    /// Forward edges: blocks minted directly under `id`.
    #[inline]
    pub fn children(&self, id: BlockId) -> &[BlockId] {
        &self.children[id.index()]
    }

    /// All block ids, in minting order.
    pub fn ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Walks `steps` edges towards the root. O(log n) via jump pointers.
    pub fn ancestor(&self, id: BlockId, steps: u32) -> BlockId {
        let h = self.height(id);
        assert!(steps <= h, "walked past genesis");
        self.ancestor_at(id, h - steps)
    }

    /// The ancestor of `id` at exactly `height`, which must not exceed
    /// `height(id)`. O(log n): each loop iteration either takes the jump
    /// pointer (skew-binary distances) or one parent edge.
    pub fn ancestor_at(&self, id: BlockId, height: u32) -> BlockId {
        let h = self.height(id);
        assert!(height <= h, "requested height {height} above block at {h}");
        let mut cur = id;
        while self.height(cur) > height {
            let j = self.jump[cur.index()];
            cur = if self.height(j) >= height {
                j
            } else {
                self.parent(cur).expect("above genesis, parent exists")
            };
        }
        cur
    }

    /// Alias of [`ancestor_at`](Self::ancestor_at), kept for callers that
    /// read better with the explicit name.
    #[inline]
    pub fn ancestor_at_height(&self, id: BlockId, height: u32) -> BlockId {
        self.ancestor_at(id, height)
    }

    /// True iff `a` lies on the genesis→`b` path (reflexively). O(log n).
    pub fn is_ancestor(&self, a: BlockId, b: BlockId) -> bool {
        let (ha, hb) = (self.height(a), self.height(b));
        if ha > hb {
            return false;
        }
        self.ancestor_at(b, ha) == a
    }

    /// Deepest common ancestor of `a` and `b` (exists: the tree is rooted).
    ///
    /// This is the block-level witness of the paper's `mcps(bc, bc')`
    /// (§3.1.2): the maximal common prefix of the two chains is exactly the
    /// genesis→`common_ancestor` path, so `mcps` under any score function
    /// is `score(chain of common_ancestor)`. O(log n): heights are
    /// equalized with `ancestor_at`, then both cursors jump in lockstep —
    /// equal heights have equal jump distances, so the jumps stay aligned.
    pub fn common_ancestor(&self, a: BlockId, b: BlockId) -> BlockId {
        let (ha, hb) = (self.height(a), self.height(b));
        let (mut x, mut y) = if ha <= hb {
            (a, self.ancestor_at(b, ha))
        } else {
            (self.ancestor_at(a, hb), b)
        };
        while x != y {
            let (jx, jy) = (self.jump[x.index()], self.jump[y.index()]);
            if jx != jy {
                // The common ancestor is at or above the jump target:
                // leaping both cursors cannot overshoot it.
                x = jx;
                y = jy;
            } else {
                x = self.parent(x).expect("disjoint roots");
                y = self.parent(y).expect("disjoint roots");
            }
        }
        x
    }

    /// Materializes the genesis→`tip` path, genesis first.
    pub fn path_from_genesis(&self, tip: BlockId) -> Vec<BlockId> {
        let mut out = Vec::with_capacity(self.height(tip) as usize + 1);
        let mut cur = Some(tip);
        while let Some(id) = cur {
            out.push(id);
            cur = self.parent(id);
        }
        out.reverse();
        out
    }

    /// Iterates `tip`, parent(tip), …, genesis.
    pub fn ancestors(&self, tip: BlockId) -> Ancestors<'_> {
        Ancestors {
            store: self,
            cur: Some(tip),
        }
    }

    /// Adopts a fully formed block minted elsewhere (same digest, same id
    /// numbering), recomputing the memoized indices. Used to materialize a
    /// sequential snapshot of a concurrent arena (ids must arrive in
    /// order, exactly as `mint` would have assigned them).
    pub(crate) fn adopt(&mut self, block: Block) {
        assert_eq!(block.id.index(), self.blocks.len(), "adopt out of id order");
        let parent = block.parent.expect("only non-genesis blocks are adopted");
        assert_eq!(block.height, self.height(parent) + 1, "height mismatch");
        let id = block.id;
        let cum = self.cum_work[parent.index()] + block.work;
        self.blocks.push(block);
        self.children.push(Vec::new());
        self.cum_work.push(cum);
        let jump = jump_for_child(self, parent);
        self.jump.push(jump);
        self.children[parent.index()].push(id);
    }

    /// Adopts a *placeholder* for the next id: the source arena allocated
    /// it but the mint never completed (a leapfrogged mid-mint straggler
    /// or a mint whose `P` panicked). Keeps the id numbering dense so
    /// adoption can continue past the gap; [`fill_hole`](Self::fill_hole)
    /// replaces the placeholder if the mint lands later.
    pub(crate) fn adopt_hole(&mut self) {
        let id = self.blocks.len() as u32;
        self.blocks.push(Block {
            id: BlockId(id),
            parent: None,
            height: 0,
            producer: ProcessId(u32::MAX),
            merit_index: u32::MAX,
            work: 0,
            digest: 0x686F_6C65, // "hole"
            payload: Payload::Empty,
        });
        self.children.push(Vec::new());
        self.cum_work.push(0);
        self.jump.push(BlockId(id));
        self.holes.insert(id);
    }

    /// Fills a hole with the straggler block that finally completed its
    /// mint. The parent must already be real (callers fill ascending, and
    /// a completed child implies its whole ancestor chain completed).
    /// The parent's child list stays id-sorted — the order adoption
    /// produces for in-order arrivals.
    pub(crate) fn fill_hole(&mut self, block: Block) {
        let id = block.id;
        assert!(self.holes.remove(&id.0), "fill of non-hole {id}");
        let parent = block.parent.expect("only non-genesis blocks are adopted");
        assert!(!self.is_hole(parent), "hole {id} filled before its parent");
        assert_eq!(block.height, self.height(parent) + 1, "height mismatch");
        self.cum_work[id.index()] = self.cum_work[parent.index()] + block.work;
        self.blocks[id.index()] = block;
        self.jump[id.index()] = jump_for_child(self, parent);
        let kids = &mut self.children[parent.index()];
        let pos = kids.partition_point(|&c| c < id);
        kids.insert(pos, id);
    }

    /// Whether `id` is a placeholder slot (skipped mid-mint id).
    #[inline]
    pub fn is_hole(&self, id: BlockId) -> bool {
        !self.holes.is_empty() && self.holes.contains(&id.0)
    }

    /// Number of placeholder slots. Zero on quiescent snapshots.
    #[inline]
    pub fn hole_count(&self) -> usize {
        self.holes.len()
    }

    /// The hole ids, ascending (owned, so callers may fill while walking).
    pub(crate) fn hole_ids(&self) -> Vec<u32> {
        self.holes.iter().copied().collect()
    }
}

/// The skew-binary jump pointer (Myers) for a child of `parent`: if the
/// parent's two previous jumps span equal distances, leap past both,
/// otherwise step to the parent. The resulting jump distance depends only
/// on the child's height, so two blocks at equal height always jump to
/// equal heights — the property the O(log n) `common_ancestor` walk relies
/// on.
///
/// Every minting path — `BlockStore::mint`, `BlockStore::adopt`, and the
/// concurrent `ShardedStore::mint` — must produce bit-identical jump
/// pointers (the snapshot bridge and the differential suites depend on
/// it), so they all call this one helper.
pub(crate) fn jump_for_child(view: &dyn BlockView, parent: BlockId) -> BlockId {
    let pm = view.meta(parent);
    let m1 = view.meta(pm.jump);
    if pm.height - m1.height == m1.height - view.meta(m1.jump).height {
        m1.jump
    } else {
        parent
    }
}

impl BlockView for BlockStore {
    fn block_count(&self) -> usize {
        self.blocks.len()
    }

    fn has_block(&self, id: BlockId) -> bool {
        id.index() < self.blocks.len() && !self.is_hole(id)
    }

    fn meta(&self, id: BlockId) -> BlockMeta {
        let b = self.get(id);
        BlockMeta {
            parent: b.parent,
            height: b.height,
            work: b.work,
            cum_work: self.cum_work[id.index()],
            digest: b.digest,
            jump: self.jump[id.index()],
        }
    }

    fn with_block(&self, id: BlockId, f: &mut dyn FnMut(&Block)) {
        f(self.get(id));
    }

    fn for_each_child(&self, id: BlockId, f: &mut dyn FnMut(BlockId)) {
        for &c in &self.children[id.index()] {
            f(c);
        }
    }

    // Fast-path overrides: skip the `BlockMeta` round-trips and reuse the
    // direct arena walks.
    fn parent(&self, id: BlockId) -> Option<BlockId> {
        BlockStore::parent(self, id)
    }

    fn height(&self, id: BlockId) -> u32 {
        BlockStore::height(self, id)
    }

    fn cumulative_work(&self, id: BlockId) -> u64 {
        BlockStore::cumulative_work(self, id)
    }

    fn digest_of(&self, id: BlockId) -> u64 {
        self.get(id).digest
    }

    fn work_of(&self, id: BlockId) -> u64 {
        self.get(id).work
    }

    fn ancestor_at(&self, id: BlockId, height: u32) -> BlockId {
        BlockStore::ancestor_at(self, id, height)
    }

    fn is_ancestor(&self, a: BlockId, b: BlockId) -> bool {
        BlockStore::is_ancestor(self, a, b)
    }

    fn common_ancestor(&self, a: BlockId, b: BlockId) -> BlockId {
        BlockStore::common_ancestor(self, a, b)
    }

    fn path_from_genesis(&self, tip: BlockId) -> Vec<BlockId> {
        BlockStore::path_from_genesis(self, tip)
    }
}

impl Default for BlockStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Iterator over the backward path from a block to the root.
pub struct Ancestors<'s> {
    store: &'s BlockStore,
    cur: Option<BlockId>,
}

impl Iterator for Ancestors<'_> {
    type Item = BlockId;

    fn next(&mut self) -> Option<BlockId> {
        let id = self.cur?;
        self.cur = self.store.parent(id);
        Some(id)
    }
}

/// A replica's view of which globally minted blocks it has locally inserted
/// (its `bt_i`). Must stay *parent-closed*: a block may only be inserted
/// after its parent (enforced in debug builds).
///
/// Maintains a leaves cache (ordered for determinism): parent-closed
/// insertion means a block's children always arrive after it, so `insert`
/// can keep the leaf set exact in O(log n) — selection functions then scan
/// O(#leaves) instead of O(#blocks).
#[derive(Clone, Debug)]
pub struct TreeMembership {
    present: Vec<bool>,
    count: usize,
    leaves: std::collections::BTreeSet<BlockId>,
}

impl TreeMembership {
    /// A membership containing only genesis.
    pub fn genesis_only() -> Self {
        TreeMembership {
            present: vec![true],
            count: 1,
            leaves: std::iter::once(BlockId::GENESIS).collect(),
        }
    }

    /// A membership containing every block currently in `store`.
    pub fn full(store: &BlockStore) -> Self {
        let leaves = store
            .ids()
            .filter(|&id| store.children(id).is_empty())
            .collect();
        TreeMembership {
            present: vec![true; store.len()],
            count: store.len(),
            leaves,
        }
    }

    /// Number of member blocks.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// True iff `id` is a member.
    #[inline]
    pub fn contains(&self, id: BlockId) -> bool {
        self.present.get(id.index()).copied().unwrap_or(false)
    }

    /// Inserts `id`; returns whether it was newly inserted.
    ///
    /// Debug-asserts parent-closure with respect to `store`.
    pub fn insert(&mut self, store: &dyn BlockView, id: BlockId) -> bool {
        self.insert_with_parent(store.parent(id), id)
    }

    /// [`insert`](Self::insert) for a caller that already knows `id`'s
    /// parent — skips the store lookup (a shard-lock crossing on the
    /// concurrent store, which the commit hot path calls once per
    /// append). The caller vouches that `parent` *is* `id`'s parent.
    pub fn insert_with_parent(&mut self, parent: Option<BlockId>, id: BlockId) -> bool {
        debug_assert!(
            parent.map(|p| self.contains(p)).unwrap_or(true),
            "membership must be parent-closed: {id} inserted before its parent"
        );
        if self.present.len() <= id.index() {
            self.present.resize(id.index() + 1, false);
        }
        if self.present[id.index()] {
            false
        } else {
            self.present[id.index()] = true;
            self.count += 1;
            // Leaf bookkeeping: the new block is a leaf (its children, if
            // minted, cannot be members yet by parent-closure); its parent
            // stops being one.
            if let Some(p) = parent {
                self.leaves.remove(&p);
            }
            self.leaves.insert(id);
            true
        }
    }

    /// Member blocks with no member children: the leaves of `bt_i`
    /// (cached; O(#leaves) to materialize, deterministic order).
    pub fn leaves(&self, store: &dyn BlockView) -> Vec<BlockId> {
        debug_assert!(
            self.leaves.iter().all(|&l| {
                let mut member_child = false;
                store.for_each_child(l, &mut |c| member_child |= self.contains(c));
                self.contains(l) && !member_child
            }),
            "leaves cache out of sync"
        );
        self.leaves.iter().copied().collect()
    }

    /// Iterates all member ids in minting order.
    pub fn iter<'a>(&'a self, store: &'a dyn BlockView) -> impl Iterator<Item = BlockId> + 'a {
        (0..store.block_count() as u32)
            .map(BlockId)
            .filter(move |&id| self.contains(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_store(n: u32) -> (BlockStore, Vec<BlockId>) {
        let mut s = BlockStore::new();
        let mut ids = vec![BlockId::GENESIS];
        for i in 0..n {
            let prev = *ids.last().unwrap();
            ids.push(s.mint(prev, ProcessId(0), 0, 1, i as u64, Payload::Empty));
        }
        (s, ids)
    }

    #[test]
    fn genesis_is_slot_zero() {
        let s = BlockStore::new();
        assert_eq!(s.len(), 1);
        assert!(s.get(BlockId::GENESIS).is_genesis());
        assert_eq!(s.height(BlockId::GENESIS), 0);
        assert_eq!(s.cumulative_work(BlockId::GENESIS), 0);
    }

    #[test]
    fn mint_links_and_memoizes() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(1), 0, 5, 0, Payload::Empty);
        let b = s.mint(a, ProcessId(2), 1, 7, 1, Payload::Empty);
        assert_eq!(s.parent(b), Some(a));
        assert_eq!(s.height(b), 2);
        assert_eq!(s.cumulative_work(b), 12);
        assert_eq!(s.children(BlockId::GENESIS), &[a]);
        assert_eq!(s.children(a), &[b]);
        assert_eq!(s.get(b).producer, ProcessId(2));
        assert_eq!(s.get(b).merit_index, 1);
    }

    #[test]
    fn ancestor_walks() {
        let (s, ids) = linear_store(10);
        assert_eq!(s.ancestor(ids[10], 10), BlockId::GENESIS);
        assert_eq!(s.ancestor_at_height(ids[10], 4), ids[4]);
        assert!(s.is_ancestor(ids[3], ids[9]));
        assert!(s.is_ancestor(ids[9], ids[9]));
        assert!(!s.is_ancestor(ids[9], ids[3]));
    }

    #[test]
    fn common_ancestor_on_fork() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        let b1 = s.mint(a, ProcessId(0), 0, 1, 1, Payload::Empty);
        let b2 = s.mint(a, ProcessId(1), 1, 1, 2, Payload::Empty);
        let c1 = s.mint(b1, ProcessId(0), 0, 1, 3, Payload::Empty);
        assert_eq!(s.common_ancestor(c1, b2), a);
        assert_eq!(s.common_ancestor(b1, b2), a);
        assert_eq!(s.common_ancestor(c1, b1), b1);
        assert_eq!(s.common_ancestor(c1, c1), c1);
        assert_eq!(s.common_ancestor(c1, BlockId::GENESIS), BlockId::GENESIS);
    }

    #[test]
    fn path_from_genesis_is_ordered() {
        let (s, ids) = linear_store(5);
        let path = s.path_from_genesis(ids[5]);
        assert_eq!(path, ids);
        assert_eq!(path[0], BlockId::GENESIS);
    }

    #[test]
    fn ancestors_iterator() {
        let (s, ids) = linear_store(3);
        let back: Vec<_> = s.ancestors(ids[3]).collect();
        assert_eq!(back, vec![ids[3], ids[2], ids[1], ids[0]]);
    }

    #[test]
    fn membership_insert_and_leaves() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        let b1 = s.mint(a, ProcessId(0), 0, 1, 1, Payload::Empty);
        let b2 = s.mint(a, ProcessId(1), 1, 1, 2, Payload::Empty);

        let mut m = TreeMembership::genesis_only();
        assert_eq!(m.leaves(&s), vec![BlockId::GENESIS]);
        assert!(m.insert(&s, a));
        assert!(!m.insert(&s, a), "double insert reports false");
        assert!(m.insert(&s, b1));
        assert_eq!(m.len(), 3);
        assert!(m.contains(b1));
        assert!(!m.contains(b2));
        assert_eq!(m.leaves(&s), vec![b1]);

        assert!(m.insert(&s, b2));
        let mut leaves = m.leaves(&s);
        leaves.sort();
        assert_eq!(leaves, vec![b1, b2]);
    }

    #[test]
    fn membership_full_tracks_store() {
        let (s, _) = linear_store(4);
        let m = TreeMembership::full(&s);
        assert_eq!(m.len(), 5);
        assert_eq!(m.iter(&s).count(), 5);
    }

    #[test]
    fn holes_are_invisible_until_filled() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        s.adopt_hole(); // id 2 skipped mid-mint
        let c = s.mint(a, ProcessId(1), 0, 3, 2, Payload::Empty);
        let hole = BlockId(2);

        assert_eq!(s.len(), 4);
        assert_eq!(s.hole_count(), 1);
        assert!(s.is_hole(hole));
        assert!(!s.has_block(hole));
        assert!(s.has_block(c));
        // The leapfrogging child is fully usable while the gap is open.
        assert_eq!(s.parent(c), Some(a));
        assert_eq!(s.ancestor(c, 2), BlockId::GENESIS);

        // The straggler mint finally lands: same id, parent `a`.
        let digest = Block::compute_digest(s.get(a).digest, ProcessId(2), 9, &Payload::Empty);
        s.fill_hole(Block {
            id: hole,
            parent: Some(a),
            height: 2,
            producer: ProcessId(2),
            merit_index: 1,
            work: 5,
            digest,
            payload: Payload::Empty,
        });

        assert_eq!(s.hole_count(), 0);
        assert!(s.has_block(hole));
        assert_eq!(s.cumulative_work(hole), 6);
        assert_eq!(s.children(a), &[hole, c], "child list stays id-sorted");
        assert_eq!(s.ancestor(hole, 2), BlockId::GENESIS);
        assert_eq!(s.common_ancestor(hole, c), a);
    }

    #[test]
    #[should_panic(expected = "parent-closed")]
    #[cfg(debug_assertions)]
    fn membership_rejects_orphan_insert() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        let b = s.mint(a, ProcessId(0), 0, 1, 1, Payload::Empty);
        let mut m = TreeMembership::genesis_only();
        m.insert(&s, b); // parent a missing
    }
}
