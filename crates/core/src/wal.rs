//! Durable commit log: a segmented append-only WAL with group-commit
//! fsync batching, checkpoint compaction, and torn-tail recovery.
//!
//! The BT-ADT's correctness story (Thm. 4.2) is stated over a shared
//! object that survives its processes; an in-memory commit log does not.
//! This module is the storage half of the durability layer: it persists
//! the [`ConcurrentBlockTree`](crate::concurrent::ConcurrentBlockTree)
//! commit log — one [`CommitRecord`] per committed block, in commit
//! order — so a crashed process can rebuild the arena, jump pointers,
//! `ChainCache`, and commit generation by replaying it (the replay lives
//! in `crate::concurrent`; this module only moves bytes).
//!
//! # On-disk layout
//!
//! A WAL directory holds:
//!
//! * **Segments** `NNNNNNNNNNNN.wal` — append-only files of CRC-framed
//!   records, named by the global commit-log index of their first record
//!   (zero-padded decimal, so lexicographic order is replay order). The
//!   highest-named segment is *active*; the rest are *sealed*.
//! * **Checkpoint** `checkpoint.ckpt` — a header (magic + record count)
//!   followed by the first `count` commit records, re-framed. Written to
//!   a temp file, fsynced, then atomically renamed: a checkpoint is
//!   all-or-nothing, never torn.
//!
//! Each record is framed as `[len: u32 LE][crc32(body): u32 LE][body]`.
//! The CRC is over the body only; the length field is implicitly checked
//! by the CRC failing when it lies.
//!
//! # Durability contract
//!
//! * [`Wal::append_commits`] writes a whole batch of records with one
//!   `write` and **one** `fdatasync` — group commit. The caller (the
//!   batch drainer in `crate::concurrent`) invokes it once per
//!   publication, so a drained batch of B appends costs one fsync no
//!   matter B (persist-then-ack: the caller responds to appenders only
//!   after this returns).
//! * Rolling to a fresh segment fsyncs the *directory* before any record
//!   lands in the new file, so a recovered directory listing never
//!   misses a segment holding acked records.
//! * A crash mid-`append_commits` leaves a **torn tail**: a final frame
//!   with a short body or a CRC mismatch. [`Wal::open`] trims it (the
//!   records it held were never acked) and resumes appending at the trim
//!   point. A bad frame anywhere *other* than the tail of the active
//!   segment is real corruption and fails recovery loudly.
//! * [`Wal::checkpoint`] compacts: it snapshots a finalized prefix and
//!   deletes the sealed segments that prefix fully covers. Deletion need
//!   not be durable — a leftover covered segment is skipped on replay by
//!   its (too low) start index. The prefix bound comes from the caller,
//!   which derives it from the [`FinalityWatermark`](crate::commit::FinalityWatermark)
//!   flatten target: only storage-final entries are checkpointed, so
//!   compaction never races the live suffix.
//!
//! # Failure semantics
//!
//! Every byte this module moves goes through the [`crate::vfs`] seam
//! (carried by [`WalConfig::vfs`]); the discipline lint rejects direct
//! `std::fs` IO here outside the test module. Failures are classified,
//! not panicked on:
//!
//! * **Data-path persist failures poison the log.** After a failed
//!   `write` (other than EINTR) or *any* failed fsync on the append
//!   path, [`Wal::poisoned`] turns true and every further append is
//!   refused. The fsync rule is deliberate ("fsyncgate"): a failed
//!   fsync may have dropped the dirty pages and cleared the kernel
//!   error state, so a retry that succeeds proves nothing about the
//!   bytes that mattered — retrying fsync on a dirty file and calling
//!   it durable is how databases lose acked data. The owning tree
//!   surfaces this as [`DurabilityError`] and degrades to read-only.
//! * **EINTR is transient**: the write is retried (bounded, with
//!   backoff, counted in [`WalStats::eintr_retries`]).
//! * **Segment rotation failures are non-fatal**: ENOSPC/EINTR on the
//!   `create_new` + directory-fsync pair is retried a bounded number of
//!   times; persistent failure leaves the log appending to the
//!   oversized active segment (counted, retried at the next batch).
//! * **Checkpoint failures are non-fatal**: the log merely stays
//!   uncompacted. They are counted in [`WalStats::checkpoint_failures`]
//!   (and failed segment unlinks in
//!   [`WalStats::segment_unlink_failures`]) with the last error kind
//!   queryable via [`WalStats::last_error`].

use crate::block::{Payload, Tx};
use crate::ids::{BlockId, ProcessId};
use crate::vfs::{StdVfs, Vfs, VfsFile, ENOSPC};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Default segment roll threshold (bytes).
pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

/// Default records between checkpoints (see [`Wal::wants_checkpoint`]).
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 8192;

const CKPT_NAME: &str = "checkpoint.ckpt";
const CKPT_TMP: &str = "checkpoint.tmp";
const CKPT_MAGIC: &[u8; 8] = b"BTWALCK1";

/// Upper bound on a single record body — anything larger is a corrupt
/// length field, not a block.
const MAX_RECORD_BYTES: usize = 1 << 28;

/// Bounded retry policy for transient errors (EINTR on writes).
const MAX_EINTR_RETRIES: u32 = 8;
/// Attempts per segment rotation before giving up (non-fatally).
const MAX_ROLL_ATTEMPTS: u32 = 3;

fn backoff(attempt: u32) -> Duration {
    Duration::from_micros(50u64 << attempt.min(6))
}

/// Errors worth retrying on the *rotation* path. Classified by raw OS
/// code where the kind is unstable across toolchains.
fn is_transient(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::Interrupted || e.raw_os_error() == Some(ENOSPC)
}

/// Why a durable tree refused (or failed) to persist: the typed,
/// non-panicking surface of storage failure. Returned by
/// `ConcurrentBlockTree::append`/`graft` (and `propose` downstream) on a
/// durable tree whose WAL can no longer guarantee persist-then-ack.
///
/// Once poisoned, the tree is read-only: reads keep serving the last
/// published (and persisted) state, but no new commit is ever
/// acknowledged — an unpersistable ack would break Thm. 4.2's durability
/// story outright.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DurabilityError {
    /// An earlier persist failure already poisoned the log; this
    /// operation was refused without touching storage.
    Poisoned,
    /// The persist attempt covering this operation failed (the recorded
    /// kind is also queryable via [`WalStats::last_error`]).
    PersistFailed {
        /// Kind of the underlying IO error.
        kind: io::ErrorKind,
    },
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Poisoned => {
                write!(
                    f,
                    "wal poisoned by an earlier persist failure; tree is read-only"
                )
            }
            DurabilityError::PersistFailed { kind } => {
                write!(
                    f,
                    "wal persist failed ({kind:?}); tree degraded to read-only"
                )
            }
        }
    }
}

impl std::error::Error for DurabilityError {}

/// Configuration of a WAL directory.
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Directory holding segments and the checkpoint (created on open).
    pub dir: PathBuf,
    /// Roll to a fresh segment once the active one exceeds this.
    pub segment_bytes: u64,
    /// Whether appends fsync (`fdatasync`) before returning. `false`
    /// trades crash durability for throughput — the bench uses it to
    /// decompose the WAL tax; real trees keep it on.
    pub fsync: bool,
    /// Floor on new records between checkpoints. The effective gate is
    /// geometric (`max(interval, covered/2)` new records), so rewriting
    /// the prefix stays amortized O(1) per record over the log's life.
    pub checkpoint_interval: u64,
    /// The VFS seam every IO operation flows through. [`StdVfs`] (a
    /// zero-cost passthrough) by default; swap in a
    /// [`FaultVfs`](crate::vfs::FaultVfs) to inject storage faults.
    pub vfs: Arc<dyn Vfs>,
}

impl WalConfig {
    /// Defaults: 1 MiB segments, fsync on, checkpoint every 8192 records.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            fsync: true,
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
            vfs: Arc::new(StdVfs),
        }
    }

    /// Routes all WAL IO through `vfs` (see [`crate::vfs`]).
    pub fn vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = vfs;
        self
    }

    /// Sets the segment roll threshold.
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }

    /// Disables fsync on the append path (bench decomposition only).
    pub fn no_fsync(mut self) -> Self {
        self.fsync = false;
        self
    }

    /// Sets the checkpoint interval floor.
    pub fn checkpoint_interval(mut self, records: u64) -> Self {
        self.checkpoint_interval = records;
        self
    }
}

/// Counters of WAL activity since open — the bench reads these to report
/// fsync batching (records per fsync = the group-commit win).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Commit records appended (excludes checkpoint rewrites).
    pub records: u64,
    /// Bytes appended to segments.
    pub bytes: u64,
    /// `fdatasync`/`fsync` calls issued (appends + checkpoints + rolls).
    pub fsyncs: u64,
    /// Segments sealed by a roll.
    pub segments_rolled: u64,
    /// Sealed segments deleted by compaction.
    pub segments_dropped: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Torn-tail bytes trimmed by the last `open`.
    pub trimmed_bytes: u64,
    /// Whether the last `open` found a corrupt checkpoint and fell back
    /// to replaying the full segment log.
    pub checkpoint_ignored: bool,
    /// Checkpoint attempts whose IO failed (non-fatal: the log stays
    /// uncompacted; see [`Wal::fail_checkpoint`]).
    pub checkpoint_failures: u64,
    /// Pruned-segment unlinks that failed (non-fatal: a leftover covered
    /// segment only costs replay skips).
    pub segment_unlink_failures: u64,
    /// Transient rotation errors retried within [`MAX_ROLL_ATTEMPTS`].
    pub rotation_retries: u64,
    /// Rotations abandoned after retries ran out (non-fatal: the active
    /// segment keeps growing and the roll is retried next batch).
    pub rotation_failures: u64,
    /// EINTR write retries on the append path.
    pub eintr_retries: u64,
    /// Kind of the most recent recorded IO failure (append poisoning,
    /// abandoned rotation, or checkpoint failure), `None` while
    /// failure-free.
    pub last_error: Option<io::ErrorKind>,
}

/// Everything a commit-log entry must carry to be replayed exactly: the
/// block's immutable fields, *including the digest verbatim*. The digest
/// folds the mint-time nonce, which is not stored in [`Block`]
/// (`crate::block::Block::compute_digest`) — so recovery installs the
/// recorded digest rather than recomputing it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitRecord {
    /// The committed block's arena id — recovery reinstalls at exactly
    /// this id so the replayed commit log is bit-identical.
    pub id: BlockId,
    /// Parent id. Commit order is parent-closed, so the parent's record
    /// always precedes this one (or genesis).
    pub parent: BlockId,
    pub producer: ProcessId,
    pub merit_index: u32,
    pub work: u64,
    /// The block's digest, recorded verbatim (see the type docs).
    pub digest: u64,
    pub payload: Payload,
}

/// Borrowed-field view of one commit record: what [`Wal::append_batch`]
/// encodes straight from arena block data, so the group-commit path never
/// materializes a [`CommitRecord`] (in particular, never clones a
/// payload). The wire encoding is byte-identical to the owned form.
#[derive(Clone, Copy, Debug)]
pub struct RecordRef<'a> {
    pub id: BlockId,
    pub parent: BlockId,
    pub producer: ProcessId,
    pub merit_index: u32,
    pub work: u64,
    pub digest: u64,
    pub payload: &'a Payload,
}

impl RecordRef<'_> {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.id.0.to_le_bytes());
        buf.extend_from_slice(&self.parent.0.to_le_bytes());
        buf.extend_from_slice(&self.producer.0.to_le_bytes());
        buf.extend_from_slice(&self.merit_index.to_le_bytes());
        buf.extend_from_slice(&self.work.to_le_bytes());
        buf.extend_from_slice(&self.digest.to_le_bytes());
        match self.payload {
            Payload::Empty => buf.push(0),
            Payload::Opaque(v) => {
                buf.push(1);
                buf.extend_from_slice(&v.to_le_bytes());
            }
            Payload::Transactions(txs) => {
                buf.push(2);
                buf.extend_from_slice(&(txs.len() as u32).to_le_bytes());
                for tx in txs {
                    buf.extend_from_slice(&tx.id.to_le_bytes());
                    buf.extend_from_slice(&tx.from.to_le_bytes());
                    buf.extend_from_slice(&tx.to.to_le_bytes());
                    buf.extend_from_slice(&tx.amount.to_le_bytes());
                }
            }
        }
    }
}

impl CommitRecord {
    fn record_ref(&self) -> RecordRef<'_> {
        RecordRef {
            id: self.id,
            parent: self.parent,
            producer: self.producer,
            merit_index: self.merit_index,
            work: self.work,
            digest: self.digest,
            payload: &self.payload,
        }
    }

    fn decode(body: &[u8]) -> io::Result<CommitRecord> {
        let mut cur = Cursor { data: body, pos: 0 };
        let id = BlockId(cur.u32()?);
        let parent = BlockId(cur.u32()?);
        let producer = ProcessId(cur.u32()?);
        let merit_index = cur.u32()?;
        let work = cur.u64()?;
        let digest = cur.u64()?;
        let payload = match cur.u8()? {
            0 => Payload::Empty,
            1 => Payload::Opaque(cur.u64()?),
            2 => {
                let n = cur.u32()? as usize;
                if n > body.len() {
                    return Err(invalid("transaction count exceeds record size"));
                }
                let mut txs = Vec::with_capacity(n);
                for _ in 0..n {
                    txs.push(Tx::new(cur.u64()?, cur.u32()?, cur.u32()?, cur.u64()?));
                }
                Payload::Transactions(txs)
            }
            t => return Err(invalid(format!("unknown payload tag {t}"))),
        };
        if cur.pos != body.len() {
            return Err(invalid("trailing bytes in commit record"));
        }
        Ok(CommitRecord {
            id,
            parent,
            producer,
            merit_index,
            work,
            digest,
            payload,
        })
    }
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> io::Result<&[u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.data.len());
        let end = end.ok_or_else(|| invalid("record body too short"))?;
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven. Local because
/// the container builds without a registry — no external crc crate.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Appends one framed record to `buf`: `[len][crc][body]`.
fn frame_into(buf: &mut Vec<u8>, rec: RecordRef<'_>) {
    let hdr = buf.len();
    buf.extend_from_slice(&[0u8; 8]);
    rec.encode_into(buf);
    let body_len = (buf.len() - hdr - 8) as u32;
    let crc = crc32(&buf[hdr + 8..]);
    buf[hdr..hdr + 4].copy_from_slice(&body_len.to_le_bytes());
    buf[hdr + 4..hdr + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Decodes the frame at the head of `data`, returning the record and the
/// frame's total size. Any defect — short header, short body, CRC
/// mismatch, undecodable body — is an error; the *caller* decides
/// whether its position makes that a torn tail or corruption.
fn try_frame(data: &[u8]) -> io::Result<(CommitRecord, usize)> {
    if data.len() < 8 {
        return Err(invalid("truncated frame header"));
    }
    let len = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
    if len > MAX_RECORD_BYTES {
        return Err(invalid("implausible frame length"));
    }
    let crc = u32::from_le_bytes(data[4..8].try_into().unwrap());
    let Some(body) = data.get(8..8 + len) else {
        return Err(invalid("truncated frame body"));
    };
    if crc32(body) != crc {
        return Err(invalid("frame crc mismatch"));
    }
    let rec = CommitRecord::decode(body)?;
    Ok((rec, 8 + len))
}

fn seg_name(start: u64) -> String {
    format!("{start:012}.wal")
}

/// Scans a segment file. For the active (last) segment `may_be_torn`
/// permits a defective final frame — scanning stops there and the valid
/// byte length is returned for the caller to truncate to. A defect in a
/// sealed segment is corruption.
fn scan_segment(
    vfs: &dyn Vfs,
    path: &Path,
    may_be_torn: bool,
) -> io::Result<(Vec<CommitRecord>, u64)> {
    let data = vfs.read(path)?;
    let mut recs = Vec::new();
    let mut off = 0usize;
    while off < data.len() {
        match try_frame(&data[off..]) {
            Ok((rec, sz)) => {
                recs.push(rec);
                off += sz;
            }
            Err(_) if may_be_torn => break,
            Err(e) => {
                return Err(invalid(format!(
                    "{}: corrupt record at byte {off}: {e}",
                    path.display()
                )))
            }
        }
    }
    Ok((recs, off as u64))
}

fn read_checkpoint(vfs: &dyn Vfs, path: &Path) -> io::Result<Option<Vec<CommitRecord>>> {
    let data = match vfs.read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if data.len() < 16 || &data[..8] != CKPT_MAGIC {
        return Err(invalid(format!(
            "{}: bad checkpoint header",
            path.display()
        )));
    }
    let count = u64::from_le_bytes(data[8..16].try_into().unwrap());
    let mut recs = Vec::with_capacity(count.min(1 << 20) as usize);
    let mut off = 16usize;
    while (recs.len() as u64) < count {
        // The checkpoint was renamed into place atomically, so a bad
        // frame here is corruption, never a torn write.
        let (rec, sz) = try_frame(&data[off..]).map_err(|e| {
            invalid(format!(
                "{}: corrupt checkpoint record {}: {e}",
                path.display(),
                recs.len()
            ))
        })?;
        recs.push(rec);
        off += sz;
    }
    if off != data.len() {
        return Err(invalid(format!(
            "{}: trailing bytes after checkpoint records",
            path.display()
        )));
    }
    Ok(Some(recs))
}

/// A write-ahead commit log over one directory. Single-writer: the
/// `ConcurrentBlockTree` owns it inside the selection mutex, which
/// already serializes every commit.
pub struct Wal {
    config: WalConfig,
    /// Active segment (append mode: writes land at EOF).
    file: Box<dyn VfsFile>,
    /// Global index of the active segment's first record.
    seg_start: u64,
    /// Valid bytes in the active segment.
    seg_bytes: u64,
    /// Sealed segments, ascending by start index.
    sealed: Vec<(u64, PathBuf)>,
    /// Total records durable in this log (checkpoint + segments).
    logged: u64,
    /// Records covered by the on-disk checkpoint.
    ckpt_upto: u64,
    /// Whether a claimed [`CheckpointJob`] is still unsettled — gates
    /// [`wants_checkpoint`](Self::wants_checkpoint) so only one
    /// checkpoint runs at a time.
    ckpt_inflight: bool,
    /// Set by any data-path persist failure (see the module docs):
    /// every further append is refused.
    poisoned: bool,
    stats: WalStats,
    /// Scratch encode buffer, reused across batches.
    buf: Vec<u8>,
}

/// Per-batch encoder handed to the [`Wal::append_batch`] closure: frames
/// records into the WAL's scratch buffer in call order.
pub struct BatchFramer<'a> {
    buf: &'a mut Vec<u8>,
    n: u64,
}

impl BatchFramer<'_> {
    /// Frames one record at the tail of the batch.
    pub fn record(&mut self, rec: RecordRef<'_>) {
        frame_into(self.buf, rec);
        self.n += 1;
    }
}

impl Wal {
    /// Opens (or creates) the WAL at `config.dir` and replays it:
    /// checkpoint first, then every segment record past it, in commit
    /// order. A torn tail on the active segment is trimmed — those
    /// records were never acked — and appending resumes at the trim
    /// point. A corrupt *checkpoint* is ignored (the segment log is the
    /// source of truth; `stats().checkpoint_ignored` reports it), while
    /// corruption in a sealed segment or a missing segment is a hard
    /// error. Returns the WAL positioned to append plus the replayed
    /// records (empty for a fresh directory).
    pub fn open(config: WalConfig) -> io::Result<(Wal, Vec<CommitRecord>)> {
        let vfs = Arc::clone(&config.vfs);
        vfs.create_dir_all(&config.dir)?;
        // A temp file is a checkpoint that never made its rename: stale.
        let _ = vfs.remove_file(&config.dir.join(CKPT_TMP));
        let mut stats = WalStats::default();
        // The checkpoint is an *optimization* over the segment log, not
        // the log itself: a corrupt one (bad magic, CRC mismatch, frame
        // truncation) is ignored and recovery replays the full segment
        // chain instead. Real loss is still caught below — if compaction
        // already dropped segments the checkpoint covered, the first
        // surviving segment starts past record 0 and the missing-segment
        // check fires. I/O errors other than corruption still propagate.
        let mut records = match read_checkpoint(vfs.as_ref(), &config.dir.join(CKPT_NAME)) {
            Ok(recs) => recs.unwrap_or_default(),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                stats.checkpoint_ignored = true;
                Vec::new()
            }
            Err(e) => return Err(e),
        };
        let ckpt_upto = records.len() as u64;
        let mut segs: Vec<(u64, PathBuf)> = Vec::new();
        for name in vfs.read_dir_names(&config.dir)? {
            if let Some(stem) = name.strip_suffix(".wal") {
                if let Ok(start) = stem.parse::<u64>() {
                    segs.push((start, config.dir.join(&name)));
                }
            }
        }
        segs.sort();
        let mut sealed = Vec::new();
        let mut active: Option<(u64, PathBuf, u64)> = None;
        let n = segs.len();
        for (i, (start, path)) in segs.into_iter().enumerate() {
            let last = i + 1 == n;
            if start > records.len() as u64 {
                return Err(invalid(format!(
                    "missing WAL segment: {} starts at record {start} but only {} records precede it",
                    path.display(),
                    records.len()
                )));
            }
            let (recs, valid_len) = scan_segment(vfs.as_ref(), &path, last)?;
            // Records below the running count are duplicates the
            // checkpoint (or an overlapping predecessor) already covers.
            let skip = (records.len() as u64 - start) as usize;
            if skip < recs.len() {
                records.extend(recs.into_iter().skip(skip));
            }
            if last {
                active = Some((start, path, valid_len));
            } else {
                sealed.push((start, path));
            }
        }
        let (file, seg_start, seg_bytes) = match active {
            Some((start, path, valid_len)) => {
                let mut file = vfs.open_append(&path)?;
                let disk_len = file.len()?;
                if disk_len > valid_len {
                    // The torn tail: a crash mid-append left a partial
                    // frame. Its records were never acked — trim, don't
                    // panic.
                    file.set_len(valid_len)?;
                    if config.fsync {
                        file.sync_data()?;
                        stats.fsyncs += 1;
                    }
                    stats.trimmed_bytes = disk_len - valid_len;
                }
                (file, start, valid_len)
            }
            None => {
                let start = records.len() as u64;
                let path = config.dir.join(seg_name(start));
                let file = vfs.create_new(&path)?;
                if config.fsync {
                    vfs.sync_dir(&config.dir)?;
                    stats.fsyncs += 1;
                }
                (file, start, 0)
            }
        };
        let logged = records.len() as u64;
        Ok((
            Wal {
                config,
                file,
                seg_start,
                seg_bytes,
                sealed,
                logged,
                ckpt_upto,
                ckpt_inflight: false,
                poisoned: false,
                stats,
                buf: Vec::new(),
            },
            records,
        ))
    }

    /// Total records durable in this log.
    pub fn logged(&self) -> u64 {
        self.logged
    }

    /// Records covered by the on-disk checkpoint.
    pub fn checkpointed(&self) -> u64 {
        self.ckpt_upto
    }

    /// Activity counters since open.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// The VFS this log performs IO through.
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        Arc::clone(&self.config.vfs)
    }

    /// Whether a data-path persist failure has poisoned this log (see
    /// the module docs). A poisoned log refuses every further append.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    fn check_poisoned(&self) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "wal poisoned by an earlier persist failure",
            ));
        }
        Ok(())
    }

    /// Records a data-path persist failure: marks the log poisoned and
    /// remembers the error kind. Returns the error for propagation.
    fn poison(&mut self, e: io::Error) -> io::Error {
        self.poisoned = true;
        self.stats.last_error = Some(e.kind());
        e
    }

    /// Appends a batch of commit records and makes them durable with a
    /// single `fdatasync` — the group commit. Records are durable (and
    /// may be acked) only once this returns `Ok`.
    pub fn append_commits<I>(&mut self, records: I) -> io::Result<usize>
    where
        I: IntoIterator<Item = CommitRecord>,
    {
        self.check_poisoned()?;
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        let mut n = 0u64;
        for rec in records {
            frame_into(&mut buf, rec.record_ref());
            n += 1;
        }
        if n == 0 {
            self.buf = buf;
            return Ok(0);
        }
        let res = self.write_batch(&buf, n);
        self.buf = buf;
        res?;
        if self.seg_bytes >= self.config.segment_bytes {
            self.try_roll();
        }
        Ok(n as usize)
    }

    /// Group commit over *borrowed* record data: `fill` receives a framer
    /// and encodes each record straight into the WAL's shared scratch
    /// buffer via [`BatchFramer::record`] — no per-record allocation, no
    /// payload clone, one write + one `fdatasync` for the whole batch.
    /// Durability semantics are identical to [`append_commits`].
    ///
    /// [`append_commits`]: Self::append_commits
    pub fn append_batch<F>(&mut self, fill: F) -> io::Result<usize>
    where
        F: FnOnce(&mut BatchFramer<'_>),
    {
        self.check_poisoned()?;
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        let mut framer = BatchFramer {
            buf: &mut buf,
            n: 0,
        };
        fill(&mut framer);
        let n = framer.n;
        if n == 0 {
            self.buf = buf;
            return Ok(0);
        }
        let res = self.write_batch(&buf, n);
        self.buf = buf;
        res?;
        if self.seg_bytes >= self.config.segment_bytes {
            self.try_roll();
        }
        Ok(n as usize)
    }

    fn write_batch(&mut self, buf: &[u8], n: u64) -> io::Result<()> {
        let mut attempt = 0u32;
        loop {
            match self.file.write_all(buf) {
                Ok(()) => break,
                // EINTR is the one genuinely transient write error, and
                // std's write_all never surfaces it with partial
                // progress — so the whole buffer retries verbatim
                // (bounded, with backoff).
                Err(e) if e.kind() == io::ErrorKind::Interrupted && attempt < MAX_EINTR_RETRIES => {
                    attempt += 1;
                    self.stats.eintr_retries += 1;
                    std::thread::sleep(backoff(attempt));
                }
                // Any other write failure (short write, EIO, ENOSPC mid
                // batch) leaves the active segment dirty with unknown
                // content: poison — stage-1 membership is never
                // retracted, so appending past a gap would break
                // parent-closure on replay.
                Err(e) => return Err(self.poison(e)),
            }
        }
        if self.config.fsync {
            // fsyncgate: a failed fsync may have dropped the dirty pages
            // and cleared the kernel error state, so retrying (and
            // succeeding) proves nothing about THESE bytes. Never retry
            // a data-path fsync — poison instead.
            if let Err(e) = self.file.sync_data() {
                return Err(self.poison(e));
            }
            self.stats.fsyncs += 1;
        }
        self.seg_bytes += buf.len() as u64;
        self.logged += n;
        self.stats.records += n;
        self.stats.bytes += buf.len() as u64;
        Ok(())
    }

    /// Seals the active segment and starts a fresh one named by the
    /// current record count. The directory fsync makes the new name
    /// durable *before* any record lands in it — otherwise a crash could
    /// recover a listing that misses a segment full of acked records.
    ///
    /// Rotation failure is **non-fatal**: transient errors (EINTR,
    /// ENOSPC) retry with backoff up to [`MAX_ROLL_ATTEMPTS`]; if the
    /// roll still fails, the log keeps appending to the oversized active
    /// segment and re-attempts after the next batch. A half-made attempt
    /// leaves at worst an *empty* stray segment file, which replay
    /// absorbs (zero records, start index already covered).
    fn try_roll(&mut self) {
        let old = self.config.dir.join(seg_name(self.seg_start));
        let path = self.config.dir.join(seg_name(self.logged));
        let mut attempt = 0u32;
        let file = loop {
            if attempt > 0 {
                // A previous attempt (this call or an earlier batch's)
                // may have created the file before its directory sync
                // failed; the leftover is empty but blocks create_new.
                let _ = self.config.vfs.remove_file(&path);
            }
            let res = self.config.vfs.create_new(&path).and_then(|file| {
                if self.config.fsync {
                    self.config.vfs.sync_dir(&self.config.dir)?;
                    self.stats.fsyncs += 1;
                }
                Ok(file)
            });
            match res {
                Ok(file) => break file,
                Err(e) => {
                    attempt += 1;
                    let retryable = is_transient(&e) || e.kind() == io::ErrorKind::AlreadyExists;
                    if retryable && attempt < MAX_ROLL_ATTEMPTS {
                        self.stats.rotation_retries += 1;
                        std::thread::sleep(backoff(attempt));
                    } else {
                        self.stats.rotation_failures += 1;
                        self.stats.last_error = Some(e.kind());
                        return;
                    }
                }
            }
        };
        self.sealed.push((self.seg_start, old));
        self.file = file;
        self.seg_start = self.logged;
        self.seg_bytes = 0;
        self.stats.segments_rolled += 1;
    }

    /// Whether a checkpoint covering `upto` records is due. The gate is
    /// geometric — at least `checkpoint_interval` new records *and* half
    /// the already-covered prefix again — so the O(prefix) rewrite cost
    /// amortizes to O(1) per record no matter how long the log runs.
    /// `false` while a claimed checkpoint is still in flight.
    pub fn wants_checkpoint(&self, upto: u64) -> bool {
        !self.ckpt_inflight
            && !self.poisoned
            && upto <= self.logged
            && upto > self.ckpt_upto
            && upto - self.ckpt_upto >= self.config.checkpoint_interval.max(self.ckpt_upto / 2)
    }

    /// Claims a checkpoint covering the first `upto` records and hands
    /// back a detached [`CheckpointJob`] that performs the O(prefix)
    /// encoding, temp-file write, fsync, and rename **without borrowing
    /// the `Wal`** — so the caller can run it off whatever lock
    /// serializes appends (the selection mutex, in
    /// `crate::concurrent`), while appends keep landing in the active
    /// segment concurrently: the checkpoint touches only the temp file
    /// and the checkpoint name, never the segment being appended to.
    ///
    /// At most one job may be in flight ([`wants_checkpoint`] gates);
    /// the claim must be settled with [`finish_checkpoint`] or
    /// [`abort_checkpoint`].
    ///
    /// [`wants_checkpoint`]: Self::wants_checkpoint
    /// [`finish_checkpoint`]: Self::finish_checkpoint
    /// [`abort_checkpoint`]: Self::abort_checkpoint
    pub fn begin_checkpoint(&mut self, upto: u64) -> CheckpointJob {
        assert!(!self.ckpt_inflight, "one checkpoint in flight at a time");
        assert!(upto <= self.logged, "checkpoint past the durable log");
        assert!(upto >= self.ckpt_upto, "checkpoints are monotone");
        self.ckpt_inflight = true;
        CheckpointJob {
            dir: self.config.dir.clone(),
            fsync: self.config.fsync,
            upto,
            vfs: Arc::clone(&self.config.vfs),
        }
    }

    /// Records a completed [`CheckpointJob`]: advances the covered
    /// prefix, folds the job's fsync count into the stats, and prunes
    /// every sealed segment the prefix fully covers from the in-memory
    /// list. Returns the pruned segments' paths — the *caller* unlinks
    /// them, again off the append lock. Deletion failures are ignorable:
    /// a leftover covered segment only costs replay skips. Segment i
    /// spans records `start_i .. start_{i+1}` (next sealed start, or the
    /// active segment's).
    pub fn finish_checkpoint(&mut self, done: CheckpointDone) -> Vec<PathBuf> {
        debug_assert!(self.ckpt_inflight, "finish without a claim");
        self.ckpt_inflight = false;
        self.ckpt_upto = done.upto;
        self.stats.fsyncs += done.fsyncs;
        self.stats.checkpoints += 1;
        let mut dead = Vec::new();
        let mut keep = Vec::new();
        for i in 0..self.sealed.len() {
            let end = self
                .sealed
                .get(i + 1)
                .map(|s| s.0)
                .unwrap_or(self.seg_start);
            if end <= done.upto {
                dead.push(self.sealed[i].1.clone());
                self.stats.segments_dropped += 1;
            } else {
                keep.push(self.sealed[i].clone());
            }
        }
        self.sealed = keep;
        dead
    }

    /// Releases a claimed checkpoint whose job failed (or was dropped
    /// unrun): no state advances, and the geometric gate may re-fire.
    /// Checkpoint IO failures are non-fatal — the log keeps its segments
    /// and stays correct, merely uncompacted.
    pub fn abort_checkpoint(&mut self) {
        debug_assert!(self.ckpt_inflight, "abort without a claim");
        self.ckpt_inflight = false;
    }

    /// [`abort_checkpoint`](Self::abort_checkpoint) plus bookkeeping:
    /// counts the failure and records its kind. Checkpoint IO failures
    /// stay non-fatal — the log keeps its segments and is merely
    /// uncompacted — but they are no longer silent.
    pub fn fail_checkpoint(&mut self, err: &io::Error) {
        self.abort_checkpoint();
        self.stats.checkpoint_failures += 1;
        self.stats.last_error = Some(err.kind());
    }

    /// Records `n` failed pruned-segment unlinks (the caller deletes
    /// them off the append lock). Non-fatal: replay skips covered
    /// segments by start index.
    pub fn note_unlink_failures(&mut self, n: u64) {
        self.stats.segment_unlink_failures += n;
    }

    /// Writes a checkpoint covering `records` (the first `records.len()`
    /// entries of the commit log — the caller's finalized prefix), then
    /// deletes every sealed segment that prefix fully covers. The
    /// single-caller convenience over
    /// [`begin_checkpoint`](Self::begin_checkpoint) /
    /// [`finish_checkpoint`](Self::finish_checkpoint).
    pub fn checkpoint(&mut self, records: &[CommitRecord]) -> io::Result<()> {
        let job = self.begin_checkpoint(records.len() as u64);
        match job.run(records) {
            Ok(done) => {
                let mut failed = 0;
                for path in self.finish_checkpoint(done) {
                    if self.config.vfs.remove_file(&path).is_err() {
                        failed += 1;
                    }
                }
                self.note_unlink_failures(failed);
                Ok(())
            }
            Err(e) => {
                self.fail_checkpoint(&e);
                Err(e)
            }
        }
    }
}

/// A claimed-but-unwritten checkpoint (see [`Wal::begin_checkpoint`]):
/// owns everything the IO needs — directory, fsync policy, coverage —
/// and nothing of the `Wal`, so the write runs lock-free with respect
/// to concurrent appends.
pub struct CheckpointJob {
    dir: PathBuf,
    fsync: bool,
    upto: u64,
    vfs: Arc<dyn Vfs>,
}

/// Proof of a completed checkpoint write, consumed by
/// [`Wal::finish_checkpoint`].
pub struct CheckpointDone {
    upto: u64,
    fsyncs: u64,
}

impl CheckpointJob {
    /// Records this job covers (the claim passed to `begin_checkpoint`).
    pub fn upto(&self) -> u64 {
        self.upto
    }

    /// Performs the checkpoint IO: encode `records` (which must be the
    /// first [`upto`](Self::upto) commit-log entries), write them to a
    /// temp file, fsync, and atomically rename over the live checkpoint.
    /// A crash at any point leaves either the old or the new checkpoint,
    /// both valid.
    pub fn run(self, records: &[CommitRecord]) -> io::Result<CheckpointDone> {
        assert_eq!(records.len() as u64, self.upto, "claim matches records");
        let tmp = self.dir.join(CKPT_TMP);
        let mut buf = Vec::with_capacity(16 + records.len() * 64);
        buf.extend_from_slice(CKPT_MAGIC);
        buf.extend_from_slice(&self.upto.to_le_bytes());
        for rec in records {
            frame_into(&mut buf, rec.record_ref());
        }
        let mut fsyncs = 0;
        {
            let mut f = self.vfs.create_truncate(&tmp)?;
            f.write_all(&buf)?;
            if self.fsync {
                f.sync_all()?;
                fsyncs += 1;
            }
        }
        self.vfs.rename(&tmp, &self.dir.join(CKPT_NAME))?;
        if self.fsync {
            // If this sync fails the job must NOT complete: the rename
            // might not survive power loss, and advancing the covered
            // prefix (then pruning segments) against an undurable
            // checkpoint could lose acked records.
            self.vfs.sync_dir(&self.dir)?;
            fsyncs += 1;
        }
        Ok(CheckpointDone {
            upto: self.upto,
            fsyncs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultConfig, FaultKind, FaultRule, FaultVfs, OpKind, TornTail};
    use std::fs;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_wal_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "btadt-wal-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed) // relaxed: unique-name counter
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(i: u32) -> CommitRecord {
        CommitRecord {
            id: BlockId(i),
            parent: BlockId(i.saturating_sub(1)),
            producer: ProcessId(i % 3),
            merit_index: i % 5,
            work: 1 + i as u64 % 7,
            digest: 0xD1CE_0000 ^ i as u64,
            payload: match i % 3 {
                0 => Payload::Empty,
                1 => Payload::Opaque(i as u64 * 31),
                _ => Payload::Transactions(vec![
                    Tx::new(i as u64, i, i + 1, 100 + i as u64),
                    Tx::new(i as u64 + 1, i + 2, i + 3, 7),
                ]),
            },
        }
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrips_through_a_frame() {
        for i in 0..9 {
            let r = rec(i);
            let mut buf = Vec::new();
            frame_into(&mut buf, r.record_ref());
            let (back, sz) = try_frame(&buf).expect("clean frame");
            assert_eq!(sz, buf.len());
            assert_eq!(back, r);
        }
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let mut buf = Vec::new();
        let four = rec(4);
        frame_into(&mut buf, four.record_ref());
        // Flip one body byte: CRC must catch it.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(try_frame(&bad).is_err(), "crc mismatch");
        // Truncations at every boundary are defects too.
        for cut in 0..buf.len() {
            assert!(try_frame(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches real files (fsync, rename, set_len)")]
    fn open_append_reopen_replays_everything() {
        let dir = tmp_wal_dir("roundtrip");
        let recs: Vec<CommitRecord> = (1..40).map(rec).collect();
        {
            let (mut wal, replay) = Wal::open(WalConfig::new(&dir)).unwrap();
            assert!(replay.is_empty());
            wal.append_commits(recs[..25].iter().cloned()).unwrap();
            wal.append_commits(recs[25..].iter().cloned()).unwrap();
            assert_eq!(wal.logged(), 39);
            assert_eq!(wal.stats().fsyncs, 3, "open + one per batch");
        }
        let (wal, replay) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(replay, recs);
        assert_eq!(wal.logged(), 39);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches real files (fsync, rename, set_len)")]
    fn torn_tail_is_trimmed_at_every_truncation_point() {
        let dir = tmp_wal_dir("torn");
        let recs: Vec<CommitRecord> = (1..8).map(rec).collect();
        let (mut wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
        // Record the segment length after each append: frame boundaries.
        let mut boundaries = vec![0u64];
        for r in &recs {
            wal.append_commits(std::iter::once(r.clone())).unwrap();
            boundaries.push(wal.seg_bytes);
        }
        let seg = dir.join(seg_name(0));
        drop(wal);
        let full = fs::read(&seg).unwrap();
        for cut in 0..full.len() as u64 {
            fs::write(&seg, &full[..cut as usize]).unwrap();
            let (wal, replay) = Wal::open(WalConfig::new(&dir)).unwrap();
            // The replay is exactly the records whose frames fit below
            // the cut — a partial trailing frame is trimmed, not fatal.
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(replay.len(), whole, "cut at byte {cut}");
            assert_eq!(replay, recs[..whole], "cut at byte {cut}");
            assert_eq!(wal.logged(), whole as u64);
            if cut > boundaries[whole] {
                assert_eq!(wal.stats().trimmed_bytes, cut - boundaries[whole]);
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches real files (fsync, rename, set_len)")]
    fn torn_tail_recovery_keeps_accepting_appends() {
        let dir = tmp_wal_dir("torn-continue");
        let (mut wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
        wal.append_commits((1..5).map(rec)).unwrap();
        drop(wal);
        let seg = dir.join(seg_name(0));
        let full = fs::read(&seg).unwrap();
        fs::write(&seg, &full[..full.len() - 3]).unwrap(); // mid-record
        let (mut wal, replay) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(replay.len(), 3, "last record torn away");
        wal.append_commits((4..9).map(rec)).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(WalConfig::new(&dir)).unwrap();
        let expect: Vec<CommitRecord> = (1..9).map(rec).collect();
        assert_eq!(replay, expect, "appends after a trim replay cleanly");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches real files (fsync, rename, set_len)")]
    fn corruption_in_a_sealed_segment_is_a_hard_error() {
        let dir = tmp_wal_dir("sealed-corrupt");
        let cfg = WalConfig::new(&dir).segment_bytes(64); // rolls fast
        let (mut wal, _) = Wal::open(cfg.clone()).unwrap();
        for i in 1..20 {
            wal.append_commits(std::iter::once(rec(i))).unwrap();
        }
        assert!(wal.stats().segments_rolled >= 2, "several sealed segments");
        drop(wal);
        // Flip a byte in the middle of the FIRST segment — not a tail.
        let seg = dir.join(seg_name(0));
        let mut data = fs::read(&seg).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        fs::write(&seg, &data).unwrap();
        let err = Wal::open(cfg).err().expect("sealed corruption detected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches real files (fsync, rename, set_len)")]
    fn segments_roll_and_replay_in_order() {
        let dir = tmp_wal_dir("roll");
        let cfg = WalConfig::new(&dir).segment_bytes(128);
        let recs: Vec<CommitRecord> = (1..60).map(rec).collect();
        {
            let (mut wal, _) = Wal::open(cfg.clone()).unwrap();
            for chunk in recs.chunks(7) {
                wal.append_commits(chunk.iter().cloned()).unwrap();
            }
            assert!(wal.stats().segments_rolled >= 3);
        }
        let (_, replay) = Wal::open(cfg).unwrap();
        assert_eq!(replay, recs);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches real files (fsync, rename, set_len)")]
    fn checkpoint_compacts_covered_segments_and_replays_identically() {
        let dir = tmp_wal_dir("ckpt");
        let cfg = WalConfig::new(&dir)
            .segment_bytes(128)
            .checkpoint_interval(8);
        let recs: Vec<CommitRecord> = (1..80).map(rec).collect();
        let (mut wal, _) = Wal::open(cfg.clone()).unwrap();
        let mut appended = 0usize;
        for chunk in recs.chunks(5) {
            wal.append_commits(chunk.iter().cloned()).unwrap();
            appended += chunk.len();
            // Pretend everything but the newest 10 records is final.
            let upto = appended.saturating_sub(10);
            if wal.wants_checkpoint(upto as u64) {
                wal.checkpoint(&recs[..upto]).unwrap();
            }
        }
        assert!(wal.stats().checkpoints >= 2, "compaction ran");
        assert!(wal.stats().segments_dropped >= 1, "covered segments went");
        let files: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".wal"))
            .collect();
        assert!(
            (files.len() as u64) < wal.stats().segments_rolled + 1,
            "some segments were dropped: {files:?}"
        );
        drop(wal);
        let (wal, replay) = Wal::open(cfg).unwrap();
        assert_eq!(replay, recs, "checkpoint + tail replays bit-identically");
        assert!(wal.checkpointed() > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches real files (fsync, rename, set_len)")]
    fn checkpoint_skips_below_the_geometric_gate() {
        let dir = tmp_wal_dir("gate");
        let cfg = WalConfig::new(&dir).checkpoint_interval(10);
        let (mut wal, _) = Wal::open(cfg).unwrap();
        wal.append_commits((1..30).map(rec)).unwrap();
        assert!(!wal.wants_checkpoint(5), "below the interval floor");
        assert!(wal.wants_checkpoint(20));
        let recs: Vec<CommitRecord> = (1..21).map(rec).collect();
        wal.checkpoint(&recs).unwrap();
        // 9 new < max(interval, 20/2) = 10: not yet.
        assert!(!wal.wants_checkpoint(29));
        fs::remove_dir_all(wal.dir()).unwrap();
    }

    /// A fault-injected WAL over a fresh in-memory directory.
    fn fault_wal(config: FaultConfig) -> (Wal, FaultVfs, WalConfig) {
        let vfs = FaultVfs::new(config);
        let cfg = WalConfig::new("/fw/wal").vfs(vfs.as_dyn());
        let (wal, replay) = Wal::open(cfg.clone()).unwrap();
        assert!(replay.is_empty());
        (wal, vfs, cfg)
    }

    #[test]
    fn fsync_failure_poisons_and_refuses_further_appends() {
        // The open path costs no SyncData (fresh dir: create + SyncDir),
        // so the first data fsync belongs to the first batch.
        let (mut wal, vfs, _) =
            fault_wal(FaultConfig::fail_nth(OpKind::SyncData, 1, FaultKind::Eio));
        let err = wal.append_commits((1..4).map(rec)).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(crate::vfs::EIO));
        assert!(wal.poisoned());
        assert_eq!(wal.stats().last_error, Some(err.kind()));
        assert!(
            !wal.wants_checkpoint(u64::MAX),
            "poisoned log never compacts"
        );
        let ops = vfs.op_count();
        wal.append_commits((4..6).map(rec)).unwrap_err();
        assert_eq!(vfs.op_count(), ops, "poisoned appends never touch storage");
    }

    #[test]
    fn short_write_poisons_and_recovery_trims_the_torn_tail() {
        let (mut wal, vfs, cfg) = fault_wal(FaultConfig::fail_nth(
            OpKind::Write,
            2,
            FaultKind::ShortWrite { written: 5 },
        ));
        wal.append_commits((1..4).map(rec)).unwrap();
        wal.append_commits((4..6).map(rec)).unwrap_err();
        assert!(wal.poisoned());
        drop(wal);
        vfs.power_loss(TornTail::Keep(usize::MAX));
        let (wal, replay) = Wal::open(cfg).unwrap();
        let expect: Vec<CommitRecord> = (1..4).map(rec).collect();
        assert_eq!(replay, expect, "exactly the acked batch survives");
        assert_eq!(wal.stats().trimmed_bytes, 5, "the torn 5 bytes were cut");
    }

    #[test]
    fn eintr_on_write_is_retried_and_counted() {
        let (mut wal, _, _) = fault_wal(FaultConfig::fail_nth(OpKind::Write, 1, FaultKind::Eintr));
        wal.append_commits((1..4).map(rec)).unwrap();
        let stats = wal.stats();
        assert_eq!(stats.eintr_retries, 1);
        assert_eq!(stats.records, 3);
        assert!(!wal.poisoned());
    }

    #[test]
    fn transient_rotation_errors_retry_and_count() {
        // CreateNew #1 is open's fresh segment; #2 is the first roll.
        let vfs = FaultVfs::new(FaultConfig::fail_nth(
            OpKind::CreateNew,
            2,
            FaultKind::Enospc,
        ));
        let cfg = WalConfig::new("/fw/wal")
            .vfs(vfs.as_dyn())
            .segment_bytes(64);
        let (mut wal, _) = Wal::open(cfg).unwrap();
        for i in 1..8 {
            wal.append_commits(std::iter::once(rec(i))).unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.rotation_retries, 1, "ENOSPC retried once");
        assert_eq!(stats.rotation_failures, 0);
        assert!(stats.segments_rolled >= 1, "the retry succeeded");
        assert!(!wal.poisoned());
    }

    #[test]
    fn abandoned_rotation_is_nonfatal_and_retried_next_batch() {
        // Enough consecutive ENOSPC to exhaust MAX_ROLL_ATTEMPTS once.
        let mut config = FaultConfig::new();
        for nth in 2..2 + MAX_ROLL_ATTEMPTS as u64 {
            config = config.rule(FaultRule::new(OpKind::CreateNew, nth, FaultKind::Enospc));
        }
        let vfs = FaultVfs::new(config);
        let cfg = WalConfig::new("/fw/wal")
            .vfs(vfs.as_dyn())
            .segment_bytes(64);
        let (mut wal, _) = Wal::open(cfg.clone()).unwrap();
        let mut appended = 0u32;
        while wal.stats().rotation_failures == 0 {
            appended += 1;
            wal.append_commits(std::iter::once(rec(appended))).unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.rotation_failures, 1);
        let enospc_kind = io::Error::from_raw_os_error(ENOSPC).kind();
        assert_eq!(stats.last_error, Some(enospc_kind));
        assert_eq!(stats.segments_rolled, 0, "the first roll was abandoned");
        // The log keeps appending (oversized segment) and the next
        // batch's roll succeeds.
        for i in 0..4 {
            wal.append_commits(std::iter::once(rec(appended + 1 + i)))
                .unwrap();
        }
        assert!(
            wal.stats().segments_rolled >= 1,
            "roll re-attempted and won"
        );
        assert!(!wal.poisoned());
        let total = wal.logged();
        drop(wal);
        let (_, replay) = Wal::open(cfg).unwrap();
        assert_eq!(replay.len() as u64, total, "nothing lost across the stall");
    }

    #[test]
    fn checkpoint_failure_is_counted_and_nonfatal() {
        let (mut wal, _, _) = fault_wal(FaultConfig::fail_nth(OpKind::Rename, 1, FaultKind::Eio));
        wal.append_commits((1..30).map(rec)).unwrap();
        let recs: Vec<CommitRecord> = (1..21).map(rec).collect();
        let err = wal.checkpoint(&recs).unwrap_err();
        let stats = wal.stats();
        assert_eq!(stats.checkpoint_failures, 1);
        assert_eq!(stats.checkpoints, 0);
        assert_eq!(stats.last_error, Some(err.kind()));
        assert!(!wal.poisoned(), "checkpoint failure never poisons");
        // The claim was released: a retry succeeds (the rule was
        // single-shot).
        wal.checkpoint(&recs).unwrap();
        assert_eq!(wal.stats().checkpoints, 1);
        wal.append_commits((30..33).map(rec)).unwrap();
    }

    #[test]
    fn failed_tmp_fsync_aborts_the_checkpoint_safely() {
        let (mut wal, _, _) = fault_wal(FaultConfig::fail_nth(OpKind::SyncAll, 1, FaultKind::Eio));
        wal.append_commits((1..30).map(rec)).unwrap();
        let recs: Vec<CommitRecord> = (1..21).map(rec).collect();
        wal.checkpoint(&recs).unwrap_err();
        assert_eq!(wal.stats().checkpoint_failures, 1);
        assert_eq!(wal.checkpointed(), 0, "coverage never advanced");
        assert!(!wal.poisoned());
    }

    #[test]
    fn segment_unlink_failures_are_counted_and_harmless() {
        // RemoveFile #1 is open's stale-tmp cleanup; #2 is the first
        // pruned segment.
        let vfs = FaultVfs::new(FaultConfig::fail_nth(OpKind::RemoveFile, 2, FaultKind::Eio));
        let cfg = WalConfig::new("/fw/wal")
            .vfs(vfs.as_dyn())
            .segment_bytes(64)
            .checkpoint_interval(4);
        let (mut wal, _) = Wal::open(cfg.clone()).unwrap();
        let recs: Vec<CommitRecord> = (1..40).map(rec).collect();
        for chunk in recs.chunks(5) {
            wal.append_commits(chunk.iter().cloned()).unwrap();
        }
        let upto = wal.logged() as usize - 5;
        assert!(wal.wants_checkpoint(upto as u64));
        wal.checkpoint(&recs[..upto]).unwrap();
        let stats = wal.stats();
        assert!(stats.segments_dropped >= 1);
        assert_eq!(stats.segment_unlink_failures, 1);
        drop(wal);
        // The leftover covered segment is skipped on replay.
        let (_, replay) = Wal::open(cfg).unwrap();
        assert_eq!(replay, recs);
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches real files (fsync, rename, set_len)")]
    fn no_fsync_mode_still_replays() {
        let dir = tmp_wal_dir("nofsync");
        let cfg = WalConfig::new(&dir).no_fsync();
        {
            let (mut wal, _) = Wal::open(cfg.clone()).unwrap();
            wal.append_commits((1..10).map(rec)).unwrap();
            assert_eq!(wal.stats().fsyncs, 0);
        }
        let (_, replay) = Wal::open(cfg).unwrap();
        assert_eq!(replay.len(), 9);
        fs::remove_dir_all(&dir).unwrap();
    }
}
