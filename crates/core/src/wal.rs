//! Durable commit log: a segmented append-only WAL with group-commit
//! fsync batching, checkpoint compaction, and torn-tail recovery.
//!
//! The BT-ADT's correctness story (Thm. 4.2) is stated over a shared
//! object that survives its processes; an in-memory commit log does not.
//! This module is the storage half of the durability layer: it persists
//! the [`ConcurrentBlockTree`](crate::concurrent::ConcurrentBlockTree)
//! commit log — one [`CommitRecord`] per committed block, in commit
//! order — so a crashed process can rebuild the arena, jump pointers,
//! `ChainCache`, and commit generation by replaying it (the replay lives
//! in `crate::concurrent`; this module only moves bytes).
//!
//! # On-disk layout
//!
//! A WAL directory holds:
//!
//! * **Segments** `NNNNNNNNNNNN.wal` — append-only files of CRC-framed
//!   records, named by the global commit-log index of their first record
//!   (zero-padded decimal, so lexicographic order is replay order). The
//!   highest-named segment is *active*; the rest are *sealed*.
//! * **Checkpoint** `checkpoint.ckpt` — a header (magic + record count)
//!   followed by the first `count` commit records, re-framed. Written to
//!   a temp file, fsynced, then atomically renamed: a checkpoint is
//!   all-or-nothing, never torn.
//!
//! Each record is framed as `[len: u32 LE][crc32(body): u32 LE][body]`.
//! The CRC is over the body only; the length field is implicitly checked
//! by the CRC failing when it lies.
//!
//! # Durability contract
//!
//! * [`Wal::append_commits`] writes a whole batch of records with one
//!   `write` and **one** `fdatasync` — group commit. The caller (the
//!   batch drainer in `crate::concurrent`) invokes it once per
//!   publication, so a drained batch of B appends costs one fsync no
//!   matter B (persist-then-ack: the caller responds to appenders only
//!   after this returns).
//! * Rolling to a fresh segment fsyncs the *directory* before any record
//!   lands in the new file, so a recovered directory listing never
//!   misses a segment holding acked records.
//! * A crash mid-`append_commits` leaves a **torn tail**: a final frame
//!   with a short body or a CRC mismatch. [`Wal::open`] trims it (the
//!   records it held were never acked) and resumes appending at the trim
//!   point. A bad frame anywhere *other* than the tail of the active
//!   segment is real corruption and fails recovery loudly.
//! * [`Wal::checkpoint`] compacts: it snapshots a finalized prefix and
//!   deletes the sealed segments that prefix fully covers. Deletion need
//!   not be durable — a leftover covered segment is skipped on replay by
//!   its (too low) start index. The prefix bound comes from the caller,
//!   which derives it from the [`FinalityWatermark`](crate::commit::FinalityWatermark)
//!   flatten target: only storage-final entries are checkpointed, so
//!   compaction never races the live suffix.
//!
//! IO errors from the append path are surfaced to the caller, which
//! treats them as fail-stop (a tree that cannot persist must not ack).

use crate::block::{Payload, Tx};
use crate::ids::{BlockId, ProcessId};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Default segment roll threshold (bytes).
pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

/// Default records between checkpoints (see [`Wal::wants_checkpoint`]).
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 8192;

const CKPT_NAME: &str = "checkpoint.ckpt";
const CKPT_TMP: &str = "checkpoint.tmp";
const CKPT_MAGIC: &[u8; 8] = b"BTWALCK1";

/// Upper bound on a single record body — anything larger is a corrupt
/// length field, not a block.
const MAX_RECORD_BYTES: usize = 1 << 28;

/// Configuration of a WAL directory.
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Directory holding segments and the checkpoint (created on open).
    pub dir: PathBuf,
    /// Roll to a fresh segment once the active one exceeds this.
    pub segment_bytes: u64,
    /// Whether appends fsync (`fdatasync`) before returning. `false`
    /// trades crash durability for throughput — the bench uses it to
    /// decompose the WAL tax; real trees keep it on.
    pub fsync: bool,
    /// Floor on new records between checkpoints. The effective gate is
    /// geometric (`max(interval, covered/2)` new records), so rewriting
    /// the prefix stays amortized O(1) per record over the log's life.
    pub checkpoint_interval: u64,
}

impl WalConfig {
    /// Defaults: 1 MiB segments, fsync on, checkpoint every 8192 records.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            fsync: true,
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
        }
    }

    /// Sets the segment roll threshold.
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }

    /// Disables fsync on the append path (bench decomposition only).
    pub fn no_fsync(mut self) -> Self {
        self.fsync = false;
        self
    }

    /// Sets the checkpoint interval floor.
    pub fn checkpoint_interval(mut self, records: u64) -> Self {
        self.checkpoint_interval = records;
        self
    }
}

/// Counters of WAL activity since open — the bench reads these to report
/// fsync batching (records per fsync = the group-commit win).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Commit records appended (excludes checkpoint rewrites).
    pub records: u64,
    /// Bytes appended to segments.
    pub bytes: u64,
    /// `fdatasync`/`fsync` calls issued (appends + checkpoints + rolls).
    pub fsyncs: u64,
    /// Segments sealed by a roll.
    pub segments_rolled: u64,
    /// Sealed segments deleted by compaction.
    pub segments_dropped: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Torn-tail bytes trimmed by the last `open`.
    pub trimmed_bytes: u64,
    /// Whether the last `open` found a corrupt checkpoint and fell back
    /// to replaying the full segment log.
    pub checkpoint_ignored: bool,
}

/// Everything a commit-log entry must carry to be replayed exactly: the
/// block's immutable fields, *including the digest verbatim*. The digest
/// folds the mint-time nonce, which is not stored in [`Block`]
/// (`crate::block::Block::compute_digest`) — so recovery installs the
/// recorded digest rather than recomputing it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitRecord {
    /// The committed block's arena id — recovery reinstalls at exactly
    /// this id so the replayed commit log is bit-identical.
    pub id: BlockId,
    /// Parent id. Commit order is parent-closed, so the parent's record
    /// always precedes this one (or genesis).
    pub parent: BlockId,
    pub producer: ProcessId,
    pub merit_index: u32,
    pub work: u64,
    /// The block's digest, recorded verbatim (see the type docs).
    pub digest: u64,
    pub payload: Payload,
}

/// Borrowed-field view of one commit record: what [`Wal::append_batch`]
/// encodes straight from arena block data, so the group-commit path never
/// materializes a [`CommitRecord`] (in particular, never clones a
/// payload). The wire encoding is byte-identical to the owned form.
#[derive(Clone, Copy, Debug)]
pub struct RecordRef<'a> {
    pub id: BlockId,
    pub parent: BlockId,
    pub producer: ProcessId,
    pub merit_index: u32,
    pub work: u64,
    pub digest: u64,
    pub payload: &'a Payload,
}

impl RecordRef<'_> {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.id.0.to_le_bytes());
        buf.extend_from_slice(&self.parent.0.to_le_bytes());
        buf.extend_from_slice(&self.producer.0.to_le_bytes());
        buf.extend_from_slice(&self.merit_index.to_le_bytes());
        buf.extend_from_slice(&self.work.to_le_bytes());
        buf.extend_from_slice(&self.digest.to_le_bytes());
        match self.payload {
            Payload::Empty => buf.push(0),
            Payload::Opaque(v) => {
                buf.push(1);
                buf.extend_from_slice(&v.to_le_bytes());
            }
            Payload::Transactions(txs) => {
                buf.push(2);
                buf.extend_from_slice(&(txs.len() as u32).to_le_bytes());
                for tx in txs {
                    buf.extend_from_slice(&tx.id.to_le_bytes());
                    buf.extend_from_slice(&tx.from.to_le_bytes());
                    buf.extend_from_slice(&tx.to.to_le_bytes());
                    buf.extend_from_slice(&tx.amount.to_le_bytes());
                }
            }
        }
    }
}

impl CommitRecord {
    fn record_ref(&self) -> RecordRef<'_> {
        RecordRef {
            id: self.id,
            parent: self.parent,
            producer: self.producer,
            merit_index: self.merit_index,
            work: self.work,
            digest: self.digest,
            payload: &self.payload,
        }
    }

    fn decode(body: &[u8]) -> io::Result<CommitRecord> {
        let mut cur = Cursor { data: body, pos: 0 };
        let id = BlockId(cur.u32()?);
        let parent = BlockId(cur.u32()?);
        let producer = ProcessId(cur.u32()?);
        let merit_index = cur.u32()?;
        let work = cur.u64()?;
        let digest = cur.u64()?;
        let payload = match cur.u8()? {
            0 => Payload::Empty,
            1 => Payload::Opaque(cur.u64()?),
            2 => {
                let n = cur.u32()? as usize;
                if n > body.len() {
                    return Err(invalid("transaction count exceeds record size"));
                }
                let mut txs = Vec::with_capacity(n);
                for _ in 0..n {
                    txs.push(Tx::new(cur.u64()?, cur.u32()?, cur.u32()?, cur.u64()?));
                }
                Payload::Transactions(txs)
            }
            t => return Err(invalid(format!("unknown payload tag {t}"))),
        };
        if cur.pos != body.len() {
            return Err(invalid("trailing bytes in commit record"));
        }
        Ok(CommitRecord {
            id,
            parent,
            producer,
            merit_index,
            work,
            digest,
            payload,
        })
    }
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> io::Result<&[u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.data.len());
        let end = end.ok_or_else(|| invalid("record body too short"))?;
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven. Local because
/// the container builds without a registry — no external crc crate.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Appends one framed record to `buf`: `[len][crc][body]`.
fn frame_into(buf: &mut Vec<u8>, rec: RecordRef<'_>) {
    let hdr = buf.len();
    buf.extend_from_slice(&[0u8; 8]);
    rec.encode_into(buf);
    let body_len = (buf.len() - hdr - 8) as u32;
    let crc = crc32(&buf[hdr + 8..]);
    buf[hdr..hdr + 4].copy_from_slice(&body_len.to_le_bytes());
    buf[hdr + 4..hdr + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Decodes the frame at the head of `data`, returning the record and the
/// frame's total size. Any defect — short header, short body, CRC
/// mismatch, undecodable body — is an error; the *caller* decides
/// whether its position makes that a torn tail or corruption.
fn try_frame(data: &[u8]) -> io::Result<(CommitRecord, usize)> {
    if data.len() < 8 {
        return Err(invalid("truncated frame header"));
    }
    let len = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
    if len > MAX_RECORD_BYTES {
        return Err(invalid("implausible frame length"));
    }
    let crc = u32::from_le_bytes(data[4..8].try_into().unwrap());
    let Some(body) = data.get(8..8 + len) else {
        return Err(invalid("truncated frame body"));
    };
    if crc32(body) != crc {
        return Err(invalid("frame crc mismatch"));
    }
    let rec = CommitRecord::decode(body)?;
    Ok((rec, 8 + len))
}

fn seg_name(start: u64) -> String {
    format!("{start:012}.wal")
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Scans a segment file. For the active (last) segment `may_be_torn`
/// permits a defective final frame — scanning stops there and the valid
/// byte length is returned for the caller to truncate to. A defect in a
/// sealed segment is corruption.
fn scan_segment(path: &Path, may_be_torn: bool) -> io::Result<(Vec<CommitRecord>, u64)> {
    let data = fs::read(path)?;
    let mut recs = Vec::new();
    let mut off = 0usize;
    while off < data.len() {
        match try_frame(&data[off..]) {
            Ok((rec, sz)) => {
                recs.push(rec);
                off += sz;
            }
            Err(_) if may_be_torn => break,
            Err(e) => {
                return Err(invalid(format!(
                    "{}: corrupt record at byte {off}: {e}",
                    path.display()
                )))
            }
        }
    }
    Ok((recs, off as u64))
}

fn read_checkpoint(path: &Path) -> io::Result<Option<Vec<CommitRecord>>> {
    let data = match fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if data.len() < 16 || &data[..8] != CKPT_MAGIC {
        return Err(invalid(format!(
            "{}: bad checkpoint header",
            path.display()
        )));
    }
    let count = u64::from_le_bytes(data[8..16].try_into().unwrap());
    let mut recs = Vec::with_capacity(count.min(1 << 20) as usize);
    let mut off = 16usize;
    while (recs.len() as u64) < count {
        // The checkpoint was renamed into place atomically, so a bad
        // frame here is corruption, never a torn write.
        let (rec, sz) = try_frame(&data[off..]).map_err(|e| {
            invalid(format!(
                "{}: corrupt checkpoint record {}: {e}",
                path.display(),
                recs.len()
            ))
        })?;
        recs.push(rec);
        off += sz;
    }
    if off != data.len() {
        return Err(invalid(format!(
            "{}: trailing bytes after checkpoint records",
            path.display()
        )));
    }
    Ok(Some(recs))
}

/// A write-ahead commit log over one directory. Single-writer: the
/// `ConcurrentBlockTree` owns it inside the selection mutex, which
/// already serializes every commit.
pub struct Wal {
    config: WalConfig,
    /// Active segment (append mode: writes land at EOF).
    file: File,
    /// Global index of the active segment's first record.
    seg_start: u64,
    /// Valid bytes in the active segment.
    seg_bytes: u64,
    /// Sealed segments, ascending by start index.
    sealed: Vec<(u64, PathBuf)>,
    /// Total records durable in this log (checkpoint + segments).
    logged: u64,
    /// Records covered by the on-disk checkpoint.
    ckpt_upto: u64,
    /// Whether a claimed [`CheckpointJob`] is still unsettled — gates
    /// [`wants_checkpoint`](Self::wants_checkpoint) so only one
    /// checkpoint runs at a time.
    ckpt_inflight: bool,
    stats: WalStats,
    /// Scratch encode buffer, reused across batches.
    buf: Vec<u8>,
}

/// Per-batch encoder handed to the [`Wal::append_batch`] closure: frames
/// records into the WAL's scratch buffer in call order.
pub struct BatchFramer<'a> {
    buf: &'a mut Vec<u8>,
    n: u64,
}

impl BatchFramer<'_> {
    /// Frames one record at the tail of the batch.
    pub fn record(&mut self, rec: RecordRef<'_>) {
        frame_into(self.buf, rec);
        self.n += 1;
    }
}

impl Wal {
    /// Opens (or creates) the WAL at `config.dir` and replays it:
    /// checkpoint first, then every segment record past it, in commit
    /// order. A torn tail on the active segment is trimmed — those
    /// records were never acked — and appending resumes at the trim
    /// point. A corrupt *checkpoint* is ignored (the segment log is the
    /// source of truth; `stats().checkpoint_ignored` reports it), while
    /// corruption in a sealed segment or a missing segment is a hard
    /// error. Returns the WAL positioned to append plus the replayed
    /// records (empty for a fresh directory).
    pub fn open(config: WalConfig) -> io::Result<(Wal, Vec<CommitRecord>)> {
        fs::create_dir_all(&config.dir)?;
        // A temp file is a checkpoint that never made its rename: stale.
        let _ = fs::remove_file(config.dir.join(CKPT_TMP));
        let mut stats = WalStats::default();
        // The checkpoint is an *optimization* over the segment log, not
        // the log itself: a corrupt one (bad magic, CRC mismatch, frame
        // truncation) is ignored and recovery replays the full segment
        // chain instead. Real loss is still caught below — if compaction
        // already dropped segments the checkpoint covered, the first
        // surviving segment starts past record 0 and the missing-segment
        // check fires. I/O errors other than corruption still propagate.
        let mut records = match read_checkpoint(&config.dir.join(CKPT_NAME)) {
            Ok(recs) => recs.unwrap_or_default(),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                stats.checkpoint_ignored = true;
                Vec::new()
            }
            Err(e) => return Err(e),
        };
        let ckpt_upto = records.len() as u64;
        let mut segs: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&config.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".wal") {
                if let Ok(start) = stem.parse::<u64>() {
                    segs.push((start, entry.path()));
                }
            }
        }
        segs.sort();
        let mut sealed = Vec::new();
        let mut active: Option<(u64, PathBuf, u64)> = None;
        let n = segs.len();
        for (i, (start, path)) in segs.into_iter().enumerate() {
            let last = i + 1 == n;
            if start > records.len() as u64 {
                return Err(invalid(format!(
                    "missing WAL segment: {} starts at record {start} but only {} records precede it",
                    path.display(),
                    records.len()
                )));
            }
            let (recs, valid_len) = scan_segment(&path, last)?;
            // Records below the running count are duplicates the
            // checkpoint (or an overlapping predecessor) already covers.
            let skip = (records.len() as u64 - start) as usize;
            if skip < recs.len() {
                records.extend(recs.into_iter().skip(skip));
            }
            if last {
                active = Some((start, path, valid_len));
            } else {
                sealed.push((start, path));
            }
        }
        let (file, seg_start, seg_bytes) = match active {
            Some((start, path, valid_len)) => {
                let file = OpenOptions::new().append(true).open(&path)?;
                let disk_len = file.metadata()?.len();
                if disk_len > valid_len {
                    // The torn tail: a crash mid-append left a partial
                    // frame. Its records were never acked — trim, don't
                    // panic.
                    file.set_len(valid_len)?;
                    if config.fsync {
                        file.sync_data()?;
                        stats.fsyncs += 1;
                    }
                    stats.trimmed_bytes = disk_len - valid_len;
                }
                (file, start, valid_len)
            }
            None => {
                let start = records.len() as u64;
                let path = config.dir.join(seg_name(start));
                let file = OpenOptions::new()
                    .create_new(true)
                    .append(true)
                    .open(&path)?;
                if config.fsync {
                    sync_dir(&config.dir)?;
                    stats.fsyncs += 1;
                }
                (file, start, 0)
            }
        };
        let logged = records.len() as u64;
        Ok((
            Wal {
                config,
                file,
                seg_start,
                seg_bytes,
                sealed,
                logged,
                ckpt_upto,
                ckpt_inflight: false,
                stats,
                buf: Vec::new(),
            },
            records,
        ))
    }

    /// Total records durable in this log.
    pub fn logged(&self) -> u64 {
        self.logged
    }

    /// Records covered by the on-disk checkpoint.
    pub fn checkpointed(&self) -> u64 {
        self.ckpt_upto
    }

    /// Activity counters since open.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Appends a batch of commit records and makes them durable with a
    /// single `fdatasync` — the group commit. Records are durable (and
    /// may be acked) only once this returns `Ok`.
    pub fn append_commits<I>(&mut self, records: I) -> io::Result<usize>
    where
        I: IntoIterator<Item = CommitRecord>,
    {
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        let mut n = 0u64;
        for rec in records {
            frame_into(&mut buf, rec.record_ref());
            n += 1;
        }
        if n == 0 {
            self.buf = buf;
            return Ok(0);
        }
        let res = self.write_batch(&buf, n);
        self.buf = buf;
        res?;
        if self.seg_bytes >= self.config.segment_bytes {
            self.roll()?;
        }
        Ok(n as usize)
    }

    /// Group commit over *borrowed* record data: `fill` receives a framer
    /// and encodes each record straight into the WAL's shared scratch
    /// buffer via [`BatchFramer::record`] — no per-record allocation, no
    /// payload clone, one write + one `fdatasync` for the whole batch.
    /// Durability semantics are identical to [`append_commits`].
    ///
    /// [`append_commits`]: Self::append_commits
    pub fn append_batch<F>(&mut self, fill: F) -> io::Result<usize>
    where
        F: FnOnce(&mut BatchFramer<'_>),
    {
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        let mut framer = BatchFramer {
            buf: &mut buf,
            n: 0,
        };
        fill(&mut framer);
        let n = framer.n;
        if n == 0 {
            self.buf = buf;
            return Ok(0);
        }
        let res = self.write_batch(&buf, n);
        self.buf = buf;
        res?;
        if self.seg_bytes >= self.config.segment_bytes {
            self.roll()?;
        }
        Ok(n as usize)
    }

    fn write_batch(&mut self, buf: &[u8], n: u64) -> io::Result<()> {
        self.file.write_all(buf)?;
        if self.config.fsync {
            self.file.sync_data()?;
            self.stats.fsyncs += 1;
        }
        self.seg_bytes += buf.len() as u64;
        self.logged += n;
        self.stats.records += n;
        self.stats.bytes += buf.len() as u64;
        Ok(())
    }

    /// Seals the active segment and starts a fresh one named by the
    /// current record count. The directory fsync makes the new name
    /// durable *before* any record lands in it — otherwise a crash could
    /// recover a listing that misses a segment full of acked records.
    fn roll(&mut self) -> io::Result<()> {
        let old = self.config.dir.join(seg_name(self.seg_start));
        let path = self.config.dir.join(seg_name(self.logged));
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        if self.config.fsync {
            sync_dir(&self.config.dir)?;
            self.stats.fsyncs += 1;
        }
        self.sealed.push((self.seg_start, old));
        self.file = file;
        self.seg_start = self.logged;
        self.seg_bytes = 0;
        self.stats.segments_rolled += 1;
        Ok(())
    }

    /// Whether a checkpoint covering `upto` records is due. The gate is
    /// geometric — at least `checkpoint_interval` new records *and* half
    /// the already-covered prefix again — so the O(prefix) rewrite cost
    /// amortizes to O(1) per record no matter how long the log runs.
    /// `false` while a claimed checkpoint is still in flight.
    pub fn wants_checkpoint(&self, upto: u64) -> bool {
        !self.ckpt_inflight
            && upto <= self.logged
            && upto > self.ckpt_upto
            && upto - self.ckpt_upto >= self.config.checkpoint_interval.max(self.ckpt_upto / 2)
    }

    /// Claims a checkpoint covering the first `upto` records and hands
    /// back a detached [`CheckpointJob`] that performs the O(prefix)
    /// encoding, temp-file write, fsync, and rename **without borrowing
    /// the `Wal`** — so the caller can run it off whatever lock
    /// serializes appends (the selection mutex, in
    /// `crate::concurrent`), while appends keep landing in the active
    /// segment concurrently: the checkpoint touches only the temp file
    /// and the checkpoint name, never the segment being appended to.
    ///
    /// At most one job may be in flight ([`wants_checkpoint`] gates);
    /// the claim must be settled with [`finish_checkpoint`] or
    /// [`abort_checkpoint`].
    ///
    /// [`wants_checkpoint`]: Self::wants_checkpoint
    /// [`finish_checkpoint`]: Self::finish_checkpoint
    /// [`abort_checkpoint`]: Self::abort_checkpoint
    pub fn begin_checkpoint(&mut self, upto: u64) -> CheckpointJob {
        assert!(!self.ckpt_inflight, "one checkpoint in flight at a time");
        assert!(upto <= self.logged, "checkpoint past the durable log");
        assert!(upto >= self.ckpt_upto, "checkpoints are monotone");
        self.ckpt_inflight = true;
        CheckpointJob {
            dir: self.config.dir.clone(),
            fsync: self.config.fsync,
            upto,
        }
    }

    /// Records a completed [`CheckpointJob`]: advances the covered
    /// prefix, folds the job's fsync count into the stats, and prunes
    /// every sealed segment the prefix fully covers from the in-memory
    /// list. Returns the pruned segments' paths — the *caller* unlinks
    /// them, again off the append lock. Deletion failures are ignorable:
    /// a leftover covered segment only costs replay skips. Segment i
    /// spans records `start_i .. start_{i+1}` (next sealed start, or the
    /// active segment's).
    pub fn finish_checkpoint(&mut self, done: CheckpointDone) -> Vec<PathBuf> {
        debug_assert!(self.ckpt_inflight, "finish without a claim");
        self.ckpt_inflight = false;
        self.ckpt_upto = done.upto;
        self.stats.fsyncs += done.fsyncs;
        self.stats.checkpoints += 1;
        let mut dead = Vec::new();
        let mut keep = Vec::new();
        for i in 0..self.sealed.len() {
            let end = self
                .sealed
                .get(i + 1)
                .map(|s| s.0)
                .unwrap_or(self.seg_start);
            if end <= done.upto {
                dead.push(self.sealed[i].1.clone());
                self.stats.segments_dropped += 1;
            } else {
                keep.push(self.sealed[i].clone());
            }
        }
        self.sealed = keep;
        dead
    }

    /// Releases a claimed checkpoint whose job failed (or was dropped
    /// unrun): no state advances, and the geometric gate may re-fire.
    /// Checkpoint IO failures are non-fatal — the log keeps its segments
    /// and stays correct, merely uncompacted.
    pub fn abort_checkpoint(&mut self) {
        debug_assert!(self.ckpt_inflight, "abort without a claim");
        self.ckpt_inflight = false;
    }

    /// Writes a checkpoint covering `records` (the first `records.len()`
    /// entries of the commit log — the caller's finalized prefix), then
    /// deletes every sealed segment that prefix fully covers. The
    /// single-caller convenience over
    /// [`begin_checkpoint`](Self::begin_checkpoint) /
    /// [`finish_checkpoint`](Self::finish_checkpoint).
    pub fn checkpoint(&mut self, records: &[CommitRecord]) -> io::Result<()> {
        let job = self.begin_checkpoint(records.len() as u64);
        match job.run(records) {
            Ok(done) => {
                for path in self.finish_checkpoint(done) {
                    let _ = fs::remove_file(path);
                }
                Ok(())
            }
            Err(e) => {
                self.abort_checkpoint();
                Err(e)
            }
        }
    }
}

/// A claimed-but-unwritten checkpoint (see [`Wal::begin_checkpoint`]):
/// owns everything the IO needs — directory, fsync policy, coverage —
/// and nothing of the `Wal`, so the write runs lock-free with respect
/// to concurrent appends.
pub struct CheckpointJob {
    dir: PathBuf,
    fsync: bool,
    upto: u64,
}

/// Proof of a completed checkpoint write, consumed by
/// [`Wal::finish_checkpoint`].
pub struct CheckpointDone {
    upto: u64,
    fsyncs: u64,
}

impl CheckpointJob {
    /// Records this job covers (the claim passed to `begin_checkpoint`).
    pub fn upto(&self) -> u64 {
        self.upto
    }

    /// Performs the checkpoint IO: encode `records` (which must be the
    /// first [`upto`](Self::upto) commit-log entries), write them to a
    /// temp file, fsync, and atomically rename over the live checkpoint.
    /// A crash at any point leaves either the old or the new checkpoint,
    /// both valid.
    pub fn run(self, records: &[CommitRecord]) -> io::Result<CheckpointDone> {
        assert_eq!(records.len() as u64, self.upto, "claim matches records");
        let tmp = self.dir.join(CKPT_TMP);
        let mut buf = Vec::with_capacity(16 + records.len() * 64);
        buf.extend_from_slice(CKPT_MAGIC);
        buf.extend_from_slice(&self.upto.to_le_bytes());
        for rec in records {
            frame_into(&mut buf, rec.record_ref());
        }
        let mut fsyncs = 0;
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&buf)?;
            if self.fsync {
                f.sync_all()?;
                fsyncs += 1;
            }
        }
        fs::rename(&tmp, self.dir.join(CKPT_NAME))?;
        if self.fsync {
            sync_dir(&self.dir)?;
            fsyncs += 1;
        }
        Ok(CheckpointDone {
            upto: self.upto,
            fsyncs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_wal_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "btadt-wal-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed) // relaxed: unique-name counter
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(i: u32) -> CommitRecord {
        CommitRecord {
            id: BlockId(i),
            parent: BlockId(i.saturating_sub(1)),
            producer: ProcessId(i % 3),
            merit_index: i % 5,
            work: 1 + i as u64 % 7,
            digest: 0xD1CE_0000 ^ i as u64,
            payload: match i % 3 {
                0 => Payload::Empty,
                1 => Payload::Opaque(i as u64 * 31),
                _ => Payload::Transactions(vec![
                    Tx::new(i as u64, i, i + 1, 100 + i as u64),
                    Tx::new(i as u64 + 1, i + 2, i + 3, 7),
                ]),
            },
        }
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrips_through_a_frame() {
        for i in 0..9 {
            let r = rec(i);
            let mut buf = Vec::new();
            frame_into(&mut buf, r.record_ref());
            let (back, sz) = try_frame(&buf).expect("clean frame");
            assert_eq!(sz, buf.len());
            assert_eq!(back, r);
        }
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let mut buf = Vec::new();
        let four = rec(4);
        frame_into(&mut buf, four.record_ref());
        // Flip one body byte: CRC must catch it.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(try_frame(&bad).is_err(), "crc mismatch");
        // Truncations at every boundary are defects too.
        for cut in 0..buf.len() {
            assert!(try_frame(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches real files (fsync, rename, set_len)")]
    fn open_append_reopen_replays_everything() {
        let dir = tmp_wal_dir("roundtrip");
        let recs: Vec<CommitRecord> = (1..40).map(rec).collect();
        {
            let (mut wal, replay) = Wal::open(WalConfig::new(&dir)).unwrap();
            assert!(replay.is_empty());
            wal.append_commits(recs[..25].iter().cloned()).unwrap();
            wal.append_commits(recs[25..].iter().cloned()).unwrap();
            assert_eq!(wal.logged(), 39);
            assert_eq!(wal.stats().fsyncs, 3, "open + one per batch");
        }
        let (wal, replay) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(replay, recs);
        assert_eq!(wal.logged(), 39);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches real files (fsync, rename, set_len)")]
    fn torn_tail_is_trimmed_at_every_truncation_point() {
        let dir = tmp_wal_dir("torn");
        let recs: Vec<CommitRecord> = (1..8).map(rec).collect();
        let (mut wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
        // Record the segment length after each append: frame boundaries.
        let mut boundaries = vec![0u64];
        for r in &recs {
            wal.append_commits(std::iter::once(r.clone())).unwrap();
            boundaries.push(wal.seg_bytes);
        }
        let seg = dir.join(seg_name(0));
        drop(wal);
        let full = fs::read(&seg).unwrap();
        for cut in 0..full.len() as u64 {
            fs::write(&seg, &full[..cut as usize]).unwrap();
            let (wal, replay) = Wal::open(WalConfig::new(&dir)).unwrap();
            // The replay is exactly the records whose frames fit below
            // the cut — a partial trailing frame is trimmed, not fatal.
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(replay.len(), whole, "cut at byte {cut}");
            assert_eq!(replay, recs[..whole], "cut at byte {cut}");
            assert_eq!(wal.logged(), whole as u64);
            if cut > boundaries[whole] {
                assert_eq!(wal.stats().trimmed_bytes, cut - boundaries[whole]);
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches real files (fsync, rename, set_len)")]
    fn torn_tail_recovery_keeps_accepting_appends() {
        let dir = tmp_wal_dir("torn-continue");
        let (mut wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
        wal.append_commits((1..5).map(rec)).unwrap();
        drop(wal);
        let seg = dir.join(seg_name(0));
        let full = fs::read(&seg).unwrap();
        fs::write(&seg, &full[..full.len() - 3]).unwrap(); // mid-record
        let (mut wal, replay) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(replay.len(), 3, "last record torn away");
        wal.append_commits((4..9).map(rec)).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(WalConfig::new(&dir)).unwrap();
        let expect: Vec<CommitRecord> = (1..9).map(rec).collect();
        assert_eq!(replay, expect, "appends after a trim replay cleanly");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches real files (fsync, rename, set_len)")]
    fn corruption_in_a_sealed_segment_is_a_hard_error() {
        let dir = tmp_wal_dir("sealed-corrupt");
        let cfg = WalConfig::new(&dir).segment_bytes(64); // rolls fast
        let (mut wal, _) = Wal::open(cfg.clone()).unwrap();
        for i in 1..20 {
            wal.append_commits(std::iter::once(rec(i))).unwrap();
        }
        assert!(wal.stats().segments_rolled >= 2, "several sealed segments");
        drop(wal);
        // Flip a byte in the middle of the FIRST segment — not a tail.
        let seg = dir.join(seg_name(0));
        let mut data = fs::read(&seg).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        fs::write(&seg, &data).unwrap();
        let err = Wal::open(cfg).err().expect("sealed corruption detected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches real files (fsync, rename, set_len)")]
    fn segments_roll_and_replay_in_order() {
        let dir = tmp_wal_dir("roll");
        let cfg = WalConfig::new(&dir).segment_bytes(128);
        let recs: Vec<CommitRecord> = (1..60).map(rec).collect();
        {
            let (mut wal, _) = Wal::open(cfg.clone()).unwrap();
            for chunk in recs.chunks(7) {
                wal.append_commits(chunk.iter().cloned()).unwrap();
            }
            assert!(wal.stats().segments_rolled >= 3);
        }
        let (_, replay) = Wal::open(cfg).unwrap();
        assert_eq!(replay, recs);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches real files (fsync, rename, set_len)")]
    fn checkpoint_compacts_covered_segments_and_replays_identically() {
        let dir = tmp_wal_dir("ckpt");
        let cfg = WalConfig::new(&dir)
            .segment_bytes(128)
            .checkpoint_interval(8);
        let recs: Vec<CommitRecord> = (1..80).map(rec).collect();
        let (mut wal, _) = Wal::open(cfg.clone()).unwrap();
        let mut appended = 0usize;
        for chunk in recs.chunks(5) {
            wal.append_commits(chunk.iter().cloned()).unwrap();
            appended += chunk.len();
            // Pretend everything but the newest 10 records is final.
            let upto = appended.saturating_sub(10);
            if wal.wants_checkpoint(upto as u64) {
                wal.checkpoint(&recs[..upto]).unwrap();
            }
        }
        assert!(wal.stats().checkpoints >= 2, "compaction ran");
        assert!(wal.stats().segments_dropped >= 1, "covered segments went");
        let files: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".wal"))
            .collect();
        assert!(
            (files.len() as u64) < wal.stats().segments_rolled + 1,
            "some segments were dropped: {files:?}"
        );
        drop(wal);
        let (wal, replay) = Wal::open(cfg).unwrap();
        assert_eq!(replay, recs, "checkpoint + tail replays bit-identically");
        assert!(wal.checkpointed() > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches real files (fsync, rename, set_len)")]
    fn checkpoint_skips_below_the_geometric_gate() {
        let dir = tmp_wal_dir("gate");
        let cfg = WalConfig::new(&dir).checkpoint_interval(10);
        let (mut wal, _) = Wal::open(cfg).unwrap();
        wal.append_commits((1..30).map(rec)).unwrap();
        assert!(!wal.wants_checkpoint(5), "below the interval floor");
        assert!(wal.wants_checkpoint(20));
        let recs: Vec<CommitRecord> = (1..21).map(rec).collect();
        wal.checkpoint(&recs).unwrap();
        // 9 new < max(interval, 20/2) = 10: not yet.
        assert!(!wal.wants_checkpoint(29));
        fs::remove_dir_all(wal.dir()).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches real files (fsync, rename, set_len)")]
    fn no_fsync_mode_still_replays() {
        let dir = tmp_wal_dir("nofsync");
        let cfg = WalConfig::new(&dir).no_fsync();
        {
            let (mut wal, _) = Wal::open(cfg.clone()).unwrap();
            wal.append_commits((1..10).map(rec)).unwrap();
            assert_eq!(wal.stats().fsyncs, 0);
        }
        let (_, replay) = Wal::open(cfg).unwrap();
        assert_eq!(replay.len(), 9);
        fs::remove_dir_all(&dir).unwrap();
    }
}
