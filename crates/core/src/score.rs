//! Score functions over blockchains.
//!
//! §3.1.2: `score: BC → N` is a *monotonic increasing deterministic* function
//! — `score(bc⌢{b}) > score(bc)` — abstracting "the height, the weight,
//! etc.". The score of the genesis-only chain is the conventional `s0`.
//!
//! The trait is object-safe so history checkers can take `&dyn ScoreFn`.

use crate::chain::Blockchain;
use crate::store::BlockView;

/// A monotonic chain score (§3.1.2).
///
/// Implementations must guarantee `score(bc⌢{b}) > score(bc)` for every
/// extension; [`monotonicity tests`](self::tests) and proptests in this
/// module enforce it for the provided implementations.
pub trait ScoreFn: Sync {
    /// Score of the whole chain.
    fn score(&self, chain: &Blockchain) -> u64 {
        self.score_prefix(chain, chain.len())
    }

    /// Score of the prefix consisting of the first `n` blocks (`n ≥ 1`;
    /// `n = 1` is the genesis-only chain, scoring `s0`).
    fn score_prefix(&self, chain: &Blockchain, n: usize) -> u64;

    /// The conventional score `s0` of `{b0}`.
    fn s0(&self) -> u64 {
        0
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Chain length: `score(bc) = |bc| − 1`, i.e. the number of non-genesis
/// blocks (so `s0 = 0`). This is the score used in the paper's Figs. 2–4
/// ("the score is the length l").
#[derive(Clone, Copy, Debug, Default)]
pub struct LengthScore;

impl ScoreFn for LengthScore {
    #[inline]
    fn score_prefix(&self, chain: &Blockchain, n: usize) -> u64 {
        assert!(n >= 1 && n <= chain.len(), "prefix length out of range");
        (n - 1) as u64
    }

    fn name(&self) -> &'static str {
        "length"
    }
}

/// Cumulative work: the "blockchain which has required the most
/// computational work" view of Bitcoin/Ethereum (§5.1–5.2).
///
/// Monotonic provided every minted block carries `work ≥ 1` (all workload
/// generators in this workspace do; a debug assertion fires otherwise).
pub struct WorkScore<'s> {
    store: &'s dyn BlockView,
}

impl<'s> WorkScore<'s> {
    pub fn new(store: &'s dyn BlockView) -> Self {
        WorkScore { store }
    }
}

impl ScoreFn for WorkScore<'_> {
    #[inline]
    fn score_prefix(&self, chain: &Blockchain, n: usize) -> u64 {
        assert!(n >= 1 && n <= chain.len(), "prefix length out of range");
        let tip = chain.ids()[n - 1];
        debug_assert!(
            chain.ids()[1..n]
                .iter()
                .all(|&b| self.store.work_of(b) >= 1),
            "WorkScore monotonicity requires work ≥ 1 on every block"
        );
        self.store.cumulative_work(tip)
    }

    fn name(&self) -> &'static str {
        "work"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Payload;
    use crate::ids::{BlockId, ProcessId};
    use crate::store::BlockStore;

    fn chain(ids: &[u32]) -> Blockchain {
        Blockchain::from_ids(ids.iter().map(|&i| BlockId(i)).collect())
    }

    #[test]
    fn length_score_basics() {
        assert_eq!(LengthScore.score(&Blockchain::genesis()), 0);
        assert_eq!(LengthScore.s0(), 0);
        assert_eq!(LengthScore.score(&chain(&[0, 1, 2, 3])), 3);
        assert_eq!(LengthScore.score_prefix(&chain(&[0, 1, 2, 3]), 2), 1);
        assert_eq!(LengthScore.name(), "length");
    }

    #[test]
    fn length_score_is_monotonic() {
        let c = chain(&[0, 1, 2]);
        let e = c.extended(BlockId(3));
        assert!(LengthScore.score(&e) > LengthScore.score(&c));
    }

    #[test]
    fn work_score_accumulates() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 5, 0, Payload::Empty);
        let b = s.mint(a, ProcessId(0), 0, 3, 1, Payload::Empty);
        let ws = WorkScore::new(&s);
        let c = Blockchain::from_tip(&s, b);
        assert_eq!(ws.score(&c), 8);
        assert_eq!(ws.score_prefix(&c, 2), 5);
        assert_eq!(ws.score_prefix(&c, 1), 0, "s0 for genesis prefix");
        assert_eq!(ws.name(), "work");
    }

    #[test]
    fn work_score_is_monotonic_with_positive_work() {
        let mut s = BlockStore::new();
        let mut prev = BlockId::GENESIS;
        let mut last_score = 0u64;
        for i in 0..20 {
            prev = s.mint(prev, ProcessId(0), 0, 1 + (i % 4), i, Payload::Empty);
            let ws = WorkScore::new(&s);
            let sc = ws.score(&Blockchain::from_tip(&s, prev));
            assert!(sc > last_score);
            last_score = sc;
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn score_prefix_rejects_zero() {
        LengthScore.score_prefix(&Blockchain::genesis(), 0);
    }
}
