//! The abstract-data-type formalism of §2.
//!
//! An ADT is a transducer `T = ⟨A, B, Z, ξ0, τ, δ⟩` (Def. 2.1): input
//! alphabet `A`, output alphabet `B`, abstract states `Z` with initial state
//! `ξ0`, transition function `τ : Z×A → Z` and output function
//! `δ : Z×A → B`. Operations are `Σ = A ∪ (A×B)` (Def. 2.2) — an input
//! symbol alone, or an input/output couple `α/β`.
//!
//! The paper's input symbols carry no arguments ("the call of the same
//! operation with different arguments is encoded by different symbols"); the
//! standard implementation encoding is an input *type* whose values are the
//! symbols, which is what `Input` is here.
//!
//! [`check_sequential_history`] implements Def. 2.3: a word `σ ∈ Σ*` is a
//! sequential history of `T` iff replaying it from `ξ0` finds every output
//! compatible with the current state. Since our transducers are
//! deterministic, membership in `L(T)` reduces to a fold.

use std::fmt;

/// A deterministic abstract data type `⟨A, B, Z, ξ0, τ, δ⟩` (Def. 2.1).
pub trait AbstractDataType {
    /// The input alphabet `A` (a value = a symbol).
    type Input: Clone + fmt::Debug;
    /// The output alphabet `B`.
    type Output: Clone + PartialEq + fmt::Debug;
    /// The abstract state set `Z`.
    type State: Clone;

    /// The initial abstract state `ξ0`.
    fn initial_state(&self) -> Self::State;

    /// The transition function `τ(ξ, α)`.
    fn transition(&self, state: &Self::State, input: &Self::Input) -> Self::State;

    /// The output function `δ(ξ, α)`.
    fn output(&self, state: &Self::State, input: &Self::Input) -> Self::Output;

    /// Applies one operation: returns `(τ(ξ,α), δ(ξ,α))`.
    fn step(&self, state: &Self::State, input: &Self::Input) -> (Self::State, Self::Output) {
        (self.transition(state, input), self.output(state, input))
    }
}

/// An element of `Σ = A ∪ (A×B)` (Def. 2.2): `output = None` encodes a bare
/// input symbol `α`, `Some(β)` encodes the couple `α/β`.
#[derive(Clone, Debug)]
pub struct Operation<I, O> {
    pub input: I,
    pub output: Option<O>,
}

impl<I, O> Operation<I, O> {
    /// A bare input symbol `α ∈ A`.
    pub fn input_only(input: I) -> Self {
        Operation {
            input,
            output: None,
        }
    }

    /// A couple `α/β ∈ A×B`.
    pub fn with_output(input: I, output: O) -> Self {
        Operation {
            input,
            output: Some(output),
        }
    }
}

/// Why a word is not in `L(T)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeqSpecViolation {
    /// Index of the offending operation in the word.
    pub index: usize,
    /// Rendered expected output `δ(ξi, σi)`.
    pub expected: String,
    /// Rendered output the word claimed.
    pub got: String,
}

impl fmt::Display for SeqSpecViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "operation #{} incompatible with state: expected output {}, word claims {}",
            self.index, self.expected, self.got
        )
    }
}

impl std::error::Error for SeqSpecViolation {}

/// Def. 2.3 membership test: replays `word` from `ξ0`; on success returns
/// the visited state sequence `ξ0, ξ1, …, ξ|σ|` (one state more than
/// operations). An operation with `output = None` is compatible with any
/// state (it constrains only via `τ`).
pub fn check_sequential_history<T: AbstractDataType>(
    adt: &T,
    word: &[Operation<T::Input, T::Output>],
) -> Result<Vec<T::State>, SeqSpecViolation> {
    let mut states = Vec::with_capacity(word.len() + 1);
    let mut state = adt.initial_state();
    for (index, op) in word.iter().enumerate() {
        if let Some(claimed) = &op.output {
            let expected = adt.output(&state, &op.input);
            if &expected != claimed {
                return Err(SeqSpecViolation {
                    index,
                    expected: format!("{expected:?}"),
                    got: format!("{claimed:?}"),
                });
            }
        }
        let next = adt.transition(&state, &op.input);
        states.push(state);
        state = next;
    }
    states.push(state);
    Ok(states)
}

/// Convenience: is the word a member of `L(T)`?
pub fn is_sequential_history<T: AbstractDataType>(
    adt: &T,
    word: &[Operation<T::Input, T::Output>],
) -> bool {
    check_sequential_history(adt, word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy counter ADT: A = {Inc, Get}, B = N, Z = N.
    struct Counter;

    #[derive(Clone, Debug, PartialEq)]
    enum In {
        Inc,
        Get,
    }

    impl AbstractDataType for Counter {
        type Input = In;
        type Output = u64;
        type State = u64;

        fn initial_state(&self) -> u64 {
            0
        }

        fn transition(&self, s: &u64, i: &In) -> u64 {
            match i {
                In::Inc => s + 1,
                In::Get => *s,
            }
        }

        fn output(&self, s: &u64, i: &In) -> u64 {
            match i {
                In::Inc => s + 1,
                In::Get => *s,
            }
        }
    }

    #[test]
    fn accepts_valid_word() {
        let word = vec![
            Operation::with_output(In::Inc, 1),
            Operation::with_output(In::Inc, 2),
            Operation::with_output(In::Get, 2),
        ];
        let states = check_sequential_history(&Counter, &word).unwrap();
        assert_eq!(states, vec![0, 1, 2, 2]);
    }

    #[test]
    fn rejects_incompatible_output() {
        let word = vec![
            Operation::with_output(In::Inc, 1),
            Operation::with_output(In::Get, 7),
        ];
        let err = check_sequential_history(&Counter, &word).unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.expected, "1");
        assert_eq!(err.got, "7");
        assert!(!is_sequential_history(&Counter, &word));
    }

    #[test]
    fn bare_inputs_constrain_only_via_transition() {
        let word = vec![
            Operation::input_only(In::Inc),
            Operation::input_only(In::Inc),
            Operation::with_output(In::Get, 2),
        ];
        assert!(is_sequential_history(&Counter, &word));
    }

    #[test]
    fn empty_word_is_in_language() {
        let states = check_sequential_history(&Counter, &[]).unwrap();
        assert_eq!(states, vec![0]);
    }

    #[test]
    fn step_pairs_transition_and_output() {
        let (s, o) = Counter.step(&5, &In::Inc);
        assert_eq!((s, o), (6, 6));
    }
}
