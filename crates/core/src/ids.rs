//! Small identifier newtypes and the deterministic hashing primitives used
//! throughout the workspace.
//!
//! Everything in this reproduction is deterministic: all pseudo-randomness
//! flows from explicit `u64` seeds through [SplitMix64][splitmix64], a tiny
//! statistically strong mixer (Steele et al., "Fast splittable pseudorandom
//! number generators", OOPSLA 2014). The paper's token-oracle tapes
//! (§3.2.1, footnote 3) assume a pseudorandom Bernoulli sequence; SplitMix64
//! gives us exactly that with O(1) random access per cell.

use std::fmt;

/// Index of a block inside a [`BlockStore`](crate::store::BlockStore).
///
/// Blocks are globally identified: every replica, oracle, and history event
/// refers to the same arena slot, so prefix checks and `mcps` computations
/// never need to reconcile per-replica naming.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The genesis block `b0` occupies slot 0 of every store by construction.
    pub const GENESIS: BlockId = BlockId(0);

    /// Raw index into the owning arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True iff this is the genesis block `b0`.
    #[inline]
    pub fn is_genesis(self) -> bool {
        self == Self::GENESIS
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_genesis() {
            write!(f, "b0")
        } else {
            write!(f, "b{}", self.0)
        }
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifier of a sequential process (§2: "processes are sequential and
/// communicate through message-passing").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u32);

impl ProcessId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A point on the *fictional global clock* of §4.2. Processes never read it;
/// it only orders events in recorded histories (the `≺` relation) and drives
/// the discrete-event simulator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    pub const ZERO: Time = Time(0);

    #[inline]
    pub fn tick(self) -> Time {
        Time(self.0 + 1)
    }

    #[inline]
    pub fn plus(self, d: u64) -> Time {
        Time(self.0 + d)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Advances `state` and returns the next SplitMix64 output.
///
/// This is the canonical finalizer from Steele et al.; each output is a
/// bijective mix of the incremented Weyl sequence, so distinct `(seed, i)`
/// pairs give independent-looking values.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless random access: the `i`-th cell of the stream seeded by `seed`.
#[inline]
pub fn splitmix64_at(seed: u64, i: u64) -> u64 {
    let mut s = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut z = s;
    // One extra advance decorrelates adjacent seeds.
    z = splitmix64(&mut s) ^ z.rotate_left(23);
    let mut s2 = z;
    splitmix64(&mut s2)
}

/// Order-dependent hash combine, used to derive block digests and child seeds.
#[inline]
pub fn mix2(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.rotate_left(32) ^ 0xD6E8_FEB8_6659_FD93;
    splitmix64(&mut s) ^ a.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Hash-combines a whole slice (order dependent).
pub fn mix_slice(seed: u64, xs: &[u64]) -> u64 {
    let mut acc = seed;
    for &x in xs {
        acc = mix2(acc, x);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn block_id_genesis() {
        assert!(BlockId::GENESIS.is_genesis());
        assert!(!BlockId(1).is_genesis());
        assert_eq!(BlockId(7).index(), 7);
        assert_eq!(format!("{}", BlockId::GENESIS), "b0");
        assert_eq!(format!("{}", BlockId(3)), "b3");
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::ZERO;
        assert_eq!(t.tick(), Time(1));
        assert_eq!(t.plus(10), Time(10));
        assert!(Time(3) < Time(4));
        assert_eq!(format!("{}", Time(5)), "t5");
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..100 {
            assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        }
    }

    #[test]
    fn splitmix_random_access_matches_itself() {
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            for i in 0..50 {
                assert_eq!(splitmix64_at(seed, i), splitmix64_at(seed, i));
            }
        }
    }

    #[test]
    fn splitmix_outputs_are_distinct() {
        let mut seen = HashSet::new();
        let mut s = 7u64;
        for _ in 0..10_000 {
            assert!(seen.insert(splitmix64(&mut s)), "collision in 10k outputs");
        }
    }

    #[test]
    fn splitmix_at_distinct_across_seeds_and_indices() {
        let mut seen = HashSet::new();
        for seed in 0..100u64 {
            for i in 0..100u64 {
                seen.insert(splitmix64_at(seed, i));
            }
        }
        // A few collisions would be astronomically unlikely for 10k values.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn splitmix_bits_are_balanced() {
        // Each bit position should be set roughly half the time.
        let n = 4096u64;
        let mut counts = [0u32; 64];
        for i in 0..n {
            let v = splitmix64_at(0xABCD, i);
            for (bit, count) in counts.iter_mut().enumerate() {
                *count += ((v >> bit) & 1) as u32;
            }
        }
        for (bit, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!(
                (0.45..0.55).contains(&frac),
                "bit {bit} set fraction {frac}"
            );
        }
    }

    #[test]
    fn mix2_is_order_dependent() {
        assert_ne!(mix2(1, 2), mix2(2, 1));
        assert_ne!(mix_slice(0, &[1, 2, 3]), mix_slice(0, &[3, 2, 1]));
    }
}
