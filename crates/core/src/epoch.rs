//! Epoch-based reclamation: grace periods for lock-free readers.
//!
//! The concurrent BT-ADT publishes its selected chain through an atomic
//! pointer (`crate::concurrent`). Readers dereference that pointer without
//! any lock, so the writer may never free a swapped-out snapshot while a
//! reader might still be looking at it. PR 2 solved this by *never*
//! freeing (retire-until-drop) — correct, but one leaked box per commit.
//! This module supplies the missing piece: a small quiescent-state /
//! epoch-reclamation domain, vendored in-tree like the other shims (no
//! external crates).
//!
//! # Protocol
//!
//! * The domain keeps a **global epoch** `G` (63-bit, wrapping) and a
//!   fixed array of cache-line-padded **reader slots**.
//! * A reader calls [`EpochDomain::pin`] before touching any protected
//!   pointer: the returned [`Guard`] claims a free slot, publishes the
//!   current epoch in it (`SeqCst`, followed by a `SeqCst` fence), and
//!   clears the slot on drop. Pins are cheap — one CAS on a slot that is
//!   effectively thread-private (per-thread start hint, 128-byte padding),
//!   so concurrent readers do **not** bounce a shared cache line the way a
//!   shared `Arc` refcount does.
//! * A writer that unlinks an object calls [`EpochDomain::retire`] (or
//!   [`EpochDomain::defer`]): the object joins the garbage bag tagged with
//!   the epoch read *after* the unlink.
//! * [`EpochDomain::try_reclaim`] advances `G` by one when every pinned
//!   slot already carries `G`, and frees every bag at least
//!   [`GRACE_EPOCHS`] (= 2) epochs old. The two-epoch grace period is the
//!   standard safety margin: a reader pinned in epoch `e` can only hold
//!   pointers unlinked in `e - 1` or later, and `G` cannot advance twice
//!   past a live pin — so by the time a bag's age reaches 2, every reader
//!   that could have seen its contents has unpinned at least once. (The
//!   `SeqCst` fences on the pin and advance paths close the one-advance
//!   race where a just-published pin is missed by a concurrent scan.)
//!
//! A pinned reader never blocks writers or other readers — it only delays
//! *reclamation*. Conversely `pin` never waits on writers: the slot claim
//! spins only when more threads hold guards simultaneously than there are
//! slots (256 by default).
//!
//! Epochs wrap at 2^63. All comparisons are age-based
//! (`wrapping_sub` masked to 63 bits), so the protocol survives a full
//! wrap — exercised by the unit tests via [`EpochDomain::with_config`].

use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};

/// Reader slots per domain. More slots than the workload has
/// simultaneously pinned readers costs only idle memory; fewer makes
/// `pin` spin until a slot frees.
pub const DEFAULT_READER_SLOTS: usize = 256;

/// Bags this many epochs old are safe to free (see the module docs).
pub const GRACE_EPOCHS: u64 = 2;

/// Epochs live in 63 bits: slot values encode `(epoch << 1) | 1` so the
/// zero word can mean "unpinned" even across an epoch wrap.
const EPOCH_MASK: u64 = (1 << 63) - 1;

/// Age of `epoch` relative to `global`, wrap-safe (bags are always
/// retired at or before the current global epoch, so the modular
/// distance is the true age).
#[inline]
fn age(global: u64, epoch: u64) -> u64 {
    global.wrapping_sub(epoch) & EPOCH_MASK
}

/// One reader slot, padded to its own cache line pair so pins by
/// different threads never share a line.
#[repr(align(128))]
struct Slot(AtomicU64);

type Deferred = Box<dyn FnOnce() + Send>;

/// Garbage retired during one epoch.
struct Bag {
    epoch: u64,
    items: Vec<Deferred>,
    bytes: usize,
}

#[derive(Default)]
struct Garbage {
    bags: VecDeque<Bag>,
}

/// An epoch-reclamation domain: one global epoch, a slot array for
/// readers, and deferred-drop bags for writers.
///
/// The domain does not spawn threads and holds no locks while readers
/// pin; the garbage bags sit behind a mutex that only retiring /
/// reclaiming writers touch (in the BT-ADT both happen under the
/// selection lock, so the mutex is uncontended there).
pub struct EpochDomain {
    global: AtomicU64,
    slots: Box<[Slot]>,
    /// One past the highest slot index ever claimed: advance scans stop
    /// here, so the cost of `try_advance` tracks the number of reader
    /// threads the domain has actually seen, not the slot capacity.
    slots_high: AtomicUsize,
    garbage: Mutex<Garbage>,
    /// Bytes currently parked in bags (as reported by retire callers).
    retired_bytes: AtomicUsize,
    /// High-water mark of `retired_bytes` — the boundedness witness the
    /// churn stress and `bench-concurrent` report.
    retired_bytes_peak: AtomicUsize,
    /// Items currently parked in bags.
    pending_items: AtomicUsize,
    /// Items freed over the domain's lifetime.
    reclaimed_items: AtomicU64,
}

impl EpochDomain {
    /// A domain with [`DEFAULT_READER_SLOTS`] slots starting at epoch 0.
    pub fn new() -> Self {
        EpochDomain::with_config(DEFAULT_READER_SLOTS, 0)
    }

    /// A domain with an explicit slot count and start epoch (the start
    /// epoch is how the tests drive the protocol across a 63-bit wrap).
    pub fn with_config(slots: usize, start_epoch: u64) -> Self {
        assert!(slots > 0, "need at least one reader slot");
        EpochDomain {
            global: AtomicU64::new(start_epoch & EPOCH_MASK),
            slots: (0..slots).map(|_| Slot(AtomicU64::new(0))).collect(),
            slots_high: AtomicUsize::new(0),
            garbage: Mutex::new(Garbage::default()),
            retired_bytes: AtomicUsize::new(0),
            retired_bytes_peak: AtomicUsize::new(0),
            pending_items: AtomicUsize::new(0),
            reclaimed_items: AtomicU64::new(0),
        }
    }

    /// Pins the current epoch, claiming a reader slot. Protected pointers
    /// loaded while the guard lives stay allocated until after it drops.
    /// Nested pins from one thread claim independent slots and are safe
    /// in any drop order.
    ///
    /// # Panics
    ///
    /// When this thread already holds at least as many live guards *on
    /// this domain* as the domain has slots and no slot is free: waiting
    /// would deadlock on our own pins, so the bug (a loop accumulating
    /// `Guard`s / `ChainView`s instead of dropping or upgrading them) is
    /// reported instead of spinning silently forever. Pins held on other
    /// domains never trigger this.
    pub fn pin(&self) -> Guard<'_> {
        let n = self.slots.len();
        let mut idx = slot_hint() % n;
        let mut probes = 0usize;
        loop {
            let slot = &self.slots[idx].0;
            if slot.load(Ordering::Relaxed) == 0 {
                // Register the slot in the scan range *before* claiming
                // it: a scan whose watermark load misses this slot is
                // then ordered before the registration — and so before
                // the claim and its re-validation below — i.e. it behaves
                // exactly like a scan from before the pin existed.
                // (Publishing the watermark after the claim left a window
                // where a just-claimed slot was invisible to `try_advance`
                // for as long as the reader stayed preempted, letting the
                // epoch advance arbitrarily far past a live pin.) The
                // watermark never shrinks and steady-state pins re-use
                // their hinted slot, so the fetch_max runs once per slot
                // ever; a stale relaxed read just repeats it idempotently.
                if self.slots_high.load(Ordering::Relaxed) < idx + 1 {
                    self.slots_high.fetch_max(idx + 1, Ordering::SeqCst);
                }
                let mut e = self.global.load(Ordering::Relaxed) & EPOCH_MASK;
                if slot
                    .compare_exchange(0, (e << 1) | 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
                {
                    // The fence orders the slot publication before the
                    // re-validation below and before every protected load
                    // the caller performs under the guard.
                    fence(Ordering::SeqCst);
                    // Re-validate: the global epoch may have advanced
                    // between the load above and the claim becoming
                    // visible (this thread may have been preempted
                    // mid-pin). A stale slot value is itself *safe* — it
                    // blocks every advance outright — but republishing
                    // the current epoch restores the invariant the
                    // two-epoch grace period is sized for: once `pin`
                    // returns, at most one advance can miss this slot.
                    // The loop terminates because a visible stale slot
                    // stops the epoch from moving further.
                    loop {
                        let g = self.global.load(Ordering::SeqCst) & EPOCH_MASK;
                        if g == e {
                            break;
                        }
                        slot.store((g << 1) | 1, Ordering::SeqCst);
                        fence(Ordering::SeqCst);
                        e = g;
                    }
                    set_slot_hint(idx);
                    live_pins_inc(self as *const EpochDomain as usize);
                    return Guard {
                        domain: self,
                        idx,
                        _not_send: PhantomData,
                    };
                }
            }
            idx = (idx + 1) % n;
            probes += 1;
            if probes.is_multiple_of(n) {
                // Every slot held by a live guard. If this thread itself
                // holds a domain's worth of guards *on this domain*, no
                // slot can ever free while we wait here — fail loudly
                // rather than livelock.
                let own = live_pins_of(self as *const EpochDomain as usize);
                assert!(
                    own < n,
                    "epoch self-deadlock: this thread holds {own} live \
                     pins on a {n}-slot domain — drop or `to_owned()` \
                     views instead of accumulating them"
                );
                // Held by other threads (or our pins on other domains):
                // wait for one to free.
                std::thread::yield_now();
            }
        }
    }

    /// Retires `value`: it is dropped once every reader pinned at (or
    /// before) this call has unpinned. `bytes` is the caller's estimate of
    /// the heap the value keeps alive, tracked for the boundedness stats.
    pub fn retire<T: Send + 'static>(&self, bytes: usize, value: T) {
        self.defer(bytes, move || drop(value));
    }

    /// As [`retire`](Self::retire), for an arbitrary deferred action.
    pub fn defer(&self, bytes: usize, f: impl FnOnce() + Send + 'static) {
        // Read the epoch *after* the caller unlinked the object (program
        // order); tagging with this (or any earlier) epoch is safe — the
        // grace period is measured from unlink visibility.
        let e = self.global.load(Ordering::SeqCst);
        {
            let mut g = self.garbage.lock();
            match g.bags.back_mut() {
                Some(bag) if bag.epoch == e => {
                    bag.items.push(Box::new(f));
                    bag.bytes += bytes;
                }
                _ => g.bags.push_back(Bag {
                    epoch: e,
                    items: vec![Box::new(f)],
                    bytes,
                }),
            }
        }
        let now = self.retired_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.retired_bytes_peak.fetch_max(now, Ordering::Relaxed);
        self.pending_items.fetch_add(1, Ordering::Relaxed);
    }

    /// Tries to advance the global epoch (possible iff every pinned slot
    /// already carries it), then frees every bag at least [`GRACE_EPOCHS`]
    /// old. Returns the number of items freed. Never blocks on readers.
    pub fn try_reclaim(&self) -> usize {
        self.try_advance();
        let ripe: Vec<Bag> = {
            let mut garbage = self.garbage.lock();
            // Load the global epoch *after* acquiring the bag lock. A
            // concurrent `try_reclaim` may advance the epoch between a
            // pre-lock load and the scan, after which a racing `defer`
            // tags a fresh bag with the newer epoch — under a stale `g`
            // that bag's wrap-masked age reads as 2^63-1 and it would be
            // freed with zero grace period while a reader still holds its
            // contents. Loading under the lock restores the invariant the
            // age computation needs: every bag visible here was tagged
            // from an epoch load ordered before this one (the deferrer
            // held this mutex after its epoch load), so `age(g, epoch)`
            // is a true, small age.
            let g = self.global.load(Ordering::SeqCst);
            // Bags are pushed in near-epoch order; a racy retire may land
            // one slightly out of place, so scan rather than front-pop.
            let mut ripe = Vec::new();
            let mut i = 0;
            while i < garbage.bags.len() {
                let a = age(g, garbage.bags[i].epoch);
                // Belt and braces: an age in the upper half of the range
                // could only mean a bag tagged *ahead* of `g` — treat it
                // as brand new (not ripe), never as ancient.
                if (GRACE_EPOCHS..=EPOCH_MASK / 2).contains(&a) {
                    ripe.push(garbage.bags.remove(i).expect("index in range"));
                } else {
                    i += 1;
                }
            }
            ripe
        };
        // Run the deferred drops outside the bag lock.
        let mut freed = 0;
        for bag in ripe {
            self.retired_bytes.fetch_sub(bag.bytes, Ordering::Relaxed);
            freed += bag.items.len();
            for item in bag.items {
                item();
            }
        }
        if freed > 0 {
            self.pending_items.fetch_sub(freed, Ordering::Relaxed);
            self.reclaimed_items
                .fetch_add(freed as u64, Ordering::Relaxed);
        }
        freed
    }

    /// One epoch-advance attempt: `G → G + 1` iff every active slot is
    /// pinned at `G`.
    fn try_advance(&self) -> bool {
        fence(Ordering::SeqCst);
        let g = self.global.load(Ordering::SeqCst);
        // `slots_high` is a SeqCst watermark bumped *before* a slot's
        // first claim: a scan whose watermark load misses a slot is
        // ordered (in the SeqCst total order) before that slot's
        // registration, claim, and epoch re-validation — equivalent to a
        // scan from before the pin existed. The only advance that can
        // miss a registered, pinned slot is one racing the slot's final
        // epoch store, which is the single miss the two-epoch grace
        // period absorbs. Unclaimed tail slots are provably zero.
        let high = self.slots_high.load(Ordering::SeqCst);
        for slot in self.slots.iter().take(high) {
            let v = slot.0.load(Ordering::SeqCst);
            if v != 0 && (v >> 1) != g {
                return false;
            }
        }
        self.global
            .compare_exchange(
                g,
                g.wrapping_add(1) & EPOCH_MASK,
                Ordering::SeqCst,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// The current global epoch (63-bit, wrapping).
    pub fn global_epoch(&self) -> u64 {
        self.global.load(Ordering::SeqCst)
    }

    /// Number of slots currently pinned.
    pub fn pinned_readers(&self) -> usize {
        let high = self.slots_high.load(Ordering::Acquire);
        self.slots
            .iter()
            .take(high)
            .filter(|s| s.0.load(Ordering::SeqCst) != 0)
            .count()
    }

    /// Items currently awaiting reclamation.
    pub fn pending_items(&self) -> usize {
        self.pending_items.load(Ordering::Relaxed)
    }

    /// Bytes currently awaiting reclamation (as reported by retirers).
    pub fn retired_bytes(&self) -> usize {
        self.retired_bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of [`retired_bytes`](Self::retired_bytes).
    pub fn retired_bytes_peak(&self) -> usize {
        self.retired_bytes_peak.load(Ordering::Relaxed)
    }

    /// Items freed over the domain's lifetime.
    pub fn reclaimed_items(&self) -> u64 {
        self.reclaimed_items.load(Ordering::Relaxed)
    }
}

impl Default for EpochDomain {
    fn default() -> Self {
        EpochDomain::new()
    }
}

impl Drop for EpochDomain {
    fn drop(&mut self) {
        // `&mut self`: no guard can be alive (guards borrow the domain),
        // so everything parked is free to go.
        let garbage = std::mem::take(&mut *self.garbage.lock());
        for bag in garbage.bags {
            for item in bag.items {
                item();
            }
        }
    }
}

impl std::fmt::Debug for EpochDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochDomain")
            .field("global_epoch", &self.global_epoch())
            .field("pinned_readers", &self.pinned_readers())
            .field("pending_items", &self.pending_items())
            .field("retired_bytes", &self.retired_bytes())
            .finish()
    }
}

/// An active pin: while it lives, nothing retired at or after the pin is
/// freed. Dropping it releases the slot (readers must not hold guards
/// longer than they need the borrowed data — a parked guard only delays
/// reclamation, never correctness).
pub struct Guard<'d> {
    domain: &'d EpochDomain,
    idx: usize,
    /// Guards are deliberately `!Send`: the slot-hint cache is per
    /// thread, and keeping pins thread-local keeps the reasoning simple.
    _not_send: PhantomData<*mut ()>,
}

impl Guard<'_> {
    /// The epoch this guard pinned.
    pub fn epoch(&self) -> u64 {
        self.domain.slots[self.idx].0.load(Ordering::Relaxed) >> 1
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        self.domain.slots[self.idx].0.store(0, Ordering::Release);
        live_pins_dec(self.domain as *const EpochDomain as usize);
    }
}

impl std::fmt::Debug for Guard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Guard")
            .field("slot", &self.idx)
            .field("epoch", &self.epoch())
            .finish()
    }
}

thread_local! {
    /// Per-thread starting slot, so repeated pins land on the same
    /// (cached, uncontended) slot. Shared across domains — it is only a
    /// probe hint.
    static SLOT_HINT: Cell<usize> = const { Cell::new(usize::MAX) };

    /// Live guards held by this thread, per domain (keyed by domain
    /// address) — the self-deadlock detector in [`EpochDomain::pin`].
    /// Almost always zero or one entry; entries are removed when their
    /// count returns to zero, so a long-lived thread touching many
    /// short-lived domains does not accumulate stale keys.
    static LIVE_PINS: std::cell::RefCell<Vec<(usize, usize)>> = const { std::cell::RefCell::new(Vec::new()) };
}

fn live_pins_inc(domain: usize) {
    LIVE_PINS.with(|pins| {
        let mut pins = pins.borrow_mut();
        if let Some(entry) = pins.iter_mut().find(|(d, _)| *d == domain) {
            entry.1 += 1;
        } else {
            pins.push((domain, 1));
        }
    });
}

fn live_pins_dec(domain: usize) {
    LIVE_PINS.with(|pins| {
        let mut pins = pins.borrow_mut();
        let i = pins
            .iter()
            .position(|(d, _)| *d == domain)
            .expect("a live guard was counted at pin time");
        pins[i].1 -= 1;
        if pins[i].1 == 0 {
            pins.swap_remove(i);
        }
    });
}

fn live_pins_of(domain: usize) -> usize {
    LIVE_PINS.with(|pins| {
        pins.borrow()
            .iter()
            .find(|(d, _)| *d == domain)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    })
}

/// Seeds distinct threads at distinct slots.
static HINT_SEED: AtomicUsize = AtomicUsize::new(0);

fn slot_hint() -> usize {
    SLOT_HINT.with(|h| {
        let v = h.get();
        if v == usize::MAX {
            let v = HINT_SEED.fetch_add(1, Ordering::Relaxed);
            h.set(v);
            v
        } else {
            v
        }
    })
}

fn set_slot_hint(idx: usize) {
    SLOT_HINT.with(|h| h.set(idx));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    fn count_retire(domain: &EpochDomain, counter: &Arc<AtomicU32>) {
        let c = Arc::clone(counter);
        domain.defer(8, move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
    }

    #[test]
    fn quiescent_reclaim_after_grace_period() {
        let d = EpochDomain::new();
        let freed = Arc::new(AtomicU32::new(0));
        count_retire(&d, &freed);
        // Age 0: nothing freed yet.
        assert_eq!(d.try_reclaim(), 0);
        assert_eq!(freed.load(Ordering::SeqCst), 0);
        // Two more advances push the bag past the grace period.
        assert!(d.try_reclaim() + d.try_reclaim() >= 1);
        assert_eq!(freed.load(Ordering::SeqCst), 1);
        assert_eq!(d.pending_items(), 0);
        assert_eq!(d.reclaimed_items(), 1);
    }

    #[test]
    fn pinned_reader_blocks_reclamation_until_unpin() {
        let d = EpochDomain::new();
        let freed = Arc::new(AtomicU32::new(0));
        let guard = d.pin();
        count_retire(&d, &freed);
        for _ in 0..10 {
            assert_eq!(d.try_reclaim(), 0, "a live pin blocks the grace period");
        }
        assert_eq!(freed.load(Ordering::SeqCst), 0);
        assert_eq!(d.pending_items(), 1);
        drop(guard);
        while d.try_reclaim() == 0 {}
        assert_eq!(freed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_pins_block_independently() {
        let d = EpochDomain::new();
        let freed = Arc::new(AtomicU32::new(0));
        let outer = d.pin();
        let inner = d.pin();
        assert_ne!(outer.idx, inner.idx, "nested pins claim distinct slots");
        assert_eq!(d.pinned_readers(), 2);
        count_retire(&d, &freed);
        // Dropping the inner pin alone must not open the grace period.
        drop(inner);
        for _ in 0..6 {
            assert_eq!(d.try_reclaim(), 0);
        }
        assert_eq!(freed.load(Ordering::SeqCst), 0);
        drop(outer);
        while d.try_reclaim() == 0 {}
        assert_eq!(freed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn epoch_wraps_through_the_63_bit_boundary() {
        // Start just below the wrap point and drive the whole protocol
        // across it: pins, retires, and the grace period all keep working.
        let d = EpochDomain::with_config(8, EPOCH_MASK - 1);
        let freed = Arc::new(AtomicU32::new(0));
        for step in 0..6u64 {
            let g = d.pin();
            count_retire(&d, &freed);
            drop(g);
            d.try_reclaim();
            let _ = step;
        }
        // Everything retired at least two epochs ago must be gone.
        while d.try_reclaim() > 0 {}
        d.try_reclaim();
        assert!(d.global_epoch() < 8, "epoch wrapped to a small value");
        assert!(
            freed.load(Ordering::SeqCst) >= 4,
            "reclamation kept pace across the wrap: {} freed",
            freed.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn reader_pinned_across_many_advances_only_delays() {
        let d = EpochDomain::new();
        let freed = Arc::new(AtomicU32::new(0));
        let guard = d.pin();
        // Other readers come and go; the parked guard pins its own epoch.
        for _ in 0..20 {
            let g2 = d.pin();
            count_retire(&d, &freed);
            drop(g2);
            d.try_reclaim();
        }
        assert_eq!(freed.load(Ordering::SeqCst), 0, "parked pin held the line");
        assert_eq!(d.pending_items(), 20);
        drop(guard);
        while d.pending_items() > 0 {
            d.try_reclaim();
        }
        assert_eq!(freed.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn bytes_accounting_tracks_peak() {
        let d = EpochDomain::new();
        d.retire(100, vec![0u8; 100]);
        d.retire(50, vec![0u8; 50]);
        assert_eq!(d.retired_bytes(), 150);
        assert_eq!(d.retired_bytes_peak(), 150);
        while d.retired_bytes() > 0 {
            d.try_reclaim();
        }
        assert_eq!(d.retired_bytes_peak(), 150, "peak is sticky");
    }

    #[test]
    fn concurrent_pin_unpin_is_exclusive_per_slot() {
        let d = EpochDomain::with_config(4, 0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..2_000 {
                        let g = d.pin();
                        assert!(d.pinned_readers() >= 1);
                        drop(g);
                    }
                });
            }
        });
        assert_eq!(d.pinned_readers(), 0);
    }

    #[test]
    #[should_panic(expected = "epoch self-deadlock")]
    fn accumulating_more_pins_than_slots_panics() {
        let d = EpochDomain::with_config(4, 0);
        let _held: Vec<Guard<'_>> = (0..4).map(|_| d.pin()).collect();
        // All four slots belong to this thread: waiting can never
        // succeed, so the fifth pin must fail loudly.
        let _fifth = d.pin();
    }

    #[test]
    fn pins_on_other_domains_do_not_trip_the_self_deadlock_check() {
        let a = EpochDomain::with_config(8, 0);
        let b = EpochDomain::with_config(2, 0);
        // Hold more pins on `a` than `b` has slots.
        let held: Vec<Guard<'_>> = (0..4).map(|_| a.pin()).collect();
        std::thread::scope(|s| {
            let (tx, rx) = std::sync::mpsc::channel();
            let b = &b;
            s.spawn(move || {
                let g1 = b.pin();
                let g2 = b.pin();
                tx.send(()).unwrap();
                std::thread::sleep(std::time::Duration::from_millis(20));
                drop((g1, g2));
            });
            rx.recv().unwrap();
            // `b` is full and we hold ≥ |b| guards — but on `a`: this
            // must wait for the other thread, not report a self-deadlock.
            let g = b.pin();
            drop(g);
        });
        drop(held);
        assert_eq!(a.pinned_readers(), 0);
        assert_eq!(b.pinned_readers(), 0);
    }

    /// Regression: `try_reclaim` once loaded the global epoch *before*
    /// taking the bag lock. A concurrent reclaimer could advance the
    /// epoch in that window, a racing `defer` would tag a fresh bag with
    /// the newer epoch, and the stale-`g` scan read the bag's wrap-masked
    /// age as 2^63-1 — freeing it with zero grace period under a live
    /// pin. This test races reclaimers against deferrers and pinned
    /// readers over a shared pointer; the deferred drop poisons the value
    /// first, so a violated grace period fails the reader's assert
    /// instead of passing silently.
    #[test]
    fn racing_reclaimers_never_free_inside_the_grace_period() {
        const MAGIC: u64 = 0xA11C_E0FF_C0FF_EE00;
        const POISON: u64 = 0xDEAD_DEAD_DEAD_DEAD;
        let d = EpochDomain::new();
        let ptr = AtomicUsize::new(Box::into_raw(Box::new(MAGIC)) as usize);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let (d, ptr) = (&d, &ptr);
                s.spawn(move || {
                    for _ in 0..3_000 {
                        let fresh = Box::into_raw(Box::new(MAGIC)) as usize;
                        let old = ptr.swap(fresh, Ordering::AcqRel);
                        d.defer(8, move || unsafe {
                            let p = old as *mut u64;
                            p.write_volatile(POISON);
                            drop(Box::from_raw(p));
                        });
                        // Reclaim on every retire: concurrent reclaimers
                        // are exactly the interleaving that once freed
                        // bags off a stale epoch load.
                        d.try_reclaim();
                    }
                });
            }
            for _ in 0..2 {
                let (d, ptr) = (&d, &ptr);
                s.spawn(move || {
                    for _ in 0..6_000 {
                        let g = d.pin();
                        let p = ptr.load(Ordering::Acquire) as *const u64;
                        let v = unsafe { p.read_volatile() };
                        assert_eq!(v, MAGIC, "grace period violated under a live pin");
                        drop(g);
                    }
                });
            }
        });
        while d.pending_items() > 0 {
            d.try_reclaim();
        }
        drop(unsafe { Box::from_raw(ptr.load(Ordering::Acquire) as *mut u64) });
    }

    #[test]
    fn domain_drop_runs_all_deferred_items() {
        let freed = Arc::new(AtomicU32::new(0));
        {
            let d = EpochDomain::new();
            for _ in 0..5 {
                count_retire(&d, &freed);
            }
        }
        assert_eq!(freed.load(Ordering::SeqCst), 5);
    }
}
