//! Epoch-based reclamation: grace periods for lock-free readers.
//!
//! The concurrent BT-ADT publishes its selected chain through an atomic
//! pointer (`crate::concurrent`). Readers dereference that pointer without
//! any lock, so the writer may never free a swapped-out snapshot while a
//! reader might still be looking at it. PR 2 solved this by *never*
//! freeing (retire-until-drop) — correct, but one leaked box per commit.
//! This module supplies the missing piece: a small quiescent-state /
//! epoch-reclamation domain, vendored in-tree like the other shims (no
//! external crates).
//!
//! # Protocol
//!
//! * The domain keeps a **global epoch** `G` (63-bit, wrapping) and a
//!   fixed array of cache-line-padded **reader slots**.
//! * A reader calls [`EpochDomain::pin`] before touching any protected
//!   pointer: the returned [`Guard`] claims a free slot and publishes the
//!   current epoch in it (a `SeqCst` RMW, re-validated with `SeqCst`
//!   loads), and clears the slot on drop. Pins are cheap — one CAS on a slot that is
//!   effectively thread-private (per-thread start hint, 128-byte padding),
//!   so concurrent readers do **not** bounce a shared cache line the way a
//!   shared `Arc` refcount does.
//! * A writer that unlinks an object calls [`EpochDomain::retire`] (or
//!   [`EpochDomain::defer`]): the object joins a garbage bag tagged with
//!   the epoch read *after* the unlink. Bags live in [`LOCAL_BAG_SLOTS`]
//!   thread-hinted slots, so a retirer locks a mutex that is effectively
//!   its own — retiring never contends with other retirers or with a
//!   concurrent sweep (the commit pipeline retires on every publication;
//!   a global garbage mutex was measurable on that path).
//! * [`EpochDomain::try_reclaim`] advances `G` by one when every pinned
//!   slot already carries `G`, and frees every bag at least
//!   [`GRACE_EPOCHS`] (= 2) epochs old. The two-epoch grace period is the
//!   standard safety margin: a reader pinned in epoch `e` can only hold
//!   pointers unlinked in `e - 1` or later, and `G` cannot advance twice
//!   past a live pin — so by the time a bag's age reaches 2, every reader
//!   that could have seen its contents has unpinned at least once. (Every
//!   racy access on the pin and advance paths is `SeqCst`, so the model's
//!   single total order closes the one-advance race where a just-published
//!   pin is missed by a concurrent scan.)
//!
//! A pinned reader never blocks writers or other readers — it only delays
//! *reclamation*. Conversely `pin` never waits on writers: the slot claim
//! spins only when more threads hold guards simultaneously than there are
//! slots (256 by default).
//!
//! Epochs wrap at 2^63. All comparisons are age-based
//! (`wrapping_sub` masked to 63 bits), so the protocol survives a full
//! wrap — exercised by the unit tests via [`EpochDomain::with_config`].

use crate::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use crate::sync::Mutex;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;

/// Reader slots per domain. More slots than the workload has
/// simultaneously pinned readers costs only idle memory; fewer makes
/// `pin` spin until a slot frees.
pub const DEFAULT_READER_SLOTS: usize = 256;

/// Retire-bag slots per domain. Retirers hash to a slot by the same
/// per-thread hint the reader slots use, so in steady state each retiring
/// thread owns "its" bag mutex outright — [`EpochDomain::retire`] never
/// touches a lock another thread is holding, which is what keeps
/// reclamation bookkeeping off the commit pipeline's drain path (two
/// appenders finishing simultaneously used to collide on one global
/// garbage mutex: one retiring, one sweeping).
/// Model builds shrink the slot count: every bag mutex a sweep visits is
/// a schedule point, and 16 slots would multiply the explored state
/// space without adding any interleaving the 2-slot version misses.
pub const LOCAL_BAG_SLOTS: usize = if cfg!(btadt_model) { 2 } else { 16 };

/// Bags this many epochs old are safe to free (see the module docs).
pub const GRACE_EPOCHS: u64 = 2;

/// Epochs live in 63 bits: slot values encode `(epoch << 1) | 1` so the
/// zero word can mean "unpinned" even across an epoch wrap.
const EPOCH_MASK: u64 = (1 << 63) - 1;

/// Age of `epoch` relative to `global`, wrap-safe (bags are always
/// retired at or before the current global epoch, so the modular
/// distance is the true age).
#[inline]
fn age(global: u64, epoch: u64) -> u64 {
    global.wrapping_sub(epoch) & EPOCH_MASK
}

/// One reader slot, padded to its own cache line pair so pins by
/// different threads never share a line.
#[repr(align(128))]
struct Slot(AtomicU64);

/// A deferred drop. The common case — retiring a boxed value — is stored
/// as a raw pointer plus a monomorphized drop shim, so the *retire path
/// allocates nothing*; arbitrary closures (rare) still box.
enum Deferred {
    /// `Box<T>` turned raw; dropped by the paired shim. The pointer came
    /// from `Box::into_raw` in [`EpochDomain::retire`], which also makes
    /// it safe to send across threads (the boxed `T: Send`).
    // SAFETY: the unsafe shim is only ever the monomorphized drop for the
    // exact `T` the pointer was constructed with.
    Ptr(*mut (), unsafe fn(*mut ())),
    /// As `Ptr`, but the shim hands the box to a [`RecycleBin`] (the
    /// third word) instead of the allocator — see
    /// [`EpochDomain::retire_box_recycling`].
    // SAFETY: as `Ptr`; the third word is the bin the shim was paired with.
    Recycle(*mut (), unsafe fn(*mut (), *const ()), *const ()),
    Closure(Box<dyn FnOnce() + Send>),
}

// SAFETY: `Ptr` is only ever constructed from `Box<T: Send>` (see
// `retire`), and the pointer is owned uniquely by the bag until dropped.
unsafe impl Send for Deferred {}

impl Deferred {
    fn run(self) {
        match self {
            // SAFETY: constructed from `Box::into_raw` with the matching
            // concrete type's drop shim; run exactly once.
            Deferred::Ptr(p, drop_fn) => unsafe { drop_fn(p) },
            // SAFETY: per `retire_box_recycling`'s contract the bin
            // behind `ctx` outlives the domain, hence this call.
            Deferred::Recycle(p, shim, ctx) => unsafe { shim(p, ctx) },
            Deferred::Closure(f) => f(),
        }
    }
}

/// A bounded stash of spare boxes, fed by
/// [`EpochDomain::retire_box_recycling`] once each box's grace period has
/// passed and drained by whoever publishes next — on the commit hot path
/// this turns the per-publication `malloc`/`free` round trip (one boxed
/// snapshot per append, uncontended) into a mutex-guarded `Vec` pop/push.
pub struct RecycleBin<T> {
    spares: Mutex<Vec<Box<T>>>,
    cap: usize,
}

impl<T> RecycleBin<T> {
    /// A bin that keeps at most `cap` spares (beyond that, boxes fall
    /// back to the allocator).
    pub fn new(cap: usize) -> Self {
        RecycleBin {
            spares: Mutex::new(Vec::new()),
            cap,
        }
    }

    /// Pops a spare, if any. The box still holds its old value — callers
    /// overwrite it (`*b = new_value`).
    pub fn take(&self) -> Option<Box<T>> {
        self.spares.lock().pop()
    }

    fn put(&self, value: Box<T>) {
        let mut spares = self.spares.lock();
        if spares.len() < self.cap {
            spares.push(value);
        }
    }
}

/// # Safety
///
/// `p` must come from `Box::<T>::into_raw` and `ctx` from a
/// `&RecycleBin<T>` that outlives the call (the
/// `retire_box_recycling` contract). Called at most once per pointer.
unsafe fn recycle_shim<T>(p: *mut (), ctx: *const ()) {
    // SAFETY: the function's contract — `p` is an unaliased box of `T`.
    let value = unsafe { Box::from_raw(p as *mut T) };
    // SAFETY: the function's contract — the bin behind `ctx` is alive.
    let bin = unsafe { &*(ctx as *const RecycleBin<T>) };
    bin.put(value);
}

/// # Safety
///
/// `p` must come from `Box::<T>::into_raw` (see `retire`); called at
/// most once per pointer.
unsafe fn drop_box_shim<T>(p: *mut ()) {
    // SAFETY: the function's contract — `p` is an unaliased box of `T`.
    drop(unsafe { Box::from_raw(p as *mut T) });
}

/// Garbage retired during one epoch.
struct Bag {
    epoch: u64,
    items: Vec<Deferred>,
    bytes: usize,
}

#[derive(Default)]
struct Garbage {
    bags: VecDeque<Bag>,
}

/// One retire-bag slot, padded so two threads retiring into neighbouring
/// slots never share a cache line.
#[repr(align(128))]
#[derive(Default)]
struct LocalBags(Mutex<Garbage>);

/// An epoch-reclamation domain: one global epoch, a slot array for
/// readers, and per-thread deferred-drop bag slots for writers.
///
/// The domain does not spawn threads and holds no locks while readers
/// pin; garbage lives in [`LOCAL_BAG_SLOTS`] thread-hinted bag slots, so
/// a retiring writer takes only a mutex no other thread is using —
/// concurrent retirers, and retirers racing a sweep, no longer serialize
/// on one global garbage lock.
pub struct EpochDomain {
    global: AtomicU64,
    slots: Box<[Slot]>,
    /// One past the highest slot index ever claimed: advance scans stop
    /// here, so the cost of `try_advance` tracks the number of reader
    /// threads the domain has actually seen, not the slot capacity.
    slots_high: AtomicUsize,
    locals: Box<[LocalBags]>,
    /// Bytes currently parked in bags (as reported by retire callers).
    retired_bytes: AtomicUsize,
    /// High-water mark of `retired_bytes` — the boundedness witness the
    /// churn stress and `bench-concurrent` report.
    retired_bytes_peak: AtomicUsize,
    /// Items currently parked in bags.
    pending_items: AtomicUsize,
    /// Items freed over the domain's lifetime.
    reclaimed_items: AtomicU64,
}

impl EpochDomain {
    /// A domain with [`DEFAULT_READER_SLOTS`] slots starting at epoch 0.
    pub fn new() -> Self {
        EpochDomain::with_config(DEFAULT_READER_SLOTS, 0)
    }

    /// A domain with an explicit slot count and start epoch (the start
    /// epoch is how the tests drive the protocol across a 63-bit wrap).
    pub fn with_config(slots: usize, start_epoch: u64) -> Self {
        assert!(slots > 0, "need at least one reader slot");
        EpochDomain {
            global: AtomicU64::new(start_epoch & EPOCH_MASK),
            slots: (0..slots).map(|_| Slot(AtomicU64::new(0))).collect(),
            slots_high: AtomicUsize::new(0),
            locals: (0..LOCAL_BAG_SLOTS).map(|_| LocalBags::default()).collect(),
            retired_bytes: AtomicUsize::new(0),
            retired_bytes_peak: AtomicUsize::new(0),
            pending_items: AtomicUsize::new(0),
            reclaimed_items: AtomicU64::new(0),
        }
    }

    /// Pins the current epoch, claiming a reader slot. Protected pointers
    /// loaded while the guard lives stay allocated until after it drops.
    /// Nested pins from one thread claim independent slots and are safe
    /// in any drop order.
    ///
    /// # Panics
    ///
    /// When this thread already holds at least as many live guards *on
    /// this domain* as the domain has slots and no slot is free: waiting
    /// would deadlock on our own pins, so the bug (a loop accumulating
    /// `Guard`s / `ChainView`s instead of dropping or upgrading them) is
    /// reported instead of spinning silently forever. Pins held on other
    /// domains never trigger this.
    pub fn pin(&self) -> Guard<'_> {
        let n = self.slots.len();
        let mut idx = slot_hint() % n;
        let mut probes = 0usize;
        loop {
            let slot = &self.slots[idx].0;
            // relaxed: availability probe only — the SeqCst CAS below is
            // what actually claims the slot (and re-checks it is free).
            if slot.load(Ordering::Relaxed) == 0 {
                // Register the slot in the scan range *before* claiming
                // it: a scan whose watermark load misses this slot is
                // then ordered before the registration — and so before
                // the claim and its re-validation below — i.e. it behaves
                // exactly like a scan from before the pin existed.
                // (Publishing the watermark after the claim left a window
                // where a just-claimed slot was invisible to `try_advance`
                // for as long as the reader stayed preempted, letting the
                // epoch advance arbitrarily far past a live pin.) The
                // watermark never shrinks and steady-state pins re-use
                // their hinted slot, so the fetch_max runs once per slot
                // ever; relaxed: a stale read just repeats it idempotently.
                if self.slots_high.load(Ordering::Relaxed) < idx + 1 {
                    self.slots_high.fetch_max(idx + 1, Ordering::SeqCst);
                }
                // relaxed: an optimistic epoch guess — the re-validation
                // loop after the SeqCst claim repairs any staleness.
                let mut e = self.global.load(Ordering::Relaxed) & EPOCH_MASK;
                if slot
                    // relaxed: failure ordering — a lost claim publishes
                    // nothing and moves on to probe the next slot.
                    .compare_exchange(0, (e << 1) | 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
                {
                    // No separate fence: the claim is a *SeqCst RMW* and
                    // every racy access it must order against — the
                    // re-validation loads below, `try_advance`'s slot and
                    // epoch scans, the re-publication stores — is SeqCst
                    // too, and the C++20 model's single total order
                    // respects program order among them (an explicit
                    // fence between two SeqCst accesses adds nothing; on
                    // x86 it was a redundant `mfence` on every read).
                    // Protected loads under the guard cannot float above
                    // the claim either: an acquire RMW forbids it.
                    //
                    // Re-validate: the global epoch may have advanced
                    // between the load above and the claim becoming
                    // visible (this thread may have been preempted
                    // mid-pin). A stale slot value is itself *safe* — it
                    // blocks every advance outright — but republishing
                    // the current epoch restores the invariant the
                    // two-epoch grace period is sized for: once `pin`
                    // returns, at most one advance can miss this slot.
                    // The loop terminates because a visible stale slot
                    // stops the epoch from moving further.
                    loop {
                        let g = self.global.load(Ordering::SeqCst) & EPOCH_MASK;
                        if g == e {
                            break;
                        }
                        slot.store((g << 1) | 1, Ordering::SeqCst);
                        e = g;
                    }
                    set_slot_hint(idx);
                    live_pins_inc(self as *const EpochDomain as usize);
                    return Guard {
                        domain: self,
                        idx,
                        _not_send: PhantomData,
                    };
                }
            }
            idx = (idx + 1) % n;
            probes += 1;
            if probes.is_multiple_of(n) {
                // Every slot held by a live guard. If this thread itself
                // holds a domain's worth of guards *on this domain*, no
                // slot can ever free while we wait here — fail loudly
                // rather than livelock.
                let own = live_pins_of(self as *const EpochDomain as usize);
                assert!(
                    own < n,
                    "epoch self-deadlock: this thread holds {own} live \
                     pins on a {n}-slot domain — drop or `to_owned()` \
                     views instead of accumulating them"
                );
                // Held by other threads (or our pins on other domains):
                // wait for one to free.
                std::thread::yield_now();
            }
        }
    }

    /// Retires `value`: it is dropped once every reader pinned at (or
    /// before) this call has unpinned. `bytes` is the caller's estimate of
    /// the heap the value keeps alive, tracked for the boundedness stats.
    ///
    /// Allocation-free on the commit hot path when `value` is already a
    /// `Box` ([`retire_box`](Self::retire_box)); this generic form boxes
    /// once and then rides the same pointer representation.
    pub fn retire<T: Send + 'static>(&self, bytes: usize, value: T) {
        self.retire_box(bytes, Box::new(value));
    }

    /// [`retire`](Self::retire) for an already-boxed value — stores the
    /// raw pointer plus a drop shim, no closure allocation per retire
    /// (the commit pipeline retires one snapshot box per publication;
    /// boxing a closure around each was a second allocation on every
    /// uncontended append).
    pub fn retire_box<T: Send + 'static>(&self, bytes: usize, value: Box<T>) {
        self.push_deferred(
            bytes,
            Deferred::Ptr(Box::into_raw(value) as *mut (), drop_box_shim::<T>),
        );
    }

    /// As [`retire_box`](Self::retire_box), but after the grace period
    /// the box is offered to `bin` for reuse instead of freed — the
    /// allocation-free loop for a hot path that retires one box per
    /// publication and immediately needs a fresh one.
    ///
    /// # Safety
    ///
    /// `bin` must stay alive — **at its current address** — until this
    /// item is reclaimed; in the worst case, until this domain is dropped
    /// (the domain's `Drop` runs every pending item). The deferred item
    /// keeps the raw pointer, so a bin embedded by value in a movable
    /// struct is *not* enough: moving the struct between this call and
    /// reclamation leaves the pointer dangling into the old location.
    /// Satisfy both halves by heap-allocating the bin (e.g.
    /// `Box<RecycleBin<T>>`) in the same struct as the domain, declared
    /// *after* it (fields drop in declaration order, and the box's
    /// contents never move).
    pub unsafe fn retire_box_recycling<T: Send + 'static>(
        &self,
        bytes: usize,
        value: Box<T>,
        bin: &RecycleBin<T>,
    ) {
        self.push_deferred(
            bytes,
            Deferred::Recycle(
                Box::into_raw(value) as *mut (),
                recycle_shim::<T>,
                bin as *const RecycleBin<T> as *const (),
            ),
        );
    }

    /// As [`retire`](Self::retire), for an arbitrary deferred action.
    pub fn defer(&self, bytes: usize, f: impl FnOnce() + Send + 'static) {
        self.push_deferred(bytes, Deferred::Closure(Box::new(f)));
    }

    fn push_deferred(&self, bytes: usize, item: Deferred) {
        // Read the epoch *after* the caller unlinked the object (program
        // order); tagging with this (or any earlier) epoch is safe — the
        // grace period is measured from unlink visibility.
        let e = self.global.load(Ordering::SeqCst);
        {
            // Thread-hinted bag slot: in steady state this mutex is this
            // thread's alone — one uncontended CAS, no line shared with
            // concurrent retirers or sweepers.
            let mut g = self.locals[slot_hint() % self.locals.len()].0.lock();
            match g.bags.back_mut() {
                Some(bag) if bag.epoch == e => {
                    bag.items.push(item);
                    bag.bytes += bytes;
                }
                _ => g.bags.push_back(Bag {
                    epoch: e,
                    items: vec![item],
                    bytes,
                }),
            }
        }
        // relaxed: boundedness accounting only — the bag mutex orders the
        // garbage itself; these counters feed stats and the sweep trigger.
        let now = self.retired_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        // Load-then-max: the peak only moves on a new high, so the common
        // case is one load instead of a cmpxchg loop per retire.
        // relaxed: stats high-water mark, no ordering needed.
        if self.retired_bytes_peak.load(Ordering::Relaxed) < now {
            self.retired_bytes_peak.fetch_max(now, Ordering::Relaxed); // relaxed: stats peak
        }
        self.pending_items.fetch_add(1, Ordering::Relaxed); // relaxed: sweep-trigger counter
    }

    /// Tries to advance the global epoch (possible iff every pinned slot
    /// already carries it), then frees every bag at least [`GRACE_EPOCHS`]
    /// old. Returns the number of items freed. Never blocks on readers.
    pub fn try_reclaim(&self) -> usize {
        self.try_advance();
        let mut ripe: Vec<Bag> = Vec::new();
        for local in self.locals.iter() {
            let mut garbage = local.0.lock();
            // Load the global epoch *after* acquiring this slot's bag
            // lock. A concurrent `try_reclaim` may advance the epoch
            // between a pre-lock load and the scan, after which a racing
            // `defer` tags a fresh bag with the newer epoch — under a
            // stale `g` that bag's wrap-masked age reads as 2^63-1 and it
            // would be freed with zero grace period while a reader still
            // holds its contents. Loading under the same lock the
            // deferrer held restores the invariant the age computation
            // needs: every bag visible in this slot was tagged from an
            // epoch load ordered before this one, so `age(g, epoch)` is a
            // true, small age. (The load is per-slot for exactly that
            // reason — one pre-loop load would be stale for later slots.)
            let g = self.global.load(Ordering::SeqCst);
            // Bags are pushed in near-epoch order; a racy retire may land
            // one slightly out of place, so scan rather than front-pop.
            let mut i = 0;
            while i < garbage.bags.len() {
                let a = age(g, garbage.bags[i].epoch);
                // Belt and braces: an age in the upper half of the range
                // could only mean a bag tagged *ahead* of `g` — treat it
                // as brand new (not ripe), never as ancient.
                if (GRACE_EPOCHS..=EPOCH_MASK / 2).contains(&a) {
                    ripe.push(garbage.bags.remove(i).expect("index in range"));
                } else {
                    i += 1;
                }
            }
        }
        // Run the deferred drops outside the bag lock.
        let mut freed = 0;
        for bag in ripe {
            // relaxed: boundedness accounting, mirrors the defer-side add.
            self.retired_bytes.fetch_sub(bag.bytes, Ordering::Relaxed);
            freed += bag.items.len();
            for item in bag.items {
                item.run();
            }
        }
        if freed > 0 {
            // relaxed: sweep-trigger/stats counters, no ordering needed.
            self.pending_items.fetch_sub(freed, Ordering::Relaxed);
            self.reclaimed_items
                .fetch_add(freed as u64, Ordering::Relaxed); // relaxed: stats counter
        }
        freed
    }

    /// Drives the full grace period at a *quiescent point* (caller
    /// vouches no pin is live): [`try_reclaim`](Self::try_reclaim)
    /// advances the epoch at most once per call, so `GRACE_EPOCHS + 1`
    /// sweeps age every bag retired before this call past the grace
    /// window and free it. Returns the total items freed. With readers
    /// still pinned this is safe but may leave a residue, exactly like
    /// repeated `try_reclaim` calls.
    pub fn reclaim_quiescent(&self) -> usize {
        let mut freed = 0;
        for _ in 0..=GRACE_EPOCHS {
            freed += self.try_reclaim();
        }
        freed
    }

    /// One epoch-advance attempt: `G → G + 1` iff every active slot is
    /// pinned at `G`.
    fn try_advance(&self) -> bool {
        fence(Ordering::SeqCst);
        let g = self.global.load(Ordering::SeqCst);
        // `slots_high` is a SeqCst watermark bumped *before* a slot's
        // first claim: a scan whose watermark load misses a slot is
        // ordered (in the SeqCst total order) before that slot's
        // registration, claim, and epoch re-validation — equivalent to a
        // scan from before the pin existed. The only advance that can
        // miss a registered, pinned slot is one racing the slot's final
        // epoch store, which is the single miss the two-epoch grace
        // period absorbs. Unclaimed tail slots are provably zero.
        let high = self.slots_high.load(Ordering::SeqCst);
        for slot in self.slots.iter().take(high) {
            let v = slot.0.load(Ordering::SeqCst);
            if v != 0 && (v >> 1) != g {
                return false;
            }
        }
        self.global
            .compare_exchange(
                g,
                g.wrapping_add(1) & EPOCH_MASK,
                Ordering::SeqCst,
                // relaxed: failure ordering — a lost advance race changes
                // nothing; the next sweep simply retries.
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// The current global epoch (63-bit, wrapping).
    pub fn global_epoch(&self) -> u64 {
        self.global.load(Ordering::SeqCst)
    }

    /// Number of slots currently pinned.
    pub fn pinned_readers(&self) -> usize {
        let high = self.slots_high.load(Ordering::Acquire);
        self.slots
            .iter()
            .take(high)
            .filter(|s| s.0.load(Ordering::SeqCst) != 0)
            .count()
    }

    /// Items currently awaiting reclamation.
    pub fn pending_items(&self) -> usize {
        self.pending_items.load(Ordering::Relaxed) // relaxed: stats snapshot
    }

    /// Bytes currently awaiting reclamation (as reported by retirers).
    pub fn retired_bytes(&self) -> usize {
        self.retired_bytes.load(Ordering::Relaxed) // relaxed: stats snapshot
    }

    /// High-water mark of [`retired_bytes`](Self::retired_bytes).
    pub fn retired_bytes_peak(&self) -> usize {
        self.retired_bytes_peak.load(Ordering::Relaxed) // relaxed: stats snapshot
    }

    /// Items freed over the domain's lifetime.
    pub fn reclaimed_items(&self) -> u64 {
        self.reclaimed_items.load(Ordering::Relaxed) // relaxed: stats snapshot
    }
}

impl Default for EpochDomain {
    fn default() -> Self {
        EpochDomain::new()
    }
}

impl Drop for EpochDomain {
    fn drop(&mut self) {
        // `&mut self`: no guard can be alive (guards borrow the domain),
        // so everything parked — in every bag slot — is free to go.
        for local in self.locals.iter() {
            let garbage = std::mem::take(&mut *local.0.lock());
            for bag in garbage.bags {
                for item in bag.items {
                    item.run();
                }
            }
        }
    }
}

impl std::fmt::Debug for EpochDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochDomain")
            .field("global_epoch", &self.global_epoch())
            .field("pinned_readers", &self.pinned_readers())
            .field("pending_items", &self.pending_items())
            .field("retired_bytes", &self.retired_bytes())
            .finish()
    }
}

/// An active pin: while it lives, nothing retired at or after the pin is
/// freed. Dropping it releases the slot (readers must not hold guards
/// longer than they need the borrowed data — a parked guard only delays
/// reclamation, never correctness).
pub struct Guard<'d> {
    domain: &'d EpochDomain,
    idx: usize,
    /// Guards are deliberately `!Send`: the slot-hint cache is per
    /// thread, and keeping pins thread-local keeps the reasoning simple.
    _not_send: PhantomData<*mut ()>,
}

impl Guard<'_> {
    /// The epoch this guard pinned.
    pub fn epoch(&self) -> u64 {
        // relaxed: reading our own slot — the owning thread wrote it.
        self.domain.slots[self.idx].0.load(Ordering::Relaxed) >> 1
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        self.domain.slots[self.idx].0.store(0, Ordering::Release);
        live_pins_dec(self.domain as *const EpochDomain as usize);
    }
}

impl std::fmt::Debug for Guard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Guard")
            .field("slot", &self.idx)
            .field("epoch", &self.epoch())
            .finish()
    }
}

thread_local! {
    /// Per-thread starting slot, so repeated pins land on the same
    /// (cached, uncontended) slot. Shared across domains — it is only a
    /// probe hint.
    static SLOT_HINT: Cell<usize> = const { Cell::new(usize::MAX) };

    /// Fast one-entry cache of the live-guard ledger: `(domain, count)`
    /// for the single domain this thread is currently pinning. The first
    /// pin on a *second* domain while this entry is occupied falls back
    /// to `LIVE_PINS`.
    static PIN_FAST: Cell<(usize, usize)> = const { Cell::new((0, 0)) };

    /// Live guards held by this thread, per domain (keyed by domain
    /// address) — overflow of `PIN_FAST`, together they are the
    /// self-deadlock detector in [`EpochDomain::pin`]. Almost always
    /// empty; entries are removed when their count returns to zero, so a
    /// long-lived thread touching many short-lived domains does not
    /// accumulate stale keys.
    static LIVE_PINS: std::cell::RefCell<Vec<(usize, usize)>> = const { std::cell::RefCell::new(Vec::new()) };
}

fn live_pins_inc(domain: usize) {
    // One-entry fast cache: in the overwhelmingly common case a thread
    // pins exactly one domain at a time, and the whole ledger is two
    // `Cell` accesses — the `RefCell<Vec>` path below only runs when a
    // thread interleaves guards on multiple domains.
    let (d, c) = PIN_FAST.get();
    if d == domain {
        PIN_FAST.set((d, c + 1));
        return;
    }
    if c == 0 {
        PIN_FAST.set((domain, 1));
        return;
    }
    LIVE_PINS.with(|pins| {
        let mut pins = pins.borrow_mut();
        if let Some(entry) = pins.iter_mut().find(|(d, _)| *d == domain) {
            entry.1 += 1;
        } else {
            pins.push((domain, 1));
        }
    });
}

fn live_pins_dec(domain: usize) {
    let (d, c) = PIN_FAST.get();
    if d == domain && c > 0 {
        PIN_FAST.set((d, c - 1));
        return;
    }
    LIVE_PINS.with(|pins| {
        let mut pins = pins.borrow_mut();
        let i = pins
            .iter()
            .position(|(d, _)| *d == domain)
            .expect("a live guard was counted at pin time");
        pins[i].1 -= 1;
        if pins[i].1 == 0 {
            pins.swap_remove(i);
        }
    });
}

fn live_pins_of(domain: usize) -> usize {
    let (d, c) = PIN_FAST.get();
    let fast = if d == domain { c } else { 0 };
    fast + LIVE_PINS.with(|pins| {
        pins.borrow()
            .iter()
            .find(|(d, _)| *d == domain)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    })
}

/// Seeds distinct threads at distinct slots.
static HINT_SEED: AtomicUsize = AtomicUsize::new(0);

/// Model-checking hook: resets the process-global slot-hint seed.
///
/// The explorer runs each interleaving on fresh OS threads (so the
/// `SLOT_HINT` thread-locals start clean), but `HINT_SEED` is a global
/// that would otherwise keep growing across executions and hand later
/// executions different slots — breaking schedule replay. Suites call
/// this at the top of every explored body.
#[cfg(btadt_model)]
pub fn reset_slot_hint_seed() {
    // relaxed: test-only hook, called before any model thread spawns.
    HINT_SEED.store(0, Ordering::Relaxed);
}

fn slot_hint() -> usize {
    SLOT_HINT.with(|h| {
        let v = h.get();
        if v == usize::MAX {
            // relaxed: unique-id handout; no ordering with anything else.
            let v = HINT_SEED.fetch_add(1, Ordering::Relaxed);
            h.set(v);
            v
        } else {
            v
        }
    })
}

fn set_slot_hint(idx: usize) {
    SLOT_HINT.with(|h| h.set(idx));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    fn count_retire(domain: &EpochDomain, counter: &Arc<AtomicU32>) {
        let c = Arc::clone(counter);
        domain.defer(8, move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
    }

    #[test]
    fn quiescent_reclaim_after_grace_period() {
        let d = EpochDomain::new();
        let freed = Arc::new(AtomicU32::new(0));
        count_retire(&d, &freed);
        // Age 0: nothing freed yet.
        assert_eq!(d.try_reclaim(), 0);
        assert_eq!(freed.load(Ordering::SeqCst), 0);
        // Two more advances push the bag past the grace period.
        assert!(d.try_reclaim() + d.try_reclaim() >= 1);
        assert_eq!(freed.load(Ordering::SeqCst), 1);
        assert_eq!(d.pending_items(), 0);
        assert_eq!(d.reclaimed_items(), 1);
    }

    #[test]
    fn pinned_reader_blocks_reclamation_until_unpin() {
        let d = EpochDomain::new();
        let freed = Arc::new(AtomicU32::new(0));
        let guard = d.pin();
        count_retire(&d, &freed);
        for _ in 0..10 {
            assert_eq!(d.try_reclaim(), 0, "a live pin blocks the grace period");
        }
        assert_eq!(freed.load(Ordering::SeqCst), 0);
        assert_eq!(d.pending_items(), 1);
        drop(guard);
        while d.try_reclaim() == 0 {}
        assert_eq!(freed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_pins_block_independently() {
        let d = EpochDomain::new();
        let freed = Arc::new(AtomicU32::new(0));
        let outer = d.pin();
        let inner = d.pin();
        assert_ne!(outer.idx, inner.idx, "nested pins claim distinct slots");
        assert_eq!(d.pinned_readers(), 2);
        count_retire(&d, &freed);
        // Dropping the inner pin alone must not open the grace period.
        drop(inner);
        for _ in 0..6 {
            assert_eq!(d.try_reclaim(), 0);
        }
        assert_eq!(freed.load(Ordering::SeqCst), 0);
        drop(outer);
        while d.try_reclaim() == 0 {}
        assert_eq!(freed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn epoch_wraps_through_the_63_bit_boundary() {
        // Start just below the wrap point and drive the whole protocol
        // across it: pins, retires, and the grace period all keep working.
        let d = EpochDomain::with_config(8, EPOCH_MASK - 1);
        let freed = Arc::new(AtomicU32::new(0));
        for step in 0..6u64 {
            let g = d.pin();
            count_retire(&d, &freed);
            drop(g);
            d.try_reclaim();
            let _ = step;
        }
        // Everything retired at least two epochs ago must be gone.
        while d.try_reclaim() > 0 {}
        d.try_reclaim();
        assert!(d.global_epoch() < 8, "epoch wrapped to a small value");
        assert!(
            freed.load(Ordering::SeqCst) >= 4,
            "reclamation kept pace across the wrap: {} freed",
            freed.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn reader_pinned_across_many_advances_only_delays() {
        let d = EpochDomain::new();
        let freed = Arc::new(AtomicU32::new(0));
        let guard = d.pin();
        // Other readers come and go; the parked guard pins its own epoch.
        for _ in 0..20 {
            let g2 = d.pin();
            count_retire(&d, &freed);
            drop(g2);
            d.try_reclaim();
        }
        assert_eq!(freed.load(Ordering::SeqCst), 0, "parked pin held the line");
        assert_eq!(d.pending_items(), 20);
        drop(guard);
        while d.pending_items() > 0 {
            d.try_reclaim();
        }
        assert_eq!(freed.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn bytes_accounting_tracks_peak() {
        let d = EpochDomain::new();
        d.retire(100, vec![0u8; 100]);
        d.retire(50, vec![0u8; 50]);
        assert_eq!(d.retired_bytes(), 150);
        assert_eq!(d.retired_bytes_peak(), 150);
        while d.retired_bytes() > 0 {
            d.try_reclaim();
        }
        assert_eq!(d.retired_bytes_peak(), 150, "peak is sticky");
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "iteration-heavy stress; the modelcheck suite covers this interleaving space"
    )]
    fn concurrent_pin_unpin_is_exclusive_per_slot() {
        let d = EpochDomain::with_config(4, 0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..2_000 {
                        let g = d.pin();
                        assert!(d.pinned_readers() >= 1);
                        drop(g);
                    }
                });
            }
        });
        assert_eq!(d.pinned_readers(), 0);
    }

    #[test]
    #[should_panic(expected = "epoch self-deadlock")]
    fn accumulating_more_pins_than_slots_panics() {
        let d = EpochDomain::with_config(4, 0);
        let _held: Vec<Guard<'_>> = (0..4).map(|_| d.pin()).collect();
        // All four slots belong to this thread: waiting can never
        // succeed, so the fifth pin must fail loudly.
        let _fifth = d.pin();
    }

    #[test]
    fn pins_on_other_domains_do_not_trip_the_self_deadlock_check() {
        let a = EpochDomain::with_config(8, 0);
        let b = EpochDomain::with_config(2, 0);
        // Hold more pins on `a` than `b` has slots.
        let held: Vec<Guard<'_>> = (0..4).map(|_| a.pin()).collect();
        std::thread::scope(|s| {
            let (tx, rx) = std::sync::mpsc::channel();
            let b = &b;
            s.spawn(move || {
                let g1 = b.pin();
                let g2 = b.pin();
                tx.send(()).unwrap();
                std::thread::sleep(std::time::Duration::from_millis(20));
                drop((g1, g2));
            });
            rx.recv().unwrap();
            // `b` is full and we hold ≥ |b| guards — but on `a`: this
            // must wait for the other thread, not report a self-deadlock.
            let g = b.pin();
            drop(g);
        });
        drop(held);
        assert_eq!(a.pinned_readers(), 0);
        assert_eq!(b.pinned_readers(), 0);
    }

    /// Regression: `try_reclaim` once loaded the global epoch *before*
    /// taking the bag lock. A concurrent reclaimer could advance the
    /// epoch in that window, a racing `defer` would tag a fresh bag with
    /// the newer epoch, and the stale-`g` scan read the bag's wrap-masked
    /// age as 2^63-1 — freeing it with zero grace period under a live
    /// pin. This test races reclaimers against deferrers and pinned
    /// readers over a shared pointer; the deferred drop poisons the value
    /// first, so a violated grace period fails the reader's assert
    /// instead of passing silently.
    #[test]
    #[cfg_attr(
        miri,
        ignore = "iteration-heavy stress; the modelcheck suite covers this interleaving space"
    )]
    fn racing_reclaimers_never_free_inside_the_grace_period() {
        const MAGIC: u64 = 0xA11C_E0FF_C0FF_EE00;
        const POISON: u64 = 0xDEAD_DEAD_DEAD_DEAD;
        let d = EpochDomain::new();
        let ptr = AtomicUsize::new(Box::into_raw(Box::new(MAGIC)) as usize);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let (d, ptr) = (&d, &ptr);
                s.spawn(move || {
                    for _ in 0..3_000 {
                        let fresh = Box::into_raw(Box::new(MAGIC)) as usize;
                        let old = ptr.swap(fresh, Ordering::AcqRel);
                        // SAFETY: `old` was unlinked by the swap above, so
                        // this deferred drop owns it once the grace ends.
                        d.defer(8, move || unsafe {
                            let p = old as *mut u64;
                            p.write_volatile(POISON);
                            drop(Box::from_raw(p));
                        });
                        // Reclaim on every retire: concurrent reclaimers
                        // are exactly the interleaving that once freed
                        // bags off a stale epoch load.
                        d.try_reclaim();
                    }
                });
            }
            for _ in 0..2 {
                let (d, ptr) = (&d, &ptr);
                s.spawn(move || {
                    for _ in 0..6_000 {
                        let g = d.pin();
                        let p = ptr.load(Ordering::Acquire) as *const u64;
                        // SAFETY: read under a live pin; the writer defers
                        // the free past the grace period.
                        let v = unsafe { p.read_volatile() };
                        assert_eq!(v, MAGIC, "grace period violated under a live pin");
                        drop(g);
                    }
                });
            }
        });
        while d.pending_items() > 0 {
            d.try_reclaim();
        }
        // SAFETY: all threads joined; the final linked box is still owned.
        drop(unsafe { Box::from_raw(ptr.load(Ordering::Acquire) as *mut u64) });
    }

    /// Per-thread bag slots: retirers on many threads (more threads than
    /// slots, forcing some sharing) must lose nothing — every deferred
    /// item is freed exactly once, and quiescent reclamation drains every
    /// slot to zero.
    #[test]
    #[cfg_attr(
        miri,
        ignore = "iteration-heavy stress; the modelcheck suite covers this interleaving space"
    )]
    fn concurrent_retirers_across_bag_slots_drain_fully() {
        let d = EpochDomain::new();
        let freed = Arc::new(AtomicU32::new(0));
        let per_thread = 500u32;
        let threads = super::LOCAL_BAG_SLOTS + 3;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let (d, freed) = (&d, &freed);
                s.spawn(move || {
                    for i in 0..per_thread {
                        count_retire(d, freed);
                        if i % 64 == 0 {
                            d.try_reclaim();
                        }
                    }
                });
            }
        });
        while d.pending_items() > 0 {
            d.try_reclaim();
        }
        assert_eq!(freed.load(Ordering::SeqCst), threads as u32 * per_thread);
        assert_eq!(d.retired_bytes(), 0, "byte ledger balances across slots");
        assert_eq!(
            d.reclaimed_items(),
            (threads as u32 * per_thread) as u64,
            "each item freed exactly once"
        );
    }

    #[test]
    fn domain_drop_runs_all_deferred_items() {
        let freed = Arc::new(AtomicU32::new(0));
        {
            let d = EpochDomain::new();
            for _ in 0..5 {
                count_retire(&d, &freed);
            }
        }
        assert_eq!(freed.load(Ordering::SeqCst), 5);
    }
}
