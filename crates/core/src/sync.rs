//! Synchronization facade for the concurrency core.
//!
//! Every module that does real synchronization (`concurrent`, `epoch`,
//! `commit`, `chain`) imports its primitives through this module instead
//! of naming `parking_lot` or `std::sync::atomic` directly. Normal
//! builds re-export the usual primitives verbatim — zero cost, identical
//! types. Building with `RUSTFLAGS="--cfg btadt_model"` swaps in the
//! instrumented primitives from `btadt_modelcheck`, whose every
//! operation is a schedule point for the deterministic interleaving
//! explorer (see `crates/shims/modelcheck` and the
//! `modelcheck_suites` integration tests).
//!
//! The two arms are API-compatible by construction: the offline
//! `parking_lot` shim already uses the guard-through-`wait` condvar
//! shape and `try_lock() -> Option`, and the model primitives implement
//! exactly that same surface. Code written against this facade must not
//! assume poisoning (neither arm poisons) and must treat `Ordering` as
//! documentation plus hardware contract — the model arm explores under
//! sequential consistency, which is why every `Relaxed` in this crate
//! carries a `// relaxed:` justification enforced by `btadt-lint`.

#[cfg(not(btadt_model))]
pub use parking_lot::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Atomic integer/pointer types and fences, `std::sync::atomic` shape.
#[cfg(not(btadt_model))]
pub mod atomic {
    pub use std::sync::atomic::*;
}

/// Thread spawn/join/yield, `std::thread` shape. Model builds route
/// spawns through the explorer's scheduler; note the model
/// `JoinHandle::join` returns `T` directly (a panicking model thread
/// fails the whole execution instead).
#[cfg(not(btadt_model))]
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

#[cfg(btadt_model)]
pub use btadt_modelcheck::sync::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[cfg(btadt_model)]
pub use btadt_modelcheck::sync::atomic;

#[cfg(btadt_model)]
pub use btadt_modelcheck::thread;
