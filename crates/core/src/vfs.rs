//! The VFS seam: every byte the durability layer moves goes through
//! [`Vfs`], so storage faults become an *injectable input* instead of an
//! act of God.
//!
//! [`crate::wal`] performs no direct `std::fs` IO (the discipline lint
//! enforces this): it opens, writes, syncs, renames, and unlinks through
//! a `Vfs` carried by [`WalConfig`](crate::wal::WalConfig). Two
//! implementations exist:
//!
//! * [`StdVfs`] — a zero-cost passthrough to `std::fs`. Every method is a
//!   direct delegation with no state, no locks, no extra syscalls; the
//!   durable bench rows run through it unchanged.
//! * [`FaultVfs`] — a deterministic in-memory filesystem with a fault
//!   injector and a buffered power-loss model. It tracks, per file, both
//!   the *live* bytes (what reads and appends see — the page cache) and
//!   the *durable* bytes (what survives power loss — advanced only by
//!   `sync_data`/`sync_all`), and per directory both live and durable
//!   entry maps (advanced only by `sync_dir`). A simulated crash point
//!   drops or truncates every unsynced suffix, exactly the failure the
//!   WAL's torn-tail trimming and directory-fsync ordering exist to
//!   survive.
//!
//! # Fault schedules
//!
//! A [`FaultConfig`] is a list of [`FaultRule`]s — "the `nth` operation
//! of kind `op` fails with `kind`" — plus an optional global crash
//! point. To make, say, the third data fsync fail with `EIO` and assert
//! the tree degrades instead of panicking:
//!
//! ```
//! use btadt_core::vfs::{FaultConfig, FaultKind, FaultRule, FaultVfs, OpKind};
//! use btadt_core::wal::{Wal, WalConfig};
//!
//! let vfs = FaultVfs::new(
//!     FaultConfig::new().rule(FaultRule::new(OpKind::SyncData, 3, FaultKind::Eio)),
//! );
//! let cfg = WalConfig::new("/wal").vfs(vfs.as_dyn());
//! let (mut wal, _) = Wal::open(cfg).unwrap();
//! // First two group commits hit fsyncs 2 and 3 (open's directory sync
//! // is a SyncDir op, but the trim/creation path costs one SyncData on
//! // some layouts — count from the trace when precision matters).
//! # let _ = &mut wal;
//! ```
//!
//! Every operation is recorded in an order-stable trace
//! ([`FaultVfs::trace`]), which is how the crash-point matrix
//! (`crates/core/tests/wal_crashpoints.rs`) enumerates each IO site a
//! workload performs and re-runs it with a crash injected at every index.
//! All scheduling is deterministic: the same workload over the same
//! [`FaultConfig`] produces the same trace, the same failure, and the
//! same post-recovery state — a failing seed reproduces exactly.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Raw OS error codes used by the injector: preserved via
/// `io::Error::from_raw_os_error` so callers can classify with
/// `raw_os_error()` (stable across `io::ErrorKind` additions).
pub const EINTR: i32 = 4;
/// See [`EINTR`].
pub const EIO: i32 = 5;
/// See [`EINTR`].
pub const ENOSPC: i32 = 28;

/// An open file handle behind the seam. Mirrors the `std::fs::File`
/// surface the WAL actually uses — nothing more (hence no `is_empty`:
/// `len()` here is fallible IO, not a container query).
#[allow(clippy::len_without_is_empty)]
pub trait VfsFile: Send {
    /// Appends (files are opened in append mode) or writes at the
    /// current position.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// `fdatasync`: makes previously written data durable.
    fn sync_data(&mut self) -> io::Result<()>;
    /// `fsync`: data + metadata.
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncates (or zero-extends) to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Current file length in bytes.
    fn len(&self) -> io::Result<u64>;
}

/// The filesystem operations the durability layer needs. All WAL and
/// checkpoint IO flows through one of these; see the module docs.
pub trait Vfs: fmt::Debug + Send + Sync {
    /// `fs::create_dir_all`.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Reads a whole file (`fs::read`).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// File names (not paths) in `dir`, in unspecified order.
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Opens an existing file for appending.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Creates a fresh file for appending; fails if it exists
    /// (`create_new`).
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Creates (truncating any previous content) for writing
    /// (`File::create`).
    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Atomic rename within the same directory.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Unlinks a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsyncs a directory, making its entry list durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production seam: direct passthrough to `std::fs`. Stateless and
/// zero-cost — each method compiles to the same syscalls `wal.rs` issued
/// before the seam existed.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdVfs;

impl VfsFile for File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        Write::write_all(self, buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        File::sync_data(self)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        File::sync_all(self)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        File::set_len(self, len)
    }

    fn len(&self) -> io::Result<u64> {
        self.metadata().map(|m| m.len())
    }
}

impl Vfs for StdVfs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = OpenOptions::new().append(true).open(path)?;
        Ok(Box::new(f))
    }

    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(f))
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(File::create(path)?))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }
}

/// The kind of VFS operation, for fault rules, traces, and histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    CreateDirAll,
    Read,
    ReadDir,
    OpenAppend,
    CreateNew,
    CreateTruncate,
    Rename,
    RemoveFile,
    SyncDir,
    Write,
    SyncData,
    SyncAll,
    SetLen,
    Len,
}

/// What an injected fault does to its operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// `EIO` — the canonical unretryable data-path failure.
    Eio,
    /// `ENOSPC` — out of space; transient for segment rotation.
    Enospc,
    /// `EINTR` — interrupted; always retryable. Injected *before* any
    /// effect, matching `std`'s no-partial-progress EINTR surface.
    Eintr,
    /// A torn write: the first `written` bytes reach the (volatile) file
    /// before the op fails with `EIO`. Only meaningful on
    /// [`OpKind::Write`]; on other ops it degrades to plain `EIO`.
    ShortWrite {
        /// Bytes that land before the failure.
        written: usize,
    },
}

/// One scheduled fault: the `nth` (1-based, counted per kind) operation
/// of kind `op` fails with `kind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRule {
    pub op: OpKind,
    pub nth: u64,
    pub kind: FaultKind,
}

impl FaultRule {
    pub fn new(op: OpKind, nth: u64, kind: FaultKind) -> Self {
        FaultRule { op, nth, kind }
    }
}

/// A deterministic fault schedule for a [`FaultVfs`]. See the module
/// docs for a worked example.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultConfig {
    /// The seed this schedule was derived from (0 for hand-built
    /// schedules) — carried so failures report a replayable identity.
    pub seed: u64,
    /// Scheduled per-op faults.
    pub rules: Vec<FaultRule>,
    /// Simulated power loss: the operation at this global 0-based index
    /// (see [`FaultVfs::trace`]) fails with `EIO` *before* taking
    /// effect, and every operation after it fails too — the device is
    /// gone until [`FaultVfs::power_loss`] (which also decides the fate
    /// of unsynced bytes) or [`FaultVfs::arm`].
    pub crash_at_op: Option<u64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultConfig {
    /// An empty schedule: no faults, no crash.
    pub fn new() -> Self {
        FaultConfig::default()
    }

    /// Power loss at global op index `op` (see
    /// [`crash_at_op`](Self::crash_at_op)).
    pub fn crash_at(op: u64) -> Self {
        FaultConfig {
            crash_at_op: Some(op),
            ..FaultConfig::default()
        }
    }

    /// Single-rule schedule: the `nth` op of kind `op` fails with `kind`.
    pub fn fail_nth(op: OpKind, nth: u64, kind: FaultKind) -> Self {
        FaultConfig::new().rule(FaultRule::new(op, nth, kind))
    }

    /// A seed-derived schedule: one data-path fsync failure at a
    /// pseudorandom (but seed-determined) position with a seed-chosen
    /// error kind. The same seed always produces the same schedule, so a
    /// failure under `seeded(s)` replays from `s` alone.
    pub fn seeded(seed: u64) -> Self {
        let mut s = seed;
        let nth = 1 + splitmix64(&mut s) % 13;
        let kind = if splitmix64(&mut s).is_multiple_of(2) {
            FaultKind::Eio
        } else {
            FaultKind::Enospc
        };
        FaultConfig {
            seed,
            rules: vec![FaultRule::new(OpKind::SyncData, nth, kind)],
            crash_at_op: None,
        }
    }

    /// Appends one rule (builder style).
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }
}

/// One recorded VFS operation (see [`FaultVfs::trace`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpRecord {
    pub kind: OpKind,
    pub path: PathBuf,
}

/// What happens to each file's unsynced tail at a simulated power loss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TornTail {
    /// Every unsynced byte is lost (the whole page-cache tail dropped).
    DropAll,
    /// The first `n` unsynced bytes survive (a torn write: the device
    /// persisted part of the tail before dying).
    Keep(usize),
    /// Like `Keep(n)`, but the last surviving byte is bit-flipped — a
    /// torn *and* mangled sector, the worst case CRC framing must catch.
    KeepScrambled(usize),
}

#[derive(Clone, Debug, Default)]
struct MemFile {
    /// Live content — what reads and appends observe (the page cache).
    data: Vec<u8>,
    /// Content as of the last `sync_data`/`sync_all` — what survives
    /// power loss.
    durable: Vec<u8>,
}

#[derive(Clone, Debug, Default)]
struct MemDir {
    /// Live name → file index.
    live: BTreeMap<String, usize>,
    /// Entries as of the last `sync_dir`.
    durable: BTreeMap<String, usize>,
}

#[derive(Clone, Debug, Default)]
struct MemFs {
    dirs: BTreeMap<PathBuf, MemDir>,
    files: Vec<MemFile>,
}

fn split(path: &Path) -> io::Result<(PathBuf, String)> {
    let parent = path.parent().map(Path::to_path_buf).unwrap_or_default();
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    Ok((parent, name))
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("{}: no such file or directory", path.display()),
    )
}

impl MemFs {
    fn dir_mut(&mut self, dir: &Path) -> io::Result<&mut MemDir> {
        self.dirs.get_mut(dir).ok_or_else(|| not_found(dir))
    }

    fn resolve(&mut self, path: &Path) -> io::Result<usize> {
        let (parent, name) = split(path)?;
        let dir = self.dir_mut(&parent)?;
        dir.live.get(&name).copied().ok_or_else(|| not_found(path))
    }

    fn create(&mut self, path: &Path, exclusive: bool) -> io::Result<usize> {
        let (parent, name) = split(path)?;
        let id = self.files.len();
        let dir = self.dir_mut(&parent)?;
        if exclusive && dir.live.contains_key(&name) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{}: file exists", path.display()),
            ));
        }
        // `create_truncate` allocates a fresh inode even when the name
        // existed: the durable dirent (if any) keeps pointing at the old
        // content, which is exactly the conservative power-loss model —
        // an unsynced truncate must not destroy durable bytes.
        dir.live.insert(name, id);
        self.files.push(MemFile::default());
        Ok(id)
    }
}

#[derive(Debug, Default)]
struct FaultState {
    fs: MemFs,
    /// Global operation counter (0-based indices into `trace`).
    ops: u64,
    /// Per-kind 1-based occurrence counters, for rule matching.
    per_kind: BTreeMap<OpKind, u64>,
    trace: Vec<OpRecord>,
    config: FaultConfig,
    /// Set when `crash_at_op` fires: every later op fails until
    /// `power_loss` or `arm`.
    crashed: bool,
}

/// Outcome of the fault check for one operation.
enum Inject {
    /// No fault: the op proceeds normally.
    None,
    /// Torn write: apply this many bytes, then fail with `EIO`.
    Short(usize),
}

impl FaultState {
    /// Counts, traces, and adjudicates one operation. `Err` means the op
    /// fails *without* taking effect (except [`Inject::Short`], which the
    /// write path applies partially).
    fn check(&mut self, kind: OpKind, path: &Path) -> io::Result<Inject> {
        let index = self.ops;
        self.ops += 1;
        let nth = {
            let c = self.per_kind.entry(kind).or_insert(0);
            *c += 1;
            *c
        };
        self.trace.push(OpRecord {
            kind,
            path: path.to_path_buf(),
        });
        if self.crashed {
            return Err(io::Error::from_raw_os_error(EIO));
        }
        if self.config.crash_at_op == Some(index) {
            self.crashed = true;
            return Err(io::Error::from_raw_os_error(EIO));
        }
        for rule in &self.config.rules {
            if rule.op == kind && rule.nth == nth {
                return match rule.kind {
                    FaultKind::Eio => Err(io::Error::from_raw_os_error(EIO)),
                    FaultKind::Enospc => Err(io::Error::from_raw_os_error(ENOSPC)),
                    FaultKind::Eintr => Err(io::Error::from_raw_os_error(EINTR)),
                    FaultKind::ShortWrite { written } if kind == OpKind::Write => {
                        Ok(Inject::Short(written))
                    }
                    FaultKind::ShortWrite { .. } => Err(io::Error::from_raw_os_error(EIO)),
                };
            }
        }
        Ok(Inject::None)
    }
}

/// A deterministic in-memory VFS with fault injection and a buffered
/// power-loss model. Cheap to clone (shared state); convert to the trait
/// object the [`WalConfig`](crate::wal::WalConfig) wants with
/// [`as_dyn`](Self::as_dyn) while keeping a handle for control
/// (schedules, crashes, traces). See the module docs.
#[derive(Clone, Debug)]
pub struct FaultVfs {
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    pub fn new(config: FaultConfig) -> Self {
        FaultVfs {
            state: Arc::new(Mutex::new(FaultState {
                config,
                ..FaultState::default()
            })),
        }
    }

    /// This injector as the trait object `WalConfig::vfs` carries. The
    /// returned handle shares state with `self`.
    pub fn as_dyn(&self) -> Arc<dyn Vfs> {
        Arc::new(self.clone())
    }

    /// Operations performed so far (equals `trace().len()`).
    pub fn op_count(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    /// The full operation trace since construction (or the last
    /// [`arm`](Self::arm)/[`power_loss`](Self::power_loss)).
    pub fn trace(&self) -> Vec<OpRecord> {
        self.state.lock().unwrap().trace.clone()
    }

    /// Whether a `crash_at_op` point has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// Total unsynced tail bytes across all files whose live content
    /// extends their durable content — the byte positions a torn-tail
    /// [`TornTail::Keep`] sweep should cover.
    pub fn unsynced_tail_len(&self) -> usize {
        let st = self.state.lock().unwrap();
        st.fs
            .files
            .iter()
            .filter(|f| f.data.len() > f.durable.len() && f.data.starts_with(&f.durable))
            .map(|f| f.data.len() - f.durable.len())
            .sum()
    }

    /// Deep-copies the filesystem *and* injector state into an
    /// independent `FaultVfs` — so one crashed workload image can be
    /// power-lossed several ways (every torn-tail byte boundary).
    pub fn fork(&self) -> FaultVfs {
        let st = self.state.lock().unwrap();
        FaultVfs {
            state: Arc::new(Mutex::new(FaultState {
                fs: st.fs.clone(),
                ops: st.ops,
                per_kind: st.per_kind.clone(),
                trace: st.trace.clone(),
                config: st.config.clone(),
                crashed: st.crashed,
            })),
        }
    }

    /// Simulates the power actually going out: every file keeps its
    /// durable prefix plus whatever `torn` says of its unsynced tail;
    /// every directory reverts to its durable entry list. Fault rules and
    /// the crash point are cleared and the op counter/trace reset, so the
    /// recovery that follows runs on a clean device.
    pub fn power_loss(&self, torn: TornTail) {
        let mut st = self.state.lock().unwrap();
        for f in &mut st.fs.files {
            let tail_ok = f.data.len() > f.durable.len() && f.data.starts_with(&f.durable);
            if !tail_ok {
                // Live content that is not a durable extension (e.g. an
                // unsynced truncate) reverts wholesale.
                f.data = f.durable.clone();
                continue;
            }
            let keep = match torn {
                TornTail::DropAll => 0,
                TornTail::Keep(n) | TornTail::KeepScrambled(n) => {
                    n.min(f.data.len() - f.durable.len())
                }
            };
            f.data.truncate(f.durable.len() + keep);
            if let TornTail::KeepScrambled(_) = torn {
                if keep > 0 {
                    let last = f.data.len() - 1;
                    f.data[last] ^= 0x80;
                }
            }
        }
        for dir in st.fs.dirs.values_mut() {
            dir.live = dir.durable.clone();
        }
        st.config = FaultConfig::new();
        st.crashed = false;
        st.ops = 0;
        st.trace.clear();
        st.per_kind.clear();
    }

    /// Replaces the fault schedule and resets the op counter, trace, and
    /// crashed flag — for injecting a *second* fault into recovery
    /// (double-crash coverage) with indices counted from the re-arm.
    pub fn arm(&self, config: FaultConfig) {
        let mut st = self.state.lock().unwrap();
        st.config = config;
        st.crashed = false;
        st.ops = 0;
        st.trace.clear();
        st.per_kind.clear();
    }

    /// Live content of `path`, bypassing fault injection (test oracle).
    pub fn peek(&self, path: &Path) -> Option<Vec<u8>> {
        let mut st = self.state.lock().unwrap();
        let id = st.fs.resolve(path).ok()?;
        Some(st.fs.files[id].data.clone())
    }

    fn with<R>(
        &self,
        kind: OpKind,
        path: &Path,
        f: impl FnOnce(&mut MemFs, Inject) -> io::Result<R>,
    ) -> io::Result<R> {
        let mut st = self.state.lock().unwrap();
        let inject = st.check(kind, path)?;
        f(&mut st.fs, inject)
    }
}

impl Vfs for FaultVfs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.with(OpKind::CreateDirAll, dir, |fs, _| {
            // Directory creation is modeled as immediately durable (the
            // WAL recreates its directory on open anyway, so an undurable
            // mkdir is indistinguishable from a fresh start).
            let mut cur = PathBuf::new();
            for comp in dir.components() {
                cur.push(comp);
                fs.dirs.entry(cur.clone()).or_default();
            }
            fs.dirs.entry(dir.to_path_buf()).or_default();
            Ok(())
        })
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.with(OpKind::Read, path, |fs, _| {
            let id = fs.resolve(path)?;
            Ok(fs.files[id].data.clone())
        })
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.with(OpKind::ReadDir, dir, |fs, _| {
            Ok(fs.dir_mut(dir)?.live.keys().cloned().collect())
        })
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let id = self.with(OpKind::OpenAppend, path, |fs, _| fs.resolve(path))?;
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            id,
            path: path.to_path_buf(),
        }))
    }

    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let id = self.with(OpKind::CreateNew, path, |fs, _| fs.create(path, true))?;
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            id,
            path: path.to_path_buf(),
        }))
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let id = self.with(OpKind::CreateTruncate, path, |fs, _| fs.create(path, false))?;
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            id,
            path: path.to_path_buf(),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.with(OpKind::Rename, from, |fs, _| {
            let id = fs.resolve(from)?;
            let (fparent, fname) = split(from)?;
            let (tparent, tname) = split(to)?;
            fs.dir_mut(&fparent)?.live.remove(&fname);
            fs.dir_mut(&tparent)?.live.insert(tname, id);
            Ok(())
        })
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.with(OpKind::RemoveFile, path, |fs, _| {
            let (parent, name) = split(path)?;
            let dir = fs.dir_mut(&parent)?;
            // Unlink touches the live entry list only; durability of the
            // removal (like any dirent change) waits for sync_dir. A
            // power loss can resurrect a removed-but-unsynced segment —
            // which the WAL's replay skips by start index.
            dir.live
                .remove(&name)
                .map(|_| ())
                .ok_or_else(|| not_found(path))
        })
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.with(OpKind::SyncDir, dir, |fs, _| {
            let d = fs.dir_mut(dir)?;
            d.durable = d.live.clone();
            Ok(())
        })
    }
}

/// An open handle into a [`FaultVfs`] file. The inode index stays valid
/// across renames (content follows the file, not the name), matching
/// POSIX fd semantics.
#[derive(Debug)]
struct FaultFile {
    state: Arc<Mutex<FaultState>>,
    id: usize,
    path: PathBuf,
}

impl FaultFile {
    fn with<R>(
        &self,
        kind: OpKind,
        f: impl FnOnce(&mut MemFile, Inject) -> io::Result<R>,
    ) -> io::Result<R> {
        let mut st = self.state.lock().unwrap();
        let inject = st.check(kind, &self.path)?;
        let id = self.id;
        f(&mut st.fs.files[id], inject)
    }
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.with(OpKind::Write, |file, inject| match inject {
            Inject::None => {
                file.data.extend_from_slice(buf);
                Ok(())
            }
            Inject::Short(written) => {
                // The torn write: a prefix reaches the page cache, then
                // the op fails. The caller must treat the file as dirty
                // with unknown content — exactly the fsyncgate hazard.
                file.data.extend_from_slice(&buf[..written.min(buf.len())]);
                Err(io::Error::from_raw_os_error(EIO))
            }
        })
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.with(OpKind::SyncData, |file, _| {
            file.durable = file.data.clone();
            Ok(())
        })
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.with(OpKind::SyncAll, |file, _| {
            file.durable = file.data.clone();
            Ok(())
        })
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.with(OpKind::SetLen, |file, _| {
            file.data.resize(len as usize, 0);
            Ok(())
        })
    }

    fn len(&self) -> io::Result<u64> {
        self.with(OpKind::Len, |file, _| Ok(file.data.len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(vfs: &FaultVfs) -> PathBuf {
        let dir = PathBuf::from("/w");
        vfs.create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_write_sync_read() {
        let vfs = FaultVfs::new(FaultConfig::new());
        let dir = w(&vfs);
        let p = dir.join("a");
        let mut f = vfs.create_new(&p).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(vfs.read(&p).unwrap(), b"hello");
        assert_eq!(vfs.read_dir_names(&dir).unwrap(), vec!["a".to_string()]);
        let mut g = vfs.open_append(&p).unwrap();
        g.write_all(b" world").unwrap();
        assert_eq!(g.len().unwrap(), 11);
        assert_eq!(vfs.read(&p).unwrap(), b"hello world");
    }

    #[test]
    fn create_new_refuses_existing_and_open_refuses_missing() {
        let vfs = FaultVfs::new(FaultConfig::new());
        let dir = w(&vfs);
        let p = dir.join("a");
        vfs.create_new(&p).unwrap();
        let err = vfs
            .create_new(&p)
            .err()
            .expect("duplicate create must fail");
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        let err = vfs
            .open_append(&dir.join("nope"))
            .err()
            .expect("missing file must fail");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let err = vfs.read(&dir.join("nope")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn power_loss_drops_unsynced_bytes_and_dirents() {
        let vfs = FaultVfs::new(FaultConfig::new());
        let dir = w(&vfs);
        let a = dir.join("a");
        let mut f = vfs.create_new(&a).unwrap();
        f.write_all(b"durable").unwrap();
        f.sync_data().unwrap();
        vfs.sync_dir(&dir).unwrap();
        f.write_all(b"-lost").unwrap(); // never synced
        let b = dir.join("b");
        vfs.create_new(&b).unwrap(); // dirent never synced
        drop(f);
        assert_eq!(vfs.unsynced_tail_len(), 5);
        vfs.power_loss(TornTail::DropAll);
        assert_eq!(vfs.read(&a).unwrap(), b"durable");
        assert_eq!(vfs.read_dir_names(&dir).unwrap(), vec!["a".to_string()]);
    }

    #[test]
    fn power_loss_torn_keep_preserves_a_prefix_of_the_tail() {
        let vfs = FaultVfs::new(FaultConfig::new());
        let dir = w(&vfs);
        let a = dir.join("a");
        vfs.sync_dir(&dir).unwrap();
        let mut f = vfs.create_new(&a).unwrap();
        f.write_all(b"base").unwrap();
        f.sync_data().unwrap();
        vfs.sync_dir(&dir).unwrap();
        f.write_all(b"XYZ").unwrap();
        drop(f);
        let forked = vfs.fork();
        forked.power_loss(TornTail::Keep(2));
        assert_eq!(forked.read(&a).unwrap(), b"baseXY");
        let scrambled = vfs.fork();
        scrambled.power_loss(TornTail::KeepScrambled(2));
        assert_eq!(
            scrambled.read(&a).unwrap(),
            [b'b', b'a', b's', b'e', b'X', b'Y' ^ 0x80]
        );
        vfs.power_loss(TornTail::Keep(99)); // clamped to the tail
        assert_eq!(vfs.read(&a).unwrap(), b"baseXYZ");
    }

    #[test]
    fn rename_moves_dirents_but_durability_waits_for_sync_dir() {
        let vfs = FaultVfs::new(FaultConfig::new());
        let dir = w(&vfs);
        let (a, b) = (dir.join("a"), dir.join("b"));
        let mut f = vfs.create_new(&a).unwrap();
        f.write_all(b"x").unwrap();
        f.sync_all().unwrap();
        drop(f);
        vfs.sync_dir(&dir).unwrap();
        vfs.rename(&a, &b).unwrap();
        assert_eq!(vfs.read(&b).unwrap(), b"x");
        assert!(vfs.read(&a).is_err());
        let lost = vfs.fork();
        lost.power_loss(TornTail::DropAll);
        // The rename was never made durable: the old name returns.
        assert_eq!(lost.read(&a).unwrap(), b"x");
        vfs.sync_dir(&dir).unwrap();
        vfs.power_loss(TornTail::DropAll);
        assert_eq!(vfs.read(&b).unwrap(), b"x");
    }

    #[test]
    fn fault_rules_fire_on_the_nth_op_of_their_kind() {
        let vfs = FaultVfs::new(FaultConfig::fail_nth(OpKind::SyncData, 2, FaultKind::Eio));
        let dir = w(&vfs);
        let mut f = vfs.create_new(&dir.join("a")).unwrap();
        f.write_all(b"1").unwrap();
        f.sync_data().unwrap(); // 1st: fine
        f.write_all(b"2").unwrap();
        let err = f.sync_data().unwrap_err(); // 2nd: injected
        assert_eq!(err.raw_os_error(), Some(EIO));
        f.sync_data().unwrap(); // 3rd: fine again (single-shot rule)
    }

    #[test]
    fn injected_errors_carry_classifiable_codes() {
        let vfs = FaultVfs::new(
            FaultConfig::new()
                .rule(FaultRule::new(OpKind::Write, 1, FaultKind::Eintr))
                .rule(FaultRule::new(OpKind::Write, 2, FaultKind::Enospc)),
        );
        let dir = w(&vfs);
        let mut f = vfs.create_new(&dir.join("a")).unwrap();
        let e1 = f.write_all(b"x").unwrap_err();
        assert_eq!(e1.kind(), io::ErrorKind::Interrupted);
        assert_eq!(e1.raw_os_error(), Some(EINTR));
        let e2 = f.write_all(b"x").unwrap_err();
        assert_eq!(e2.raw_os_error(), Some(ENOSPC));
        f.write_all(b"x").unwrap();
        // EINTR injects before any effect: only the final write landed.
        assert_eq!(f.len().unwrap(), 1);
    }

    #[test]
    fn short_write_applies_a_prefix_then_fails() {
        let vfs = FaultVfs::new(FaultConfig::fail_nth(
            OpKind::Write,
            1,
            FaultKind::ShortWrite { written: 3 },
        ));
        let dir = w(&vfs);
        let p = dir.join("a");
        let mut f = vfs.create_new(&p).unwrap();
        let err = f.write_all(b"abcdef").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(EIO));
        assert_eq!(vfs.peek(&p).unwrap(), b"abc");
    }

    #[test]
    fn crash_at_op_fails_everything_from_that_index_on() {
        let probe = FaultVfs::new(FaultConfig::new());
        let dir = w(&probe);
        let mut f = probe.create_new(&dir.join("a")).unwrap();
        f.write_all(b"x").unwrap();
        f.sync_data().unwrap();
        let total = probe.op_count();
        assert_eq!(total, 4, "mkdir, create, write, sync");
        for at in 0..total {
            let vfs = FaultVfs::new(FaultConfig::crash_at(at));
            let mut failed = false;
            failed |= vfs.create_dir_all(&PathBuf::from("/w")).is_err();
            match vfs.create_new(&PathBuf::from("/w/a")) {
                Err(_) => failed = true,
                Ok(mut f) => {
                    failed |= f.write_all(b"x").is_err();
                    failed |= f.sync_data().is_err();
                }
            }
            assert!(failed, "crash at {at} surfaced");
            assert!(vfs.crashed());
            // Once crashed, every op fails.
            assert!(vfs.read(&PathBuf::from("/w/a")).is_err());
        }
    }

    #[test]
    fn traces_are_deterministic_and_reset_by_arm() {
        let run = || {
            let vfs = FaultVfs::new(FaultConfig::new());
            let dir = w(&vfs);
            let mut f = vfs.create_new(&dir.join("a")).unwrap();
            f.write_all(b"abc").unwrap();
            f.sync_data().unwrap();
            vfs.sync_dir(&dir).unwrap();
            vfs.trace()
        };
        assert_eq!(run(), run(), "identical workloads trace identically");
        let vfs = FaultVfs::new(FaultConfig::new());
        w(&vfs);
        assert_eq!(vfs.op_count(), 1);
        vfs.arm(FaultConfig::crash_at(7));
        assert_eq!(vfs.op_count(), 0);
        assert!(vfs.trace().is_empty());
    }

    #[test]
    fn seeded_schedules_are_reproducible() {
        assert_eq!(FaultConfig::seeded(42), FaultConfig::seeded(42));
        let c = FaultConfig::seeded(42);
        assert_eq!(c.rules.len(), 1);
        assert_eq!(c.rules[0].op, OpKind::SyncData);
        assert!(c.rules[0].nth >= 1);
        // Different seeds eventually differ (sanity, not a distribution
        // claim).
        assert!((0..64).any(|s| FaultConfig::seeded(s) != c));
    }

    #[test]
    fn std_vfs_round_trips_through_real_files() {
        let dir = std::env::temp_dir().join(format!("btadt-vfs-std-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let vfs = StdVfs;
        vfs.create_dir_all(&dir).unwrap();
        let p = dir.join("f");
        let mut f = vfs.create_new(&p).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(vfs.read(&p).unwrap(), b"abc");
        assert!(vfs.read_dir_names(&dir).unwrap().contains(&"f".to_string()));
        let q = dir.join("g");
        vfs.rename(&p, &q).unwrap();
        let mut g = vfs.open_append(&q).unwrap();
        g.write_all(b"def").unwrap();
        assert_eq!(g.len().unwrap(), 6);
        g.set_len(2).unwrap();
        drop(g);
        assert_eq!(vfs.read(&q).unwrap(), b"ab");
        vfs.sync_dir(&dir).unwrap();
        vfs.remove_file(&q).unwrap();
        assert!(vfs.read(&q).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
