//! The incremental selected-chain cache: the hot half of the
//! store→selection→read pipeline.
//!
//! Def. 3.1 re-evaluates `f(bt)` on every `append` and materializes
//! `{b0}⌢f(bt)` on every `read`. [`ChainCache`] keeps both answers warm:
//!
//! * the **tip** of `f(bt)`, maintained through
//!   [`SelectionFn::on_insert`] instead of an O(tree) rescan — O(log n)
//!   per insert for the chain rules, O(depth of the inserted block) for
//!   GHOST (its weight update walks leaf→root);
//! * the **chain** `{b0}⌢f(bt)` itself, as a [`Blockchain`] over a shared
//!   grow-only buffer: extension pushes in place (amortized O(1)),
//!   reorgs splice at the fork (O(log n) LCA + O(changed suffix)), and
//!   `read()` is a plain `Arc` clone — `path_from_genesis` is off the
//!   read path entirely, for changed and unchanged tips alike.
//!
//! # Validity invariants
//!
//! The cache is coherent with a `(store, tree)` pair as long as every
//! membership insert is reported through [`ChainCache::on_insert`], in
//! insertion order, with the same selection function throughout. Callers
//! that mutate the tree behind the cache's back must call
//! [`ChainCache::rebuild`] before trusting it again. In debug builds,
//! [`ChainCache::debug_validate`] cross-checks the cached tip against a
//! full `select_tip` scan (and `on_insert` invokes it after every fold);
//! the differential suite in `tests/selection_differential.rs` asserts
//! the same agreement in release mode over randomized fork-heavy
//! workloads for every shipped rule.

use crate::chain::Blockchain;
use crate::ids::BlockId;
use crate::selection::{SelectionAux, SelectionFn, TipUpdate};
use crate::store::{BlockView, TreeMembership};

/// Cached selection state for one BlockTree replica.
#[derive(Clone, Debug)]
pub struct ChainCache {
    /// `{b0}⌢f(bt)`, maintained in place.
    chain: Blockchain,
    /// Per-rule scratch (GHOST subtree weights live here).
    aux: SelectionAux,
}

impl ChainCache {
    /// A cache for a genesis-only tree (`f(b0) = b0`).
    pub fn new() -> Self {
        ChainCache {
            chain: Blockchain::genesis(),
            aux: SelectionAux::new(),
        }
    }

    /// Re-derives the cache from scratch with a full `select_tip` scan —
    /// the entry point for trees that were built before the cache attached
    /// or mutated behind its back.
    pub fn rebuild(
        &mut self,
        selection: &dyn SelectionFn,
        store: &dyn BlockView,
        tree: &TreeMembership,
    ) {
        let tip = selection.select_tip(store, tree);
        self.chain = Blockchain::from_tip(store, tip);
        self.aux.reset();
    }

    /// Reports one membership insert to the selection function and folds
    /// the resulting [`TipUpdate`] into the cached chain.
    pub fn on_insert(
        &mut self,
        selection: &dyn SelectionFn,
        store: &dyn BlockView,
        tree: &TreeMembership,
        new_block: BlockId,
    ) {
        match selection.on_insert(store, tree, &mut self.aux, new_block, self.chain.tip()) {
            TipUpdate::Unchanged => {}
            TipUpdate::Extended(t) => {
                debug_assert_eq!(store.parent(t), Some(self.chain.tip()));
                self.chain.push_in_place(t);
            }
            TipUpdate::Switched(t) => self.splice_to(store, t),
        }
        self.debug_validate(selection, store, tree);
    }

    /// Moves the cached chain to end at `new_tip`, reusing the shared
    /// prefix: truncate at the fork, then append the new suffix. Costs
    /// O(log n) for the LCA plus O(|changed suffix|).
    fn splice_to(&mut self, store: &dyn BlockView, new_tip: BlockId) {
        advance_chain(store, &mut self.chain, new_tip);
    }

    /// The cached tip of `f(bt)` — O(1).
    #[inline]
    pub fn tip(&self) -> BlockId {
        self.chain.tip()
    }

    /// The cached genesis→tip path — O(1), no materialization.
    #[inline]
    pub fn path(&self) -> &[BlockId] {
        self.chain.ids()
    }

    /// `{b0}⌢f(bt)` as a [`Blockchain`] — an `Arc` clone of the live
    /// chain, O(1) whether or not the tip moved since the last read. The
    /// snapshot stays valid as the cache keeps growing (committed
    /// prefixes are immutable; see `crate::chain`).
    pub fn chain(&self) -> Blockchain {
        self.chain.clone()
    }

    /// Debug-build cross-check of the cached tip against the full-scan
    /// oracle (compiled out in release builds).
    #[inline]
    pub fn debug_validate(
        &self,
        selection: &dyn SelectionFn,
        store: &dyn BlockView,
        tree: &TreeMembership,
    ) {
        #[cfg(debug_assertions)]
        {
            debug_assert_eq!(
                self.chain.tip(),
                selection.select_tip(store, tree),
                "ChainCache diverged from full-scan {} selection",
                selection.name()
            );
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = (selection, store, tree);
        }
    }
}

impl Default for ChainCache {
    fn default() -> Self {
        ChainCache::new()
    }
}

/// Moves a maintained `{b0}⌢f(bt)` chain to end at `new_tip`, reusing the
/// shared prefix: a direct child pushes in place (amortized O(1)); anything
/// else — a multi-block extension or a reorg — splices at the fork
/// (O(log n) LCA + O(|changed suffix|)). Shared by [`ChainCache`] and the
/// concurrent pipeline's publication stage, which advances the published
/// chain by a whole drained batch at a time.
pub(crate) fn advance_chain(store: &dyn BlockView, chain: &mut Blockchain, new_tip: BlockId) {
    let old = chain.tip();
    if new_tip == old {
        return;
    }
    if store.parent(new_tip) == Some(old) {
        chain.push_in_place(new_tip);
        return;
    }
    let lca = store.common_ancestor(old, new_tip);
    let keep = store.height(lca) as usize + 1;
    let mut suffix = Vec::with_capacity(store.height(new_tip) as usize + 1 - keep);
    let mut cur = new_tip;
    while cur != lca {
        suffix.push(cur);
        cur = store.parent(cur).expect("lca is an ancestor of new_tip");
    }
    suffix.reverse();
    chain.splice_in_place(keep, &suffix);
    debug_assert_eq!(chain.tip(), new_tip);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Payload;
    use crate::ids::ProcessId;
    use crate::selection::{Ghost, HeaviestWork, LongestChain};
    use crate::store::BlockStore;

    fn mint(store: &mut BlockStore, parent: BlockId, work: u64, nonce: u64) -> BlockId {
        store.mint(parent, ProcessId(0), 0, work, nonce, Payload::Empty)
    }

    #[test]
    fn fresh_cache_reads_genesis() {
        let cache = ChainCache::new();
        assert_eq!(cache.tip(), BlockId::GENESIS);
        assert_eq!(cache.chain(), Blockchain::genesis());
        assert_eq!(cache.path(), &[BlockId::GENESIS]);
    }

    #[test]
    fn extension_grows_chain_in_place() {
        let mut store = BlockStore::new();
        let mut tree = TreeMembership::genesis_only();
        let mut cache = ChainCache::new();
        let mut prev = BlockId::GENESIS;
        for i in 0..20 {
            let b = mint(&mut store, prev, 1, i);
            tree.insert(&store, b);
            cache.on_insert(&LongestChain, &store, &tree, b);
            assert_eq!(cache.tip(), b);
            prev = b;
        }
        assert_eq!(cache.path().len(), 21);
        assert_eq!(cache.chain().len(), 21);
    }

    #[test]
    fn reorg_splices_at_the_fork() {
        let mut store = BlockStore::new();
        let mut tree = TreeMembership::genesis_only();
        let mut cache = ChainCache::new();
        // Light branch first, then a heavier fork off genesis.
        let a = mint(&mut store, BlockId::GENESIS, 1, 0);
        tree.insert(&store, a);
        cache.on_insert(&HeaviestWork, &store, &tree, a);
        let a2 = mint(&mut store, a, 1, 1);
        tree.insert(&store, a2);
        cache.on_insert(&HeaviestWork, &store, &tree, a2);
        assert_eq!(cache.tip(), a2);

        let b = mint(&mut store, BlockId::GENESIS, 10, 2);
        tree.insert(&store, b);
        cache.on_insert(&HeaviestWork, &store, &tree, b);
        assert_eq!(cache.tip(), b, "work 10 beats work 2");
        assert_eq!(cache.path(), &[BlockId::GENESIS, b]);
        assert_eq!(cache.chain().tip(), b);
    }

    #[test]
    fn snapshots_stay_valid_while_the_chain_grows() {
        let mut store = BlockStore::new();
        let mut tree = TreeMembership::genesis_only();
        let mut cache = ChainCache::new();
        let a = mint(&mut store, BlockId::GENESIS, 1, 0);
        tree.insert(&store, a);
        cache.on_insert(&LongestChain, &store, &tree, a);
        let snap = cache.chain();
        assert_eq!(snap.ids(), &[BlockId::GENESIS, a]);
        // Grow past the snapshot: its view must not move.
        let b = mint(&mut store, a, 1, 1);
        tree.insert(&store, b);
        cache.on_insert(&LongestChain, &store, &tree, b);
        assert_eq!(snap.ids(), &[BlockId::GENESIS, a]);
        assert_eq!(cache.chain().ids(), &[BlockId::GENESIS, a, b]);
        assert!(snap.is_prefix_of(&cache.chain()));
    }

    #[test]
    fn repeated_reads_share_one_buffer() {
        let mut store = BlockStore::new();
        let mut tree = TreeMembership::genesis_only();
        let mut cache = ChainCache::new();
        let a = mint(&mut store, BlockId::GENESIS, 1, 0);
        tree.insert(&store, a);
        cache.on_insert(&LongestChain, &store, &tree, a);
        let c1 = cache.chain();
        let c2 = cache.chain();
        assert_eq!(c1, c2);
        // Same allocation: ids() slices are pointer-identical.
        assert_eq!(c1.ids().as_ptr(), c2.ids().as_ptr());
    }

    #[test]
    fn rebuild_recovers_from_unreported_inserts() {
        let mut store = BlockStore::new();
        let mut tree = TreeMembership::genesis_only();
        let mut cache = ChainCache::new();
        let a = mint(&mut store, BlockId::GENESIS, 1, 0);
        tree.insert(&store, a); // not reported
        let b = mint(&mut store, a, 1, 1);
        tree.insert(&store, b); // not reported
        cache.rebuild(&Ghost::default(), &store, &tree);
        assert_eq!(cache.tip(), b);
        assert_eq!(cache.chain().len(), 3);
        // And incremental maintenance continues from the rebuilt state.
        let c = mint(&mut store, b, 1, 2);
        tree.insert(&store, c);
        cache.on_insert(&Ghost::default(), &store, &tree, c);
        assert_eq!(cache.tip(), c);
    }
}
