//! Blockchains: root-to-leaf paths of the BlockTree.
//!
//! §3.1: "a blockchain is a path from a leaf of `bt` to `b0`". A `read()`
//! returns `{b0}⌢f(bt)` — the concatenation of the genesis block with the
//! selected chain. We materialize returned chains genesis-first, which makes
//! the prefix relation `⊑` a plain slice-prefix test and keeps recorded
//! histories self-contained (checkable without the originating store).

use crate::ids::BlockId;
use crate::score::ScoreFn;
use crate::store::BlockStore;
use std::fmt;
use std::sync::Arc;

/// A materialized blockchain `{b0}⌢…`, genesis first.
///
/// Cheap to clone (`Arc`-backed): histories record many reads of slowly
/// growing chains.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Blockchain {
    ids: Arc<[BlockId]>,
}

impl Blockchain {
    /// The chain containing only the genesis block (`read` on the initial
    /// state returns `b0`, Def. 3.1).
    pub fn genesis() -> Self {
        Blockchain {
            ids: Arc::from(vec![BlockId::GENESIS]),
        }
    }

    /// Builds a chain from a genesis-first id sequence.
    ///
    /// Panics if the sequence is empty or does not start at `b0`: every
    /// blockchain of the model contains the genesis block.
    pub fn from_ids(ids: Vec<BlockId>) -> Self {
        assert!(
            ids.first() == Some(&BlockId::GENESIS),
            "blockchain must start at the genesis block"
        );
        Blockchain {
            ids: Arc::from(ids),
        }
    }

    /// Materializes the genesis→`tip` path of `store`.
    pub fn from_tip(store: &BlockStore, tip: BlockId) -> Self {
        Blockchain {
            ids: Arc::from(store.path_from_genesis(tip)),
        }
    }

    /// Blocks, genesis first.
    #[inline]
    pub fn ids(&self) -> &[BlockId] {
        &self.ids
    }

    /// The leaf (deepest block) of the chain; genesis if the chain is `{b0}`.
    #[inline]
    pub fn tip(&self) -> BlockId {
        *self.ids.last().expect("chains are never empty")
    }

    /// Number of blocks including genesis.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Chains always contain at least `b0`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The prefix relation `bc ⊑ bc'` (§3.1.2): `self` is a prefix of
    /// `other`. Reflexive.
    #[inline]
    pub fn is_prefix_of(&self, other: &Blockchain) -> bool {
        other.ids.starts_with(&self.ids)
    }

    /// True iff one of the two chains prefixes the other — the comparability
    /// test used by the Strong Prefix property (Def. 3.2).
    #[inline]
    pub fn comparable(&self, other: &Blockchain) -> bool {
        self.is_prefix_of(other) || other.is_prefix_of(self)
    }

    /// Length (in blocks) of the maximal common prefix.
    pub fn common_prefix_len(&self, other: &Blockchain) -> usize {
        self.ids
            .iter()
            .zip(other.ids.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// The maximal common prefix as a chain (always contains `b0`).
    pub fn common_prefix(&self, other: &Blockchain) -> Blockchain {
        let n = self.common_prefix_len(other);
        Blockchain {
            ids: Arc::from(&self.ids[..n]),
        }
    }

    /// `mcps(bc, bc')` (§3.1.2): the *score* of the maximal common prefix of
    /// two blockchains, under a given score function.
    pub fn mcps(&self, other: &Blockchain, score: &dyn ScoreFn) -> u64 {
        score.score_prefix(self, self.common_prefix_len(other))
    }

    /// The chain truncated to its first `n` blocks (`n ≥ 1`).
    pub fn prefix(&self, n: usize) -> Blockchain {
        assert!(n >= 1 && n <= self.len(), "prefix length out of range");
        Blockchain {
            ids: Arc::from(&self.ids[..n]),
        }
    }

    /// `{b0}⌢f(bt)⌢{b}` notation support: this chain extended by one block.
    pub fn extended(&self, b: BlockId) -> Blockchain {
        let mut v = Vec::with_capacity(self.len() + 1);
        v.extend_from_slice(&self.ids);
        v.push(b);
        Blockchain { ids: Arc::from(v) }
    }
}

impl fmt::Debug for Blockchain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for id in self.ids.iter() {
            if !first {
                write!(f, "⌢")?;
            }
            write!(f, "{id}")?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Display for Blockchain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Payload;
    use crate::ids::ProcessId;
    use crate::score::LengthScore;

    fn chain(ids: &[u32]) -> Blockchain {
        Blockchain::from_ids(ids.iter().map(|&i| BlockId(i)).collect())
    }

    #[test]
    fn genesis_chain() {
        let g = Blockchain::genesis();
        assert_eq!(g.len(), 1);
        assert_eq!(g.tip(), BlockId::GENESIS);
        assert_eq!(format!("{g}"), "b0");
    }

    #[test]
    #[should_panic(expected = "must start at the genesis")]
    fn rejects_rootless_chain() {
        Blockchain::from_ids(vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn prefix_relation() {
        let a = chain(&[0, 1, 2]);
        let b = chain(&[0, 1, 2, 3]);
        let c = chain(&[0, 1, 4]);
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(a.is_prefix_of(&a), "⊑ is reflexive");
        assert!(a.comparable(&b));
        assert!(!a.comparable(&c) || a.is_prefix_of(&c));
        assert!(!b.comparable(&c));
    }

    #[test]
    fn common_prefix() {
        let a = chain(&[0, 1, 2, 3]);
        let b = chain(&[0, 1, 4, 5]);
        assert_eq!(a.common_prefix_len(&b), 2);
        assert_eq!(a.common_prefix(&b), chain(&[0, 1]));
        let g = Blockchain::genesis();
        assert_eq!(a.common_prefix(&g), g);
    }

    #[test]
    fn mcps_with_length_score() {
        let a = chain(&[0, 1, 2, 3]);
        let b = chain(&[0, 1, 4, 5]);
        // common prefix b0⌢b1 has length-score 1 (genesis scores s0 = 0).
        assert_eq!(a.mcps(&b, &LengthScore), 1);
        assert_eq!(a.mcps(&a, &LengthScore), 3);
    }

    #[test]
    fn extended_and_prefix() {
        let a = chain(&[0, 1]);
        let b = a.extended(BlockId(9));
        assert_eq!(b, chain(&[0, 1, 9]));
        assert!(a.is_prefix_of(&b));
        assert_eq!(b.prefix(2), a);
        assert_eq!(b.prefix(1), Blockchain::genesis());
    }

    #[test]
    fn from_tip_matches_store_path() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        let b = s.mint(a, ProcessId(0), 0, 1, 1, Payload::Empty);
        let c = Blockchain::from_tip(&s, b);
        assert_eq!(c.ids(), &[BlockId::GENESIS, a, b]);
        assert_eq!(c.tip(), b);
    }
}
