//! Blockchains: root-to-leaf paths of the BlockTree.
//!
//! §3.1: "a blockchain is a path from a leaf of `bt` to `b0`". A `read()`
//! returns `{b0}⌢f(bt)` — the concatenation of the genesis block with the
//! selected chain. We materialize returned chains genesis-first, which makes
//! the prefix relation `⊑` a plain slice-prefix test and keeps recorded
//! histories self-contained (checkable without the originating store).
//!
//! # Representation
//!
//! A chain is a *prefix view* `(buffer, len)` over a shared, grow-only
//! id buffer ([`ChainBuf`]). Committed prefixes are immutable — a chain
//! only ever grows at the tip or is replaced at a reorg — so many
//! snapshots of a growing chain share one allocation: cloning is an `Arc`
//! bump, `prefix` and `common_prefix` are O(1) views, and the incremental
//! read path (`crate::tipcache`) extends its chain in place (amortized
//! O(1) per block) while outstanding snapshots stay valid.
//!
//! The buffer appends through an *initialization frontier* (`init`): a
//! cell is written exactly once, by the writer that claims its index with
//! a compare-exchange on the frontier, and is immutable from then on.
//! Extension therefore needs no copy-on-write even while snapshots (or a
//! published concurrent-reader view, see `crate::concurrent`) share the
//! buffer; a copy happens only when capacity runs out (amortized O(1) by
//! doubling), when two diverging owners race for the same frontier slot,
//! or on a reorg splice under sharing.

use crate::ids::BlockId;
use crate::score::ScoreFn;
use crate::store::BlockView;
use crate::sync::atomic::{AtomicUsize, Ordering};
use std::cell::UnsafeCell;
use std::fmt;
use std::sync::Arc;

/// Grow-only shared id buffer backing [`Blockchain`] prefix views.
///
/// # Safety protocol
///
/// * Cells `[0, init)` are initialized and never written again while the
///   buffer is shared; they may be read freely (`slice`).
/// * A writer appends by claiming index `i = init` with a CAS
///   `init: i → i + 1` and then writing cell `i`. Only the claiming
///   writer ever touches that cell, and no `Blockchain` view with
///   `len > i` exists until that writer publishes one *after* the write,
///   so readers never observe the cell mid-write. Cross-thread visibility
///   of the cell contents is provided by whatever release/acquire edge
///   hands the longer view to the reader (an `Arc` clone handed across a
///   channel, the atomic tip publication of `crate::concurrent`, a thread
///   join, …) — the same edge that makes the view's `len` visible.
/// * A sole owner (`Arc::get_mut` succeeds) may rewrite cells arbitrarily
///   (reorg splices reuse capacity this way).
struct ChainBuf {
    cells: Box<[UnsafeCell<BlockId>]>,
    /// Initialization frontier: number of immutably written cells.
    init: AtomicUsize,
}

// SAFETY: see the protocol above — cells below the frontier are
// immutable, the frontier cell is written by exactly one claiming writer
// before any view covering it exists.
unsafe impl Send for ChainBuf {}
// SAFETY: same protocol as Send above — shared references only ever read
// the immutable below-frontier prefix.
unsafe impl Sync for ChainBuf {}

impl ChainBuf {
    fn with_capacity(cap: usize) -> ChainBuf {
        ChainBuf {
            cells: (0..cap)
                .map(|_| UnsafeCell::new(BlockId::GENESIS))
                .collect(),
            init: AtomicUsize::new(0),
        }
    }

    /// A buffer holding `ids`, with at least `cap` capacity. Sole owner
    /// during construction, so plain writes are fine.
    fn from_slice(ids: &[BlockId], cap: usize) -> ChainBuf {
        let buf = ChainBuf::with_capacity(cap.max(ids.len()));
        for (i, &id) in ids.iter().enumerate() {
            // SAFETY: `buf` is freshly constructed and not yet shared, so
            // these are exclusive writes to unaliased cells.
            unsafe { *buf.cells[i].get() = id };
        }
        buf.init.store(ids.len(), Ordering::Release);
        buf
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// The first `len` cells.
    ///
    /// # Safety
    ///
    /// Caller must guarantee `len` cells were initialized before this view
    /// existed (the `Blockchain` invariant), which also makes them
    /// immutable for the lifetime of the returned slice.
    #[inline]
    unsafe fn slice(&self, len: usize) -> &[BlockId] {
        std::slice::from_raw_parts(self.cells.as_ptr() as *const BlockId, len)
    }
}

/// A materialized blockchain `{b0}⌢…`, genesis first.
///
/// Cheap to clone (`Arc`-backed prefix view): histories record many reads
/// of slowly growing chains, all sharing the same buffer.
///
/// Invariant: `len` cells of `buf` were initialized before this view was
/// constructed, so `ids()` is always a fully initialized, immutable
/// prefix.
#[derive(Clone)]
pub struct Blockchain {
    buf: Arc<ChainBuf>,
    len: usize,
}

impl PartialEq for Blockchain {
    fn eq(&self, other: &Self) -> bool {
        // Content equality on the viewed prefix (buffer identity is an
        // implementation detail). Fast path: same buffer, same length.
        (Arc::ptr_eq(&self.buf, &other.buf) && self.len == other.len) || self.ids() == other.ids()
    }
}

impl Eq for Blockchain {}

impl std::hash::Hash for Blockchain {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.ids().hash(state);
    }
}

impl Blockchain {
    /// The chain containing only the genesis block (`read` on the initial
    /// state returns `b0`, Def. 3.1).
    pub fn genesis() -> Self {
        Blockchain {
            buf: Arc::new(ChainBuf::from_slice(&[BlockId::GENESIS], 1)),
            len: 1,
        }
    }

    /// Builds a chain from a genesis-first id sequence.
    ///
    /// Panics if the sequence is empty or does not start at `b0`: every
    /// blockchain of the model contains the genesis block.
    pub fn from_ids(ids: Vec<BlockId>) -> Self {
        assert!(
            ids.first() == Some(&BlockId::GENESIS),
            "blockchain must start at the genesis block"
        );
        let len = ids.len();
        Blockchain {
            buf: Arc::new(ChainBuf::from_slice(&ids, len)),
            len,
        }
    }

    /// Materializes the genesis→`tip` path of `store`.
    pub fn from_tip(store: &dyn BlockView, tip: BlockId) -> Self {
        Blockchain::from_ids(store.path_from_genesis(tip))
    }

    /// Blocks, genesis first.
    #[inline]
    pub fn ids(&self) -> &[BlockId] {
        // SAFETY: the type invariant — `len` cells were initialized before
        // this view existed and are immutable while shared.
        unsafe { self.buf.slice(self.len) }
    }

    /// The leaf (deepest block) of the chain; genesis if the chain is `{b0}`.
    #[inline]
    pub fn tip(&self) -> BlockId {
        self.ids()[self.len - 1]
    }

    /// Number of blocks including genesis.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Appends `b` in place. Amortized O(1) even while snapshots share the
    /// buffer: if this view ends at the initialization frontier, the next
    /// cell is claimed (CAS) and written — snapshots only ever cover
    /// shorter, already-immutable prefixes. A copy happens only when
    /// capacity runs out (doubling) or when a diverged owner already took
    /// the frontier slot. Used by the incremental chain cache.
    pub(crate) fn push_in_place(&mut self, b: BlockId) {
        if let Some(buf) = Arc::get_mut(&mut self.buf) {
            // Sole owner: write directly, no frontier coordination needed.
            if self.len < buf.capacity() {
                // SAFETY: `Arc::get_mut` proved exclusive ownership of the
                // buffer, so no other view can observe this cell.
                unsafe { *buf.cells[self.len].get() = b };
                *buf.init.get_mut() = self.len + 1;
                self.len += 1;
                return;
            }
        } else if self.len < self.buf.capacity()
            && self
                .buf
                .init
                // relaxed: failure ordering — on a lost race we fall through
                // to the copy path and never touch the contested cell.
                .compare_exchange(self.len, self.len + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            // SAFETY: shared buffer, and this view ends exactly at the
            // frontier: the CAS claimed cell `len` exclusively. Views
            // covering the cell are only created from `self` afterwards.
            unsafe { *self.buf.cells[self.len].get() = b };
            self.len += 1;
            return;
        }
        // Out of capacity, or a diverged owner claimed the slot first:
        // copy this view into a doubled buffer.
        let buf = ChainBuf::from_slice(self.ids(), (self.len + 1).next_power_of_two());
        // SAFETY: `buf` is freshly allocated and still exclusively owned.
        unsafe { *buf.cells[self.len].get() = b };
        buf.init.store(self.len + 1, Ordering::Release);
        self.buf = Arc::new(buf);
        self.len += 1;
    }

    /// Reorg splice: keeps the first `keep` blocks and appends `suffix`.
    /// O(|suffix|) when sole owner, O(keep + |suffix|) under sharing
    /// (rewriting initialized cells is only allowed with exclusive
    /// ownership, so a shared splice copies).
    pub(crate) fn splice_in_place(&mut self, keep: usize, suffix: &[BlockId]) {
        assert!(keep >= 1 && keep <= self.len, "splice keep out of range");
        let new_len = keep + suffix.len();
        match Arc::get_mut(&mut self.buf) {
            Some(buf) if new_len <= buf.capacity() => {
                for (i, &id) in suffix.iter().enumerate() {
                    // SAFETY: `Arc::get_mut` proved exclusive ownership, so
                    // rewriting initialized cells cannot race a reader.
                    unsafe { *buf.cells[keep + i].get() = id };
                }
                *buf.init.get_mut() = new_len;
            }
            _ => {
                let buf = ChainBuf::from_slice(&self.ids()[..keep], new_len.next_power_of_two());
                for (i, &id) in suffix.iter().enumerate() {
                    // SAFETY: fresh, exclusively owned buffer.
                    unsafe { *buf.cells[keep + i].get() = id };
                }
                buf.init.store(new_len, Ordering::Release);
                self.buf = Arc::new(buf);
            }
        }
        self.len = new_len;
    }

    /// Chains always contain at least `b0`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Heap bytes attributable to this view alone: its own footprint,
    /// plus the shared cell buffer only when this view holds the last
    /// reference to it (a superseded [`ChainBuf`] — left behind by a
    /// capacity doubling or a reorg splice — is freed by whichever view
    /// drops last, and the epoch reclamation stats want to see that
    /// moment coming). An estimate for accounting, not an allocator
    /// truth.
    pub fn approx_heap_bytes(&self) -> usize {
        let own = std::mem::size_of::<Blockchain>();
        if Arc::strong_count(&self.buf) == 1 {
            own + std::mem::size_of::<ChainBuf>()
                + self.buf.capacity() * std::mem::size_of::<BlockId>()
        } else {
            own
        }
    }

    /// The prefix relation `bc ⊑ bc'` (§3.1.2): `self` is a prefix of
    /// `other`. Reflexive. O(1) when both are views of one shared buffer.
    #[inline]
    pub fn is_prefix_of(&self, other: &Blockchain) -> bool {
        if Arc::ptr_eq(&self.buf, &other.buf) {
            return self.len <= other.len;
        }
        other.ids().starts_with(self.ids())
    }

    /// True iff one of the two chains prefixes the other — the comparability
    /// test used by the Strong Prefix property (Def. 3.2).
    #[inline]
    pub fn comparable(&self, other: &Blockchain) -> bool {
        self.is_prefix_of(other) || other.is_prefix_of(self)
    }

    /// Length (in blocks) of the maximal common prefix. O(1) when both
    /// are views of one shared buffer.
    pub fn common_prefix_len(&self, other: &Blockchain) -> usize {
        if Arc::ptr_eq(&self.buf, &other.buf) {
            return self.len.min(other.len);
        }
        self.ids()
            .iter()
            .zip(other.ids().iter())
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// The maximal common prefix as a chain (always contains `b0`).
    /// O(1) beyond the prefix-length computation: the result shares this
    /// chain's buffer.
    pub fn common_prefix(&self, other: &Blockchain) -> Blockchain {
        let n = self.common_prefix_len(other);
        Blockchain {
            buf: Arc::clone(&self.buf),
            len: n,
        }
    }

    /// `mcps(bc, bc')` (§3.1.2): the *score* of the maximal common prefix of
    /// two blockchains, under a given score function.
    pub fn mcps(&self, other: &Blockchain, score: &dyn ScoreFn) -> u64 {
        score.score_prefix(self, self.common_prefix_len(other))
    }

    /// The chain truncated to its first `n` blocks (`n ≥ 1`). O(1): the
    /// result is a shorter view of the same buffer.
    pub fn prefix(&self, n: usize) -> Blockchain {
        assert!(n >= 1 && n <= self.len(), "prefix length out of range");
        Blockchain {
            buf: Arc::clone(&self.buf),
            len: n,
        }
    }

    /// `{b0}⌢f(bt)⌢{b}` notation support: this chain extended by one block
    /// (a fresh allocation; the in-place variant lives on the cache).
    pub fn extended(&self, b: BlockId) -> Blockchain {
        let mut v = Vec::with_capacity(self.len() + 1);
        v.extend_from_slice(self.ids());
        v.push(b);
        Blockchain::from_ids(v)
    }
}

impl fmt::Debug for Blockchain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for id in self.ids().iter() {
            if !first {
                write!(f, "⌢")?;
            }
            write!(f, "{id}")?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Display for Blockchain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Payload;
    use crate::ids::ProcessId;
    use crate::score::LengthScore;
    use crate::store::BlockStore;

    fn chain(ids: &[u32]) -> Blockchain {
        Blockchain::from_ids(ids.iter().map(|&i| BlockId(i)).collect())
    }

    #[test]
    fn genesis_chain() {
        let g = Blockchain::genesis();
        assert_eq!(g.len(), 1);
        assert_eq!(g.tip(), BlockId::GENESIS);
        assert_eq!(format!("{g}"), "b0");
    }

    #[test]
    #[should_panic(expected = "must start at the genesis")]
    fn rejects_rootless_chain() {
        Blockchain::from_ids(vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn prefix_relation() {
        let a = chain(&[0, 1, 2]);
        let b = chain(&[0, 1, 2, 3]);
        let c = chain(&[0, 1, 4]);
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(a.is_prefix_of(&a), "⊑ is reflexive");
        assert!(a.comparable(&b));
        assert!(!a.comparable(&c) || a.is_prefix_of(&c));
        assert!(!b.comparable(&c));
    }

    #[test]
    fn common_prefix() {
        let a = chain(&[0, 1, 2, 3]);
        let b = chain(&[0, 1, 4, 5]);
        assert_eq!(a.common_prefix_len(&b), 2);
        assert_eq!(a.common_prefix(&b), chain(&[0, 1]));
        let g = Blockchain::genesis();
        assert_eq!(a.common_prefix(&g), g);
    }

    #[test]
    fn mcps_with_length_score() {
        let a = chain(&[0, 1, 2, 3]);
        let b = chain(&[0, 1, 4, 5]);
        // common prefix b0⌢b1 has length-score 1 (genesis scores s0 = 0).
        assert_eq!(a.mcps(&b, &LengthScore), 1);
        assert_eq!(a.mcps(&a, &LengthScore), 3);
    }

    #[test]
    fn extended_and_prefix() {
        let a = chain(&[0, 1]);
        let b = a.extended(BlockId(9));
        assert_eq!(b, chain(&[0, 1, 9]));
        assert!(a.is_prefix_of(&b));
        assert_eq!(b.prefix(2), a);
        assert_eq!(b.prefix(1), Blockchain::genesis());
    }

    #[test]
    fn from_tip_matches_store_path() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        let b = s.mint(a, ProcessId(0), 0, 1, 1, Payload::Empty);
        let c = Blockchain::from_tip(&s, b);
        assert_eq!(c.ids(), &[BlockId::GENESIS, a, b]);
        assert_eq!(c.tip(), b);
    }
}
