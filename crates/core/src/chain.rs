//! Blockchains: root-to-leaf paths of the BlockTree.
//!
//! §3.1: "a blockchain is a path from a leaf of `bt` to `b0`". A `read()`
//! returns `{b0}⌢f(bt)` — the concatenation of the genesis block with the
//! selected chain. We materialize returned chains genesis-first, which makes
//! the prefix relation `⊑` a plain slice-prefix test and keeps recorded
//! histories self-contained (checkable without the originating store).
//!
//! # Representation
//!
//! A chain is a *prefix view* `(buffer, len)` over a shared, grow-only
//! id buffer. Committed prefixes are immutable — a chain only ever grows
//! at the tip or is replaced at a reorg — so many snapshots of a growing
//! chain can share one allocation: cloning is an `Arc` bump, `prefix` and
//! `common_prefix` are O(1) views, and the incremental read path
//! (`crate::tipcache`) extends its chain in place (amortized O(1) per
//! block) while outstanding snapshots stay valid. A copy happens only
//! when the owner mutates while snapshots are live (copy-on-write) or on
//! a reorg splice.

use crate::ids::BlockId;
use crate::score::ScoreFn;
use crate::store::BlockStore;
use std::fmt;
use std::sync::Arc;

/// A materialized blockchain `{b0}⌢…`, genesis first.
///
/// Cheap to clone (`Arc`-backed prefix view): histories record many reads
/// of slowly growing chains, all sharing the same buffer.
#[derive(Clone)]
pub struct Blockchain {
    buf: Arc<Vec<BlockId>>,
    len: usize,
}

impl PartialEq for Blockchain {
    fn eq(&self, other: &Self) -> bool {
        // Content equality on the viewed prefix (buffer identity is an
        // implementation detail). Fast path: same buffer, same length.
        (Arc::ptr_eq(&self.buf, &other.buf) && self.len == other.len) || self.ids() == other.ids()
    }
}

impl Eq for Blockchain {}

impl std::hash::Hash for Blockchain {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.ids().hash(state);
    }
}

impl Blockchain {
    /// The chain containing only the genesis block (`read` on the initial
    /// state returns `b0`, Def. 3.1).
    pub fn genesis() -> Self {
        Blockchain {
            buf: Arc::new(vec![BlockId::GENESIS]),
            len: 1,
        }
    }

    /// Builds a chain from a genesis-first id sequence.
    ///
    /// Panics if the sequence is empty or does not start at `b0`: every
    /// blockchain of the model contains the genesis block.
    pub fn from_ids(ids: Vec<BlockId>) -> Self {
        assert!(
            ids.first() == Some(&BlockId::GENESIS),
            "blockchain must start at the genesis block"
        );
        let len = ids.len();
        Blockchain {
            buf: Arc::new(ids),
            len,
        }
    }

    /// Materializes the genesis→`tip` path of `store`.
    pub fn from_tip(store: &BlockStore, tip: BlockId) -> Self {
        Blockchain::from_ids(store.path_from_genesis(tip))
    }

    /// Blocks, genesis first.
    #[inline]
    pub fn ids(&self) -> &[BlockId] {
        &self.buf[..self.len]
    }

    /// The leaf (deepest block) of the chain; genesis if the chain is `{b0}`.
    #[inline]
    pub fn tip(&self) -> BlockId {
        self.buf[self.len - 1]
    }

    /// Number of blocks including genesis.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Appends `b` in place. Amortized O(1): reuses the shared buffer when
    /// this chain is its sole owner and the view covers the whole buffer;
    /// otherwise copies the viewed prefix once (copy-on-write) and future
    /// pushes are in-place again. Snapshots taken earlier keep their
    /// prefix either way. Used by the incremental chain cache.
    pub(crate) fn push_in_place(&mut self, b: BlockId) {
        match Arc::get_mut(&mut self.buf) {
            Some(v) => {
                v.truncate(self.len);
                v.push(b);
            }
            None => {
                let mut v = Vec::with_capacity((self.len + 1).next_power_of_two());
                v.extend_from_slice(&self.buf[..self.len]);
                v.push(b);
                self.buf = Arc::new(v);
            }
        }
        self.len += 1;
    }

    /// Reorg splice: keeps the first `keep` blocks and appends `suffix`.
    /// O(|suffix|) when sole owner, O(keep + |suffix|) under sharing.
    /// Used by the incremental chain cache.
    pub(crate) fn splice_in_place(&mut self, keep: usize, suffix: &[BlockId]) {
        assert!(keep >= 1 && keep <= self.len, "splice keep out of range");
        match Arc::get_mut(&mut self.buf) {
            Some(v) => {
                v.truncate(keep);
                v.extend_from_slice(suffix);
            }
            None => {
                let mut v = Vec::with_capacity(keep + suffix.len());
                v.extend_from_slice(&self.buf[..keep]);
                v.extend_from_slice(suffix);
                self.buf = Arc::new(v);
            }
        }
        self.len = keep + suffix.len();
    }

    /// Chains always contain at least `b0`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The prefix relation `bc ⊑ bc'` (§3.1.2): `self` is a prefix of
    /// `other`. Reflexive. O(1) when both are views of one shared buffer.
    #[inline]
    pub fn is_prefix_of(&self, other: &Blockchain) -> bool {
        if Arc::ptr_eq(&self.buf, &other.buf) {
            return self.len <= other.len;
        }
        other.ids().starts_with(self.ids())
    }

    /// True iff one of the two chains prefixes the other — the comparability
    /// test used by the Strong Prefix property (Def. 3.2).
    #[inline]
    pub fn comparable(&self, other: &Blockchain) -> bool {
        self.is_prefix_of(other) || other.is_prefix_of(self)
    }

    /// Length (in blocks) of the maximal common prefix. O(1) when both
    /// are views of one shared buffer.
    pub fn common_prefix_len(&self, other: &Blockchain) -> usize {
        if Arc::ptr_eq(&self.buf, &other.buf) {
            return self.len.min(other.len);
        }
        self.ids()
            .iter()
            .zip(other.ids().iter())
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// The maximal common prefix as a chain (always contains `b0`).
    /// O(1) beyond the prefix-length computation: the result shares this
    /// chain's buffer.
    pub fn common_prefix(&self, other: &Blockchain) -> Blockchain {
        let n = self.common_prefix_len(other);
        Blockchain {
            buf: Arc::clone(&self.buf),
            len: n,
        }
    }

    /// `mcps(bc, bc')` (§3.1.2): the *score* of the maximal common prefix of
    /// two blockchains, under a given score function.
    pub fn mcps(&self, other: &Blockchain, score: &dyn ScoreFn) -> u64 {
        score.score_prefix(self, self.common_prefix_len(other))
    }

    /// The chain truncated to its first `n` blocks (`n ≥ 1`). O(1): the
    /// result is a shorter view of the same buffer.
    pub fn prefix(&self, n: usize) -> Blockchain {
        assert!(n >= 1 && n <= self.len(), "prefix length out of range");
        Blockchain {
            buf: Arc::clone(&self.buf),
            len: n,
        }
    }

    /// `{b0}⌢f(bt)⌢{b}` notation support: this chain extended by one block
    /// (a fresh allocation; the in-place variant lives on the cache).
    pub fn extended(&self, b: BlockId) -> Blockchain {
        let mut v = Vec::with_capacity(self.len() + 1);
        v.extend_from_slice(self.ids());
        v.push(b);
        Blockchain::from_ids(v)
    }
}

impl fmt::Debug for Blockchain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for id in self.ids().iter() {
            if !first {
                write!(f, "⌢")?;
            }
            write!(f, "{id}")?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Display for Blockchain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Payload;
    use crate::ids::ProcessId;
    use crate::score::LengthScore;

    fn chain(ids: &[u32]) -> Blockchain {
        Blockchain::from_ids(ids.iter().map(|&i| BlockId(i)).collect())
    }

    #[test]
    fn genesis_chain() {
        let g = Blockchain::genesis();
        assert_eq!(g.len(), 1);
        assert_eq!(g.tip(), BlockId::GENESIS);
        assert_eq!(format!("{g}"), "b0");
    }

    #[test]
    #[should_panic(expected = "must start at the genesis")]
    fn rejects_rootless_chain() {
        Blockchain::from_ids(vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn prefix_relation() {
        let a = chain(&[0, 1, 2]);
        let b = chain(&[0, 1, 2, 3]);
        let c = chain(&[0, 1, 4]);
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(a.is_prefix_of(&a), "⊑ is reflexive");
        assert!(a.comparable(&b));
        assert!(!a.comparable(&c) || a.is_prefix_of(&c));
        assert!(!b.comparable(&c));
    }

    #[test]
    fn common_prefix() {
        let a = chain(&[0, 1, 2, 3]);
        let b = chain(&[0, 1, 4, 5]);
        assert_eq!(a.common_prefix_len(&b), 2);
        assert_eq!(a.common_prefix(&b), chain(&[0, 1]));
        let g = Blockchain::genesis();
        assert_eq!(a.common_prefix(&g), g);
    }

    #[test]
    fn mcps_with_length_score() {
        let a = chain(&[0, 1, 2, 3]);
        let b = chain(&[0, 1, 4, 5]);
        // common prefix b0⌢b1 has length-score 1 (genesis scores s0 = 0).
        assert_eq!(a.mcps(&b, &LengthScore), 1);
        assert_eq!(a.mcps(&a, &LengthScore), 3);
    }

    #[test]
    fn extended_and_prefix() {
        let a = chain(&[0, 1]);
        let b = a.extended(BlockId(9));
        assert_eq!(b, chain(&[0, 1, 9]));
        assert!(a.is_prefix_of(&b));
        assert_eq!(b.prefix(2), a);
        assert_eq!(b.prefix(1), Blockchain::genesis());
    }

    #[test]
    fn from_tip_matches_store_path() {
        let mut s = BlockStore::new();
        let a = s.mint(BlockId::GENESIS, ProcessId(0), 0, 1, 0, Payload::Empty);
        let b = s.mint(a, ProcessId(0), 0, 1, 1, Payload::Empty);
        let c = Blockchain::from_tip(&s, b);
        assert_eq!(c.ids(), &[BlockId::GENESIS, a, b]);
        assert_eq!(c.tip(), b);
    }
}
