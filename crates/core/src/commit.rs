//! The staged commit pipeline: an in-tree MPSC queue batching appends
//! through the selection lock.
//!
//! PR 2's `append` serialized every commit individually through the
//! selection mutex: one lock handoff, one incremental re-selection fold,
//! one boxed-chain publication *per append* — which is why append
//! throughput stayed flat from 1 to 8 threads. The queue below is the
//! *contended* path only: an appender whose `try_lock` on the selection
//! mutex succeeds first time commits inline — no request node, no queue
//! push, no status-word roundtrip (see `ConcurrentBlockTree::append`) —
//! so the fixed cost below is paid exactly when a drainer is already at
//! work and batching pays for it. The pipeline splits a contended append
//! into stages:
//!
//! 1. **Mint** (parallel, no locks): the appender mints its candidate
//!    against the published tip and pre-validates it, exactly as before.
//! 2. **Enqueue** (lock-free): the appender pushes a [`CommitReq`] onto
//!    the [`CommitQueue`] — a multi-producer stack whose consumer grabs
//!    the whole pending list with one `swap`.
//! 3. **Drain** (one winner): whichever enqueued appender acquires the
//!    selection mutex — one CAS when uncontended, so the solo-appender
//!    path pays nothing extra — drains the queue as a batch: membership
//!    insert + incremental `on_insert` re-selection per request, then a
//!    *single* chain publication for the whole batch. Contended
//!    appenders park on the mutex (no spin convoy); the incumbent
//!    drainer usually resolves them before they wake, and a woken
//!    appender that is still pending becomes the next drainer for
//!    whatever queued meanwhile — a combining lock, with no dedicated
//!    committer thread to wake, park, or shut down.
//!
//! Request nodes live on the enqueueing appender's stack: the appender
//! only returns after the drainer publishes the batch and resolves the
//! request (`status` stored `Release`, polled `Acquire`), and the drainer
//! never touches a request after resolving it — so the node's lifetime
//! covers every access without any allocation per append.
//!
//! The linearization point of a batched append is its resolution inside
//! the drain (under the selection lock, against the tree state at that
//! instant); the publish-before-respond contract is preserved because
//! statuses are stored only *after* the batch's publication swap. The
//! recorded-history checkers (Wing–Gong, windowed, LMR, commit-log
//! replay) run unchanged over the batched path — they are the oracle
//! that this restructuring changed nothing observable.
//!
//! Durability (PR 7) rides the same cadence: on a durable tree (see
//! [`crate::wal`] and `ConcurrentBlockTree::open_durable`) the WAL
//! append + fsync sit at the top of the publication step, so one
//! `fdatasync` covers the entire drained batch — group commit falls out
//! of the one-publication-per-batch rule for free — and the
//! publish-before-respond contract is strengthened to persist-then-ack:
//! statuses (and every decide-path wakeup downstream of them) are
//! stored only after the batch's records are on disk.

use crate::ids::BlockId;
use crate::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::ptr;

const PENDING: u32 = 0;
const COMMITTED: u32 = 1;
const REJECTED: u32 = 2;
/// The tree's WAL was poisoned before this request's batch persisted:
/// the commit was *not* made durable and must not be reported as
/// committed — the owner surfaces a `DurabilityError` instead.
const POISONED: u32 = 3;

/// Outcome of a resolved [`CommitReq`], as seen by its polling owner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Polled {
    /// Committed (and, on a durable tree, persisted) as this id.
    Committed(BlockId),
    /// Rejected by the validity predicate (a legitimate answer).
    Rejected,
    /// Never persisted: the tree degraded before this batch's group
    /// commit. The owner must report a durability error, not an ack.
    Poisoned,
}

/// One in-flight append: the optimistic mint plus the race context the
/// drainer resolves it against.
///
/// The candidate itself is *not* carried: its payload was moved into the
/// arena by the optimistic mint, and the drainer's re-mint path (the only
/// consumer that ever needs it again) reads the immutable fields back
/// from that arena orphan — so an append allocates nothing per request
/// and clones nothing on the happy path.
pub(crate) struct CommitReq {
    /// Intrusive link, owned by the queue between `push` and `take_all`.
    next: AtomicPtr<CommitReq>,
    /// The optimistic mint (already in the arena, not yet a member).
    pub minted: BlockId,
    /// The published tip the mint chained to.
    pub parent: BlockId,
    /// Whether `P` accepted the optimistic mint.
    pub prevalidated: bool,
    /// The candidate's nonce — the one immutable input a re-mint cannot
    /// recover from the arena orphan (blocks fold it into the digest but
    /// do not store it).
    pub nonce: u64,
    /// PENDING / COMMITTED / REJECTED.
    status: AtomicU32,
    /// The committed id (meaningful once status is COMMITTED).
    result: AtomicU32,
}

impl CommitReq {
    pub fn new(minted: BlockId, parent: BlockId, prevalidated: bool, nonce: u64) -> Self {
        CommitReq {
            next: AtomicPtr::new(ptr::null_mut()),
            minted,
            parent,
            prevalidated,
            nonce,
            status: AtomicU32::new(PENDING),
            result: AtomicU32::new(0),
        }
    }

    /// Publishes the outcome. The drainer must not touch the request
    /// after this call — the enqueueing appender is free to return (and
    /// pop the node's stack frame) the moment the status lands.
    pub fn resolve(&self, outcome: Option<BlockId>) {
        match outcome {
            Some(id) => {
                // relaxed: the Release store of `status` below orders this
                // payload write before any Acquire reader of COMMITTED.
                self.result.store(id.0, Ordering::Relaxed);
                self.status.store(COMMITTED, Ordering::Release);
            }
            None => self.status.store(REJECTED, Ordering::Release),
        }
    }

    /// Resolves the request as never-persisted (see [`Polled::Poisoned`]).
    /// Same touch-nothing-after contract as [`resolve`](Self::resolve).
    pub fn resolve_poisoned(&self) {
        self.status.store(POISONED, Ordering::Release);
    }

    /// `None` while pending, `Some(outcome)` once resolved.
    pub fn poll(&self) -> Option<Polled> {
        match self.status.load(Ordering::Acquire) {
            PENDING => None,
            // relaxed: the Acquire load of COMMITTED above synchronizes
            // with resolve()'s Release store, making `result` visible.
            COMMITTED => Some(Polled::Committed(BlockId(
                self.result.load(Ordering::Relaxed),
            ))),
            POISONED => Some(Polled::Poisoned),
            _ => Some(Polled::Rejected),
        }
    }
}

/// Lock-free multi-producer commit queue with whole-batch consumption.
///
/// Producers push with a CAS on `head` (a Treiber push); the drainer
/// takes the entire pending list with a single `swap(null)` and restores
/// FIFO order by reversing — after the swap it owns every node
/// exclusively, so no stub nodes or mid-queue races exist. Fairness
/// within a batch follows enqueue order.
pub(crate) struct CommitQueue {
    head: AtomicPtr<CommitReq>,
    /// Drains that found at least one request.
    drains: AtomicU64,
    /// Requests resolved across all drains.
    drained: AtomicU64,
    /// Largest single batch.
    max_batch: AtomicU64,
}

impl CommitQueue {
    pub fn new() -> Self {
        CommitQueue {
            head: AtomicPtr::new(ptr::null_mut()),
            drains: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
        }
    }

    /// Enqueues `req`.
    ///
    /// # Safety
    ///
    /// `req` must stay valid until [`CommitReq::resolve`] runs for it —
    /// guaranteed by the append protocol: the owner blocks on
    /// [`CommitReq::poll`] and the node is removed from the queue (by
    /// `take_all`) before any drainer dereferences it.
    pub unsafe fn push(&self, req: *const CommitReq) {
        let node = req as *mut CommitReq;
        loop {
            // relaxed: stale head snapshots only cost a CAS retry.
            let head = self.head.load(Ordering::Relaxed);
            // relaxed: the `next` link is published by the Release CAS.
            (*node).next.store(head, Ordering::Relaxed);
            if self
                .head
                // relaxed: failure ordering — a failed attempt publishes
                // nothing and just retries the loop.
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Takes every pending request, oldest first. The caller owns the
    /// returned nodes until it resolves them.
    pub fn take_all(&self) -> Vec<*const CommitReq> {
        // Empty-queue fast path: the inline commit path probes the queue
        // on every uncontended append, and a plain load keeps that probe
        // off the RMW path (a swap dirties the line even when null).
        if self.head.load(Ordering::Acquire).is_null() {
            return Vec::new();
        }
        let mut node = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        let mut batch: Vec<*const CommitReq> = Vec::new();
        while !node.is_null() {
            batch.push(node as *const CommitReq);
            // SAFETY: the swap transferred exclusive ownership of the
            // whole list to this caller; nodes are alive per `push`'s
            // contract (their owners are still polling).
            // relaxed: the Acquire swap above saw each pusher's Release
            // CAS, which ordered its `next` store before the handoff.
            node = unsafe { (*node).next.load(Ordering::Relaxed) };
        }
        batch.reverse();
        if !batch.is_empty() {
            // relaxed: observability counters — read only by stats(), no
            // ordering with the drained payloads required.
            self.drains.fetch_add(1, Ordering::Relaxed);
            self.drained
                .fetch_add(batch.len() as u64, Ordering::Relaxed); // relaxed: stats counter
            self.max_batch
                .fetch_max(batch.len() as u64, Ordering::Relaxed); // relaxed: stats counter
        }
        batch
    }

    pub fn stats(&self) -> PipelineStats {
        PipelineStats {
            // relaxed: approximate observability snapshot; counters are
            // independent and need no ordering with each other.
            batches: self.drains.load(Ordering::Relaxed),
            batched_appends: self.drained.load(Ordering::Relaxed), // relaxed: stats snapshot
            max_batch: self.max_batch.load(Ordering::Relaxed),     // relaxed: stats snapshot
            inline_appends: 0,
            score_ns: 0,
            publish_ns: 0,
            drain_lock_ns: 0,
        }
    }
}

/// Observability for the staged pipeline (reported by
/// `experiments bench-concurrent`).
///
/// The `*_ns` counters decompose where commit time goes under the
/// two-stage pipeline — `drain_lock_ns` is wall time holding the
/// selection (stage-1) lock, `score_ns` the slice of it spent in batch
/// selection scoring, `publish_ns` wall time holding the publication
/// (stage-2) lock — so the bench can report the in-lock share of a
/// contended drain and prove the publication critical section shrank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Non-empty drain passes.
    pub batches: u64,
    /// Appends resolved through the queue.
    pub batched_appends: u64,
    /// Largest batch resolved in one drain.
    pub max_batch: u64,
    /// Appends committed on the uncontended inline fast path — no queue,
    /// no status roundtrip (filled in by the tree; the queue itself never
    /// sees these).
    pub inline_appends: u64,
    /// Wall nanoseconds spent in batch selection scoring (stage 1,
    /// outside the publication lock; filled in by the tree).
    pub score_ns: u64,
    /// Wall nanoseconds holding the publication lock (stage 2: WAL group
    /// commit + chain splice + pointer swap; filled in by the tree).
    pub publish_ns: u64,
    /// Wall nanoseconds holding the stage-1 drain (selection) lock
    /// (filled in by the tree).
    pub drain_lock_ns: u64,
}

impl PipelineStats {
    /// Mean appends per commit batch. An inline commit is a batch of
    /// size 1 — counting it keeps the series comparable across thread
    /// counts (a solo appender commits everything inline and used to
    /// report 0.00 here).
    pub fn mean_batch(&self) -> f64 {
        let batches = self.batches + self.inline_appends;
        if batches == 0 {
            0.0
        } else {
            (self.batched_appends + self.inline_appends) as f64 / batches as f64
        }
    }
}

/// The finality watermark: how deep below the published tip a block must
/// sit before the storage layer may treat it as final and flatten it into
/// the immutable slab tier (see `ShardedStore::flatten_some`).
///
/// This is a *storage* policy, not a semantic one — a reorg past the
/// watermark stays correct (flattened reads are bit-identical and frozen
/// child lists keep absorbing late children), it just means the flattened
/// prefix briefly contains blocks the selection abandoned. The depth
/// trades resident spine memory against that risk window; `depth == 0`
/// disables flattening entirely.
///
/// Each publication maps the fresh chain to an **id-space bound** via
/// [`target_for`](Self::target_for): ids are minted parent-first, so every
/// id at or below the id of the block `depth` links behind the tip is an
/// ancestor-or-orphan of the finalized prefix. The bound is advanced with
/// a `fetch_max`, so the watermark is monotone even across reorgs that
/// shorten the chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FinalityWatermark {
    depth: u32,
}

impl FinalityWatermark {
    /// A watermark `depth` links below the published tip.
    pub const fn new(depth: u32) -> Self {
        FinalityWatermark { depth }
    }

    /// Flattening disabled: no target is ever produced.
    pub const fn disabled() -> Self {
        FinalityWatermark { depth: 0 }
    }

    /// Whether this watermark ever produces a flatten target.
    pub const fn is_enabled(&self) -> bool {
        self.depth > 0
    }

    /// The configured depth (0 = disabled).
    pub const fn depth(&self) -> u32 {
        self.depth
    }

    /// The exclusive id bound of the finalized prefix for a just-published
    /// chain (`ids` = genesis..tip), or `None` while the chain is shorter
    /// than the depth (or flattening is disabled).
    pub fn target_for(&self, ids: &[BlockId]) -> Option<u32> {
        if self.depth == 0 || ids.len() <= self.depth as usize {
            return None;
        }
        Some(ids[ids.len() - 1 - self.depth as usize].0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(nonce: u64) -> CommitReq {
        CommitReq::new(BlockId(nonce as u32 + 1), BlockId::GENESIS, true, nonce)
    }

    #[test]
    fn take_all_preserves_enqueue_order() {
        let q = CommitQueue::new();
        let (a, b, c) = (req(0), req(1), req(2));
        // SAFETY: the requests are stack locals that outlive every queue
        // operation in this test.
        unsafe {
            q.push(&a);
            q.push(&b);
            q.push(&c);
        }
        let batch = q.take_all();
        assert_eq!(batch.len(), 3);
        // SAFETY: the pointers come from the live locals pushed above.
        assert_eq!(unsafe { (*batch[0]).minted }, a.minted);
        assert_eq!(unsafe { (*batch[1]).minted }, b.minted); // SAFETY: as above
        assert_eq!(unsafe { (*batch[2]).minted }, c.minted); // SAFETY: as above
        assert!(q.take_all().is_empty(), "queue drained");
        let stats = q.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batched_appends, 3);
        assert_eq!(stats.max_batch, 3);
    }

    #[test]
    fn resolve_and_poll_round_trip() {
        let r = req(7);
        assert_eq!(r.poll(), None);
        r.resolve(Some(BlockId(42)));
        assert_eq!(r.poll(), Some(Polled::Committed(BlockId(42))));
        let r2 = req(8);
        r2.resolve(None);
        assert_eq!(r2.poll(), Some(Polled::Rejected));
        let r3 = req(9);
        r3.resolve_poisoned();
        assert_eq!(r3.poll(), Some(Polled::Poisoned));
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "yield-loop timing stress; the modelcheck suite covers the push/drain races"
    )]
    fn concurrent_producers_lose_no_requests() {
        let q = CommitQueue::new();
        let reqs: Vec<Vec<CommitReq>> = (0..4)
            .map(|t| (0..100).map(|i| req((t as u64) << 32 | i)).collect())
            .collect();
        let taken = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for thread_reqs in &reqs {
                let q = &q;
                s.spawn(move || {
                    for r in thread_reqs {
                        // SAFETY: `reqs` outlives the scope; nodes stay
                        // valid for the whole test.
                        unsafe { q.push(r) };
                    }
                });
            }
            let (q, taken) = (&q, &taken);
            s.spawn(move || {
                // Concurrent drains while producers push.
                for _ in 0..50 {
                    let batch = q.take_all();
                    taken
                        .lock()
                        .unwrap()
                        .extend(batch.iter().map(|&p| p as usize));
                    std::thread::yield_now();
                }
            });
        });
        // Final sweep after all producers joined.
        let batch = q.take_all();
        taken
            .lock()
            .unwrap()
            .extend(batch.iter().map(|&p| p as usize));
        let mut seen = taken.into_inner().unwrap();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 400, "every pushed request drained exactly once");
    }

    #[test]
    fn watermark_target_is_depth_behind_the_tip() {
        let ids: Vec<BlockId> = (0..10).map(BlockId).collect();
        let w = FinalityWatermark::new(3);
        // Tip is ids[9]; three links back is ids[6]; bound is exclusive.
        assert_eq!(w.target_for(&ids), Some(7));
        // Exactly depth+1 blocks: only the root is final.
        assert_eq!(w.target_for(&ids[..4]), Some(1));
        // Chains not longer than the depth produce no target.
        assert_eq!(w.target_for(&ids[..3]), None);
        assert_eq!(w.target_for(&ids[..1]), None);
        assert_eq!(FinalityWatermark::new(1).target_for(&ids), Some(9));
    }

    #[test]
    fn disabled_watermark_never_targets() {
        let ids: Vec<BlockId> = (0..100).map(BlockId).collect();
        let w = FinalityWatermark::disabled();
        assert!(!w.is_enabled());
        assert_eq!(w.depth(), 0);
        assert_eq!(w.target_for(&ids), None);
    }
}
