//! Blocks and their payloads.
//!
//! §3.1 of the paper models blocks abstractly: a countable set `B` of blocks,
//! of which a subset `B' ⊆ B` is *valid* with respect to an
//! application-dependent predicate `P` (see [`crate::validity`]). To make the
//! framework exercisable on realistic workloads, a block here carries:
//!
//! * its tree position (`parent`, memoized `height`),
//! * the producing process and that producer's *merit index* (the α of
//!   §3.2.1 — hashing power, stake, …),
//! * a `work` weight (difficulty share) feeding work-based scores and
//!   heaviest-chain selection,
//! * a pseudo-`digest` (deterministic hash of contents) used for
//!   lexicographic tie-breaking (Fig. 2) and ByzCoin's smallest-digest rule
//!   (§5.3),
//! * an application [`Payload`].

use crate::ids::{mix2, mix_slice, BlockId, ProcessId};
use std::fmt;

/// A toy transfer transaction. Just enough structure for the
/// double-spend-rejecting validity predicate of [`crate::validity`] to have
/// something real to check; the framework never inspects payload semantics
/// beyond the predicate `P`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Tx {
    /// Unique transaction identifier (used for double-spend detection).
    pub id: u64,
    /// Spending account.
    pub from: u32,
    /// Receiving account.
    pub to: u32,
    /// Transferred amount.
    pub amount: u64,
}

impl Tx {
    pub fn new(id: u64, from: u32, to: u32, amount: u64) -> Self {
        Tx {
            id,
            from,
            to,
            amount,
        }
    }

    fn digest_word(&self) -> u64 {
        mix_slice(
            0x7478, // "tx"
            &[self.id, self.from as u64, self.to as u64, self.amount],
        )
    }
}

/// Application content of a block.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum Payload {
    /// No application content (pure-structure experiments).
    #[default]
    Empty,
    /// An opaque word, useful for adversarial/property tests.
    Opaque(u64),
    /// A batch of transactions (cryptocurrency-style workloads).
    Transactions(Vec<Tx>),
}

impl Payload {
    /// Deterministic content hash.
    pub fn digest_word(&self) -> u64 {
        match self {
            Payload::Empty => 0x65_6D70_7479,
            Payload::Opaque(w) => mix2(0x6F70_6171, *w),
            Payload::Transactions(txs) => {
                let words: Vec<u64> = txs.iter().map(Tx::digest_word).collect();
                mix_slice(0x7478_7321, &words)
            }
        }
    }

    /// Number of transactions carried (0 for non-transaction payloads).
    pub fn tx_count(&self) -> usize {
        match self {
            Payload::Transactions(txs) => txs.len(),
            _ => 0,
        }
    }
}

/// An immutable vertex of the BlockTree.
///
/// Blocks live in a [`BlockStore`](crate::store::BlockStore) arena and are
/// referred to by [`BlockId`]; each edge points backward to the root
/// (`parent`), exactly the directed rooted tree `bt = (V_bt, E_bt)` of §3.1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Arena slot of this block (self reference, for convenience).
    pub id: BlockId,
    /// Backward edge towards the genesis block; `None` only for `b0`.
    pub parent: Option<BlockId>,
    /// Distance to the root (`b0` has height 0). Memoized at insertion.
    pub height: u32,
    /// Process that produced the block.
    pub producer: ProcessId,
    /// Index into the merit vector of the producing process (the α_i of the
    /// token oracle that granted the block's token).
    pub merit_index: u32,
    /// Work/difficulty weight of this single block.
    pub work: u64,
    /// Deterministic pseudo-digest of the block contents.
    pub digest: u64,
    /// Application payload.
    pub payload: Payload,
}

impl Block {
    /// Computes the canonical digest for a prospective block. Incorporates
    /// the parent digest so digests commit to the whole chain, like a real
    /// hash chain.
    pub fn compute_digest(
        parent_digest: u64,
        producer: ProcessId,
        nonce: u64,
        payload: &Payload,
    ) -> u64 {
        mix_slice(
            parent_digest,
            &[producer.0 as u64, nonce, payload.digest_word()],
        )
    }

    /// True iff this block is the genesis block.
    #[inline]
    pub fn is_genesis(&self) -> bool {
        self.parent.is_none()
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(h={}, by {}, work={}, digest={:016x})",
            self.id, self.height, self.producer, self.work, self.digest
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_digests_differ() {
        let a = Payload::Empty;
        let b = Payload::Opaque(1);
        let c = Payload::Opaque(2);
        let d = Payload::Transactions(vec![Tx::new(1, 0, 1, 10)]);
        let e = Payload::Transactions(vec![Tx::new(2, 0, 1, 10)]);
        let words = [
            a.digest_word(),
            b.digest_word(),
            c.digest_word(),
            d.digest_word(),
            e.digest_word(),
        ];
        for i in 0..words.len() {
            for j in (i + 1)..words.len() {
                assert_ne!(words[i], words[j], "payloads {i} and {j} collide");
            }
        }
    }

    #[test]
    fn payload_digest_is_stable() {
        let p = Payload::Transactions(vec![Tx::new(1, 2, 3, 4), Tx::new(5, 6, 7, 8)]);
        assert_eq!(p.digest_word(), p.digest_word());
    }

    #[test]
    fn tx_order_matters() {
        let p1 = Payload::Transactions(vec![Tx::new(1, 0, 1, 1), Tx::new(2, 0, 1, 1)]);
        let p2 = Payload::Transactions(vec![Tx::new(2, 0, 1, 1), Tx::new(1, 0, 1, 1)]);
        assert_ne!(p1.digest_word(), p2.digest_word());
    }

    #[test]
    fn tx_count() {
        assert_eq!(Payload::Empty.tx_count(), 0);
        assert_eq!(Payload::Opaque(9).tx_count(), 0);
        assert_eq!(
            Payload::Transactions(vec![Tx::new(1, 0, 1, 1)]).tx_count(),
            1
        );
    }

    #[test]
    fn block_digest_commits_to_parent() {
        let p = Payload::Empty;
        let d1 = Block::compute_digest(1, ProcessId(0), 0, &p);
        let d2 = Block::compute_digest(2, ProcessId(0), 0, &p);
        assert_ne!(d1, d2);
    }

    #[test]
    fn block_digest_commits_to_nonce_and_producer() {
        let p = Payload::Empty;
        let base = Block::compute_digest(0, ProcessId(0), 0, &p);
        assert_ne!(base, Block::compute_digest(0, ProcessId(1), 0, &p));
        assert_ne!(base, Block::compute_digest(0, ProcessId(0), 1, &p));
    }
}
