//! Local Monotonic Read (Def. 3.2, second clause).
//!
//! For any two reads `r, r'` of the *same* process with
//! `ersp(r) ↦→ einv(r')`, the scores must not decrease:
//! `score(ersp(r):bc) ≤ score(ersp(r'):bc')`.
//!
//! Processes are sequential, so per-process reads are totally ordered by
//! the clock; the check is a per-process scan over response-ordered reads.

use crate::criteria::{Verdict, Violation};
use crate::history::{History, ReadView};
use crate::ids::ProcessId;
use crate::score::ScoreFn;
use std::collections::HashMap;

pub const PROPERTY: &str = "local-monotonic-read";

/// Checks Local Monotonic Read under the given score function.
pub fn check(history: &History, score: &dyn ScoreFn) -> Verdict {
    let views = history.read_views(score);
    let mut per_process: HashMap<ProcessId, Vec<&ReadView>> = HashMap::new();
    for v in &views {
        per_process.entry(v.process).or_default().push(v);
    }

    let mut violations = Vec::new();
    for (process, mut reads) in per_process {
        // Sequential processes: order by invocation time.
        reads.sort_by_key(|v| (v.invoked_at, v.op));
        for w in reads.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b.score < a.score {
                violations.push(Violation::NonMonotonicRead {
                    process,
                    earlier: a.op,
                    later: b.op,
                    earlier_score: a.score,
                    later_score: b.score,
                });
            }
        }
    }
    // Deterministic report order.
    violations.sort_by_key(|v| match v {
        Violation::NonMonotonicRead { earlier, later, .. } => (*earlier, *later),
        _ => unreachable!("only monotonicity violations emitted here"),
    });
    Verdict::from_violations(PROPERTY, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Blockchain;
    use crate::history::{Invocation, Response};
    use crate::ids::{BlockId, Time};
    use crate::score::LengthScore;

    fn chain(ids: &[u32]) -> Blockchain {
        Blockchain::from_ids(ids.iter().map(|&i| BlockId(i)).collect())
    }

    fn read(h: &mut History, p: u32, t0: u64, t1: u64, c: Blockchain) {
        h.push_complete(
            ProcessId(p),
            Invocation::Read,
            Time(t0),
            Response::Chain(c),
            Time(t1),
        );
    }

    #[test]
    fn monotone_process_passes() {
        let mut h = History::new();
        read(&mut h, 0, 0, 1, chain(&[0]));
        read(&mut h, 0, 2, 3, chain(&[0, 1]));
        read(&mut h, 0, 4, 5, chain(&[0, 1, 2]));
        assert!(check(&h, &LengthScore).holds);
    }

    #[test]
    fn equal_scores_allowed() {
        let mut h = History::new();
        read(&mut h, 0, 0, 1, chain(&[0, 1]));
        read(&mut h, 0, 2, 3, chain(&[0, 2])); // different chain, same score
        assert!(check(&h, &LengthScore).holds, "≤ permits equality");
    }

    #[test]
    fn decreasing_score_detected() {
        let mut h = History::new();
        read(&mut h, 0, 0, 1, chain(&[0, 1, 2]));
        read(&mut h, 0, 2, 3, chain(&[0, 1]));
        let v = check(&h, &LengthScore);
        assert!(!v.holds);
        assert!(matches!(
            v.violations[0],
            Violation::NonMonotonicRead {
                earlier_score: 2,
                later_score: 1,
                ..
            }
        ));
    }

    #[test]
    fn different_processes_do_not_interact() {
        let mut h = History::new();
        read(&mut h, 0, 0, 1, chain(&[0, 1, 2]));
        read(&mut h, 1, 2, 3, chain(&[0])); // lower score, other process
        assert!(check(&h, &LengthScore).holds);
    }

    #[test]
    fn multiple_violations_reported() {
        let mut h = History::new();
        read(&mut h, 0, 0, 1, chain(&[0, 1, 2]));
        read(&mut h, 0, 2, 3, chain(&[0, 1]));
        read(&mut h, 0, 4, 5, chain(&[0]));
        let v = check(&h, &LengthScore);
        assert_eq!(v.violations.len(), 2);
    }

    #[test]
    fn empty_history_passes() {
        let h = History::new();
        assert!(check(&h, &LengthScore).holds);
    }
}
