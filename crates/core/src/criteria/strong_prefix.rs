//! Strong Prefix (Def. 3.2, third clause).
//!
//! For every couple of read responses, one returned blockchain is a prefix
//! of the other: `(bc' ⊑ bc) ∨ (bc ⊑ bc')`. This is the property that makes
//! a BlockTree behave like an eventually-consistent append-only *queue*
//! ("the prefix never diverges"), and the property Thm. 4.8 shows to require
//! the strongest oracle.
//!
//! Two checkers are provided:
//!
//! * [`check_naive`] — the literal O(n²·len) pairwise test, enumerating
//!   *all* violating pairs (useful for small adversarial histories and as
//!   the reference implementation);
//! * [`check`] — O(n log n + n·len): sort chains by length; prefix-
//!   comparability is a total order on comparable sets, so the whole
//!   history is pairwise-comparable iff every *adjacent* sorted pair is
//!   (equal-length chains must be equal). Ablation A3 benches the two.

use crate::criteria::{Verdict, Violation};
use crate::history::History;
use crate::score::LengthScore;

pub const PROPERTY: &str = "strong-prefix";

/// Reference O(n²) checker; reports every violating pair.
pub fn check_naive(history: &History) -> Verdict {
    let views = history.read_views(&LengthScore);
    let mut violations = Vec::new();
    for i in 0..views.len() {
        for j in (i + 1)..views.len() {
            if !views[i].chain.comparable(&views[j].chain) {
                violations.push(Violation::IncomparableReads {
                    a: views[i].op.min(views[j].op),
                    b: views[i].op.max(views[j].op),
                });
            }
        }
    }
    Verdict::from_violations(PROPERTY, violations)
}

/// Sorted checker: same verdict as [`check_naive`], with a single witness
/// pair on failure.
///
/// Soundness: sort views by chain length `|c1| ≤ … ≤ |cn|`. If every
/// adjacent pair is comparable then `ci ⊑ ci+1` (for equal lengths,
/// comparability forces equality), and `⊑` chains transitively, so *all*
/// pairs are comparable. Conversely a violating adjacent pair is already a
/// counterexample; if a non-adjacent pair were incomparable while all
/// adjacent pairs chain, transitivity would be contradicted.
pub fn check(history: &History) -> Verdict {
    let mut views = history.read_views(&LengthScore);
    views.sort_by_key(|v| (v.chain.len(), v.op));
    for w in views.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        if !a.chain.is_prefix_of(&b.chain) {
            return Verdict::from_violations(
                PROPERTY,
                vec![Violation::IncomparableReads {
                    a: a.op.min(b.op),
                    b: a.op.max(b.op),
                }],
            );
        }
    }
    Verdict::passing(PROPERTY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Blockchain;
    use crate::history::{Invocation, Response};
    use crate::ids::{BlockId, ProcessId, Time};

    fn chain(ids: &[u32]) -> Blockchain {
        Blockchain::from_ids(ids.iter().map(|&i| BlockId(i)).collect())
    }

    fn read(h: &mut History, p: u32, t0: u64, c: Blockchain) {
        h.push_complete(
            ProcessId(p),
            Invocation::Read,
            Time(t0),
            Response::Chain(c),
            Time(t0 + 1),
        );
    }

    #[test]
    fn totally_ordered_chains_pass() {
        let mut h = History::new();
        read(&mut h, 0, 0, chain(&[0]));
        read(&mut h, 1, 2, chain(&[0, 1]));
        read(&mut h, 0, 4, chain(&[0, 1, 2]));
        read(&mut h, 1, 6, chain(&[0, 1]));
        assert!(check(&h).holds);
        assert!(check_naive(&h).holds);
    }

    #[test]
    fn diverging_chains_fail_both_checkers() {
        let mut h = History::new();
        read(&mut h, 0, 0, chain(&[0, 1]));
        read(&mut h, 1, 2, chain(&[0, 2]));
        let fast = check(&h);
        let slow = check_naive(&h);
        assert!(!fast.holds);
        assert!(!slow.holds);
        assert_eq!(slow.violations.len(), 1);
    }

    #[test]
    fn equal_length_distinct_chains_fail() {
        let mut h = History::new();
        read(&mut h, 0, 0, chain(&[0, 1, 2]));
        read(&mut h, 1, 2, chain(&[0, 1, 3]));
        assert!(!check(&h).holds);
    }

    #[test]
    fn figure_2_history_satisfies_strong_prefix() {
        // Fig. 2: process i reads b0·1·2, b0·1·2·3, b0·1·2·3·4;
        //         process j reads b0·1, b0·1·2, b0·1·2·3·4.
        let mut h = History::new();
        read(&mut h, 0, 0, chain(&[0, 1, 2]));
        read(&mut h, 0, 10, chain(&[0, 1, 2, 3]));
        read(&mut h, 0, 20, chain(&[0, 1, 2, 3, 4]));
        read(&mut h, 1, 1, chain(&[0, 1]));
        read(&mut h, 1, 11, chain(&[0, 1, 2]));
        read(&mut h, 1, 21, chain(&[0, 1, 2, 3, 4]));
        assert!(check(&h).holds);
        assert!(check_naive(&h).holds);
    }

    #[test]
    fn figure_3_history_violates_strong_prefix() {
        // Fig. 3: i's first read returns b0⌢2⌢4 while j's first read
        // returns b0⌢1 — neither prefixes the other.
        let mut h = History::new();
        read(&mut h, 0, 0, chain(&[0, 2, 4]));
        read(&mut h, 1, 1, chain(&[0, 1]));
        let v = check(&h);
        assert!(!v.holds);
    }

    #[test]
    fn naive_counts_all_pairs() {
        let mut h = History::new();
        read(&mut h, 0, 0, chain(&[0, 1]));
        read(&mut h, 1, 2, chain(&[0, 2]));
        read(&mut h, 2, 4, chain(&[0, 3]));
        let v = check_naive(&h);
        assert_eq!(v.violations.len(), 3, "all three pairs incomparable");
    }

    #[test]
    fn checkers_agree_on_random_histories() {
        use crate::ids::splitmix64_at;
        // Deterministic pseudo-random tree reads; both checkers must agree.
        for seed in 0..50u64 {
            let mut h = History::new();
            for i in 0..12u64 {
                let r = splitmix64_at(seed, i);
                // Build chains over a tiny fork space.
                let c = match r % 4 {
                    0 => chain(&[0]),
                    1 => chain(&[0, 1]),
                    2 => chain(&[0, 1, 2]),
                    _ => chain(&[0, 1, 3]),
                };
                read(&mut h, (r % 3) as u32, i * 10, c);
            }
            assert_eq!(
                check(&h).holds,
                check_naive(&h).holds,
                "checkers disagree on seed {seed}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_pass() {
        let mut h = History::new();
        assert!(check(&h).holds);
        read(&mut h, 0, 0, chain(&[0, 1]));
        assert!(check(&h).holds);
    }
}
