//! Checker for the sharded-selection contract behind the two-stage drain.
//!
//! The concurrent pipeline scores a drained batch by partitioning its
//! inserts by subtree, scoring each shard to an
//! [`AuxPartial`](crate::selection::AuxPartial), and folding the shards
//! with the associative `merge` before applying the result once. That is
//! only sound if, for the rule in question,
//!
//! 1. the merged partial is invariant under re-grouping and re-ordering of
//!    the shards (associativity + commutativity of `merge`), and
//! 2. applying the merged partial lands on the same tip as the serial
//!    per-insert `on_insert` fold, which is itself differential-tested
//!    against the full-scan `select_tip` oracle.
//!
//! Unlike its siblings this module checks an *implementation* refinement
//! rather than a history-level criterion, but it follows the same
//! philosophy: a falsifiable property, a checker that reports instead of
//! panicking, and a differential suite that drives it with randomized
//! fork-heavy workloads (`tests/selection_differential.rs`,
//! `tests/proptests.rs`).

use crate::ids::BlockId;
use crate::selection::{batch_score, AuxPartial, SelectionAux, SelectionFn, TipUpdate};
use crate::store::{BlockView, TreeMembership};

/// Why a sharded-scoring check failed, with enough context to replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionViolation {
    /// Two merge orders of the same shard set produced different partials.
    MergeOrderSensitive {
        forward: AuxPartial,
        reversed: AuxPartial,
    },
    /// The batched apply landed on a different tip than the serial
    /// `on_insert` fold over the same inserts.
    TipMismatch { batched: BlockId, serial: BlockId },
    /// The serial fold itself disagreed with the full-scan oracle — the
    /// baseline is broken, so the batched comparison is meaningless.
    OracleMismatch { serial: BlockId, oracle: BlockId },
}

/// Checks the sharded-scoring contract for one batch of inserts.
///
/// `inserts` must be members of `tree`, parent-closed, and all inserted
/// after the selection last reported `tip_before`. Both the batched and
/// the serial path run on clones of `aux`, so the caller's scratch is
/// untouched. Returns every violation found (empty = the contract holds).
pub fn check_partition_merge(
    rule: &dyn SelectionFn,
    store: &dyn BlockView,
    tree: &TreeMembership,
    aux: &SelectionAux,
    inserts: &[BlockId],
    tip_before: BlockId,
) -> Vec<PartitionViolation> {
    let mut violations = Vec::new();
    if inserts.is_empty() {
        return violations;
    }

    // (1) Merge must not care about shard order.
    let shards: Vec<AuxPartial> = crate::selection::partition_by_subtree(store, inserts)
        .into_iter()
        .map(|shard| rule.score_inserts(store, &shard))
        .collect();
    let forward = shards
        .iter()
        .cloned()
        .fold(AuxPartial::empty(), |acc, p| acc.merge(store, p));
    let reversed = shards
        .iter()
        .rev()
        .cloned()
        .fold(AuxPartial::empty(), |acc, p| acc.merge(store, p));
    if forward != reversed {
        violations.push(PartitionViolation::MergeOrderSensitive { forward, reversed });
    }

    // (2) Batched apply ≡ serial fold ≡ oracle.
    let mut batched_aux = aux.clone();
    let batched = batch_score(rule, store, tree, &mut batched_aux, inserts, tip_before);

    let oracle = rule.select_tip(store, tree);

    // The serial per-insert fold is only replayable here for rules whose
    // `on_insert` never consults the membership (the chain rules), or for
    // single-insert batches: this checker holds the *final* tree, and a
    // weight-walking rule (GHOST) folded against it would descend into
    // later batch members that serially would not exist yet (and a cold
    // aux would double-count the batch on its first rebuild). The sound
    // interleaved-membership serial differential lives in
    // `tests/selection_differential.rs`; here the oracle stands in.
    let uses_weights = shards.iter().any(|p| !p.weights().is_empty());
    let serial = if !uses_weights || inserts.len() == 1 {
        let mut serial_aux = aux.clone();
        let mut serial = tip_before;
        for &id in inserts {
            match rule.on_insert(store, tree, &mut serial_aux, id, serial) {
                TipUpdate::Unchanged => {}
                TipUpdate::Extended(t) | TipUpdate::Switched(t) => serial = t,
            }
        }
        if serial != oracle {
            violations.push(PartitionViolation::OracleMismatch { serial, oracle });
        }
        serial
    } else {
        oracle
    };
    if batched != serial {
        violations.push(PartitionViolation::TipMismatch { batched, serial });
    }
    violations
}
