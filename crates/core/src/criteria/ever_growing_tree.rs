//! Ever-Growing Tree (Def. 3.2, fourth clause).
//!
//! For each read `r` returning score `s`, the set of reads invoked after
//! `ersp(r)` whose chains do not out-score `s` must be *finite*:
//!
//! `|{einv(r') ∈ E | ersp(r) ր einv(r'), score(ersp(r'):bc') ≤ s}| < ∞`.
//!
//! Under [`LivenessMode::ConvergenceCut`]`(c)` the finite set must be
//! contained in the window `(ersp(r), c]`: every read invoked strictly
//! after `c` must score **more** than every read that responded at or
//! before `c`. The trace must actually contain post-cut reads (otherwise
//! convergence is unwitnessed and the checker reports
//! [`Violation::NoReadsAfterCut`]).

use crate::criteria::{LivenessMode, Verdict, Violation};
use crate::history::History;
use crate::score::ScoreFn;

pub const PROPERTY: &str = "ever-growing-tree";

/// Checks Ever-Growing Tree under the given liveness semantics.
pub fn check(history: &History, score: &dyn ScoreFn, mode: LivenessMode) -> Verdict {
    let cut = match mode {
        LivenessMode::Vacuous => return Verdict::passing(PROPERTY),
        LivenessMode::ConvergenceCut(c) => c,
    };
    let views = history.read_views(score);
    let pre: Vec<_> = views.iter().filter(|v| v.responded_at <= cut).collect();
    let post: Vec<_> = views.iter().filter(|v| v.invoked_at > cut).collect();

    if pre.is_empty() {
        // No reference reads: nothing to grow past.
        return Verdict::passing(PROPERTY);
    }
    if post.is_empty() {
        return Verdict::from_violations(PROPERTY, vec![Violation::NoReadsAfterCut { cut }]);
    }

    // It suffices to compare against the highest-scoring pre-cut read.
    let reference = pre
        .iter()
        .max_by_key(|v| (v.score, v.op))
        .expect("non-empty");
    let mut violations = Vec::new();
    for late in &post {
        if late.score <= reference.score {
            violations.push(Violation::StagnantRead {
                reference: reference.op,
                reference_score: reference.score,
                late: late.op,
                late_score: late.score,
            });
        }
    }
    Verdict::from_violations(PROPERTY, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Blockchain;
    use crate::history::{Invocation, Response};
    use crate::ids::{BlockId, ProcessId, Time};
    use crate::score::LengthScore;

    fn chain(len: u32) -> Blockchain {
        Blockchain::from_ids((0..=len).map(BlockId).collect())
    }

    fn read(h: &mut History, p: u32, t0: u64, t1: u64, c: Blockchain) {
        h.push_complete(
            ProcessId(p),
            Invocation::Read,
            Time(t0),
            Response::Chain(c),
            Time(t1),
        );
    }

    #[test]
    fn vacuous_mode_always_passes() {
        let mut h = History::new();
        read(&mut h, 0, 0, 1, chain(5));
        read(&mut h, 0, 2, 3, chain(0));
        assert!(check(&h, &LengthScore, LivenessMode::Vacuous).holds);
    }

    #[test]
    fn growing_tail_passes() {
        let mut h = History::new();
        read(&mut h, 0, 0, 1, chain(2));
        read(&mut h, 1, 2, 3, chain(3));
        // Post-cut reads out-score every pre-cut read.
        read(&mut h, 0, 11, 12, chain(4));
        read(&mut h, 1, 13, 14, chain(5));
        let v = check(&h, &LengthScore, LivenessMode::ConvergenceCut(Time(10)));
        assert!(v.holds, "{v}");
    }

    #[test]
    fn stagnant_tail_fails() {
        let mut h = History::new();
        read(&mut h, 0, 0, 1, chain(3));
        read(&mut h, 0, 11, 12, chain(3)); // equal score after cut: ≤ s
        let v = check(&h, &LengthScore, LivenessMode::ConvergenceCut(Time(10)));
        assert!(!v.holds);
        assert!(matches!(
            v.violations[0],
            Violation::StagnantRead {
                reference_score: 3,
                late_score: 3,
                ..
            }
        ));
    }

    #[test]
    fn missing_post_cut_reads_reported() {
        let mut h = History::new();
        read(&mut h, 0, 0, 1, chain(3));
        let v = check(&h, &LengthScore, LivenessMode::ConvergenceCut(Time(10)));
        assert!(!v.holds);
        assert_eq!(
            v.violations,
            vec![Violation::NoReadsAfterCut { cut: Time(10) }]
        );
    }

    #[test]
    fn no_pre_cut_reads_passes() {
        let mut h = History::new();
        read(&mut h, 0, 11, 12, chain(1));
        assert!(check(&h, &LengthScore, LivenessMode::ConvergenceCut(Time(10))).holds);
    }

    #[test]
    fn straddling_reads_ignored() {
        // A read invoked before but responding after the cut is neither a
        // reference nor a post-cut read.
        let mut h = History::new();
        read(&mut h, 0, 0, 1, chain(2));
        read(&mut h, 1, 5, 15, chain(1)); // straddles the cut; low score OK
        read(&mut h, 0, 11, 12, chain(3));
        let v = check(&h, &LengthScore, LivenessMode::ConvergenceCut(Time(10)));
        assert!(v.holds, "{v}");
    }

    #[test]
    fn figure_2_sets_partition_as_in_paper() {
        // The Fig. 2 reference read returns score 3; later reads score 4, 5…
        // With the cut placed after the ≤3 reads, the criterion holds.
        let mut h = History::new();
        read(&mut h, 0, 0, 1, chain(3)); // the boxed read() l=3
        read(&mut h, 1, 2, 3, chain(3)); // finite set with score ≤ l
        read(&mut h, 0, 20, 21, chain(4)); // infinite set with score > l
        read(&mut h, 1, 22, 23, chain(5));
        let v = check(&h, &LengthScore, LivenessMode::ConvergenceCut(Time(10)));
        assert!(v.holds, "{v}");
    }
}
