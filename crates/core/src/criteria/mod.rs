//! Consistency criteria over concurrent histories (§2.4, §3.1.2).
//!
//! A consistency criterion `C : T → P(H)` picks the admissible concurrent
//! histories of an ADT (Def. 2.5). The paper defines two for the BT-ADT,
//! each a conjunction of properties:
//!
//! * **BT Strong Consistency** (Def. 3.2) = Block Validity ∧ Local Monotonic
//!   Read ∧ Strong Prefix ∧ Ever-Growing Tree;
//! * **BT Eventual Consistency** (Def. 3.4) = Block Validity ∧ Local
//!   Monotonic Read ∧ Ever-Growing Tree ∧ Eventual Prefix.
//!
//! Each property lives in its own submodule and returns a structured
//! [`Verdict`] carrying counterexample [`Violation`]s — checkers never
//! panic on bad histories, they report.
//!
//! # Liveness on finite traces
//!
//! Ever-Growing Tree and Eventual Prefix constrain *infinite* histories
//! ("the set … is finite"); any finite trace satisfies them literally. To
//! make them falsifiable, checkers take a [`LivenessMode`]:
//!
//! * [`LivenessMode::Vacuous`] — the literal semantics: finite sets are
//!   finite, the property holds.
//! * [`LivenessMode::ConvergenceCut`]`(c)` — the bounded-horizon semantics:
//!   the trace must *witness* convergence by global time `c`. Every read
//!   responding at or before `c` plays the reference role `r`; reads (or
//!   read pairs) strictly after `c` must score higher (EGT) or share the
//!   required prefix (EP). The finitely-many-bad-reads of the definition
//!   are exactly those landing in the interval `(r, c]`.
//!
//! Experiments use `ConvergenceCut` at a quiescence point (e.g. after the
//! last message settles); EXPERIMENTS.md states the cut for each run.

pub mod block_validity;
pub mod conjunctions;
pub mod eventual_prefix;
pub mod ever_growing_tree;
pub mod local_monotonic_read;
pub mod score_partition;
pub mod strong_prefix;

pub use conjunctions::{
    check_eventual_consistency, check_strong_consistency, classify, ConsistencyClass,
    ConsistencyParams, ConsistencyReport, CriterionKind,
};

use crate::history::OpId;
use crate::ids::{BlockId, ProcessId, Time};
use std::fmt;

/// How to evaluate liveness clauses on a finite trace (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LivenessMode {
    /// Literal infinite-history semantics: finite traces pass.
    Vacuous,
    /// Bounded-horizon semantics: convergence must be witnessed after the
    /// given global-clock cut.
    ConvergenceCut(Time),
}

/// Outcome of checking one property on one history.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// Property name (stable, used in reports).
    pub property: &'static str,
    /// Did the property hold?
    pub holds: bool,
    /// Counterexample witnesses (empty iff `holds`).
    pub violations: Vec<Violation>,
}

impl Verdict {
    pub fn passing(property: &'static str) -> Self {
        Verdict {
            property,
            holds: true,
            violations: Vec::new(),
        }
    }

    pub fn from_violations(property: &'static str, violations: Vec<Violation>) -> Self {
        Verdict {
            property,
            holds: violations.is_empty(),
            violations,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.holds {
            write!(f, "{}: HOLDS", self.property)
        } else {
            writeln!(
                f,
                "{}: VIOLATED ({} witness{})",
                self.property,
                self.violations.len(),
                if self.violations.len() == 1 { "" } else { "es" }
            )?;
            for v in self.violations.iter().take(5) {
                writeln!(f, "  - {v}")?;
            }
            if self.violations.len() > 5 {
                writeln!(f, "  … and {} more", self.violations.len() - 5)?;
            }
            Ok(())
        }
    }
}

/// A concrete counterexample witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A read returned a block that fails the validity predicate `P`.
    InvalidBlock { read: OpId, block: BlockId },
    /// A read returned a block with no prior `append` invocation.
    UnappendedBlock { read: OpId, block: BlockId },
    /// Scores decreased across two reads of one process.
    NonMonotonicRead {
        process: ProcessId,
        earlier: OpId,
        later: OpId,
        earlier_score: u64,
        later_score: u64,
    },
    /// Two reads returned chains neither of which prefixes the other.
    IncomparableReads { a: OpId, b: OpId },
    /// A read after the convergence cut failed to out-score a reference
    /// read from before the cut (Ever-Growing Tree).
    StagnantRead {
        reference: OpId,
        reference_score: u64,
        late: OpId,
        late_score: u64,
    },
    /// Two post-cut reads share too short a common prefix (Eventual
    /// Prefix): `mcps < required`.
    DivergentPair {
        reference: OpId,
        required: u64,
        a: OpId,
        b: OpId,
        mcps: u64,
    },
    /// The trace offers no reads after the convergence cut, so convergence
    /// cannot be witnessed.
    NoReadsAfterCut { cut: Time },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::InvalidBlock { read, block } => {
                write!(f, "{read:?} returned invalid block {block}")
            }
            Violation::UnappendedBlock { read, block } => {
                write!(f, "{read:?} returned {block} never submitted via append()")
            }
            Violation::NonMonotonicRead {
                process,
                earlier,
                later,
                earlier_score,
                later_score,
            } => write!(
                f,
                "{process} read score {later_score} ({later:?}) after {earlier_score} ({earlier:?})"
            ),
            Violation::IncomparableReads { a, b } => {
                write!(f, "reads {a:?} and {b:?} returned incomparable chains")
            }
            Violation::StagnantRead {
                reference,
                reference_score,
                late,
                late_score,
            } => write!(
                f,
                "post-cut {late:?} scored {late_score} ≤ {reference_score} of {reference:?}"
            ),
            Violation::DivergentPair {
                reference,
                required,
                a,
                b,
                mcps,
            } => write!(
                f,
                "post-cut {a:?},{b:?} share prefix score {mcps} < {required} required by {reference:?}"
            ),
            Violation::NoReadsAfterCut { cut } => {
                write!(f, "no reads after convergence cut {cut}")
            }
        }
    }
}
