//! Eventual Prefix (Def. 3.3).
//!
//! For each read `r` with score `s`, among the reads responding after
//! `ersp(r)` (the set `E_r`), the pairs whose chains share a maximal common
//! prefix of score `< s` must be finite:
//!
//! `|{(ersp(rh), ersp(rk)) ∈ E_r² | h ≠ k, mcps(bch, bck) < s}| < ∞`.
//!
//! "Two or more concurrent blockchains can co-exist in a finite interval of
//! time, but eventually all the participants adopt a same branch for each
//! cut of the history."
//!
//! Under [`LivenessMode::ConvergenceCut`]`(c)`: every pair of reads
//! responding strictly after `c` must share a common prefix of score at
//! least the maximum score of any read that responded at or before `c`.
//! (Checking against the max pre-cut score covers every reference read at
//! once, since `mcps ≥ s_max ⟹ mcps ≥ s` for all pre-cut `s ≤ s_max`.)

use crate::criteria::{LivenessMode, Verdict, Violation};
use crate::history::History;
use crate::score::ScoreFn;

pub const PROPERTY: &str = "eventual-prefix";

/// Checks Eventual Prefix under the given liveness semantics.
pub fn check(history: &History, score: &dyn ScoreFn, mode: LivenessMode) -> Verdict {
    let cut = match mode {
        LivenessMode::Vacuous => return Verdict::passing(PROPERTY),
        LivenessMode::ConvergenceCut(c) => c,
    };
    let views = history.read_views(score);
    let pre: Vec<_> = views.iter().filter(|v| v.responded_at <= cut).collect();
    let post: Vec<_> = views.iter().filter(|v| v.responded_at > cut).collect();

    if pre.is_empty() {
        return Verdict::passing(PROPERTY);
    }
    if post.is_empty() {
        return Verdict::from_violations(PROPERTY, vec![Violation::NoReadsAfterCut { cut }]);
    }

    let reference = pre
        .iter()
        .max_by_key(|v| (v.score, v.op))
        .expect("non-empty");
    let required = reference.score;

    let mut violations = Vec::new();
    for i in 0..post.len() {
        for j in (i + 1)..post.len() {
            let (a, b) = (post[i], post[j]);
            let mcps = a.chain.mcps(&b.chain, score);
            if mcps < required {
                violations.push(Violation::DivergentPair {
                    reference: reference.op,
                    required,
                    a: a.op.min(b.op),
                    b: a.op.max(b.op),
                    mcps,
                });
            }
        }
    }
    Verdict::from_violations(PROPERTY, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Blockchain;
    use crate::history::{Invocation, Response};
    use crate::ids::{BlockId, ProcessId, Time};
    use crate::score::LengthScore;

    fn chain(ids: &[u32]) -> Blockchain {
        Blockchain::from_ids(ids.iter().map(|&i| BlockId(i)).collect())
    }

    fn read(h: &mut History, p: u32, t0: u64, t1: u64, c: Blockchain) {
        h.push_complete(
            ProcessId(p),
            Invocation::Read,
            Time(t0),
            Response::Chain(c),
            Time(t1),
        );
    }

    #[test]
    fn vacuous_mode_passes() {
        let mut h = History::new();
        read(&mut h, 0, 0, 1, chain(&[0, 1]));
        read(&mut h, 1, 2, 3, chain(&[0, 2]));
        assert!(check(&h, &LengthScore, LivenessMode::Vacuous).holds);
    }

    /// The paper's Fig. 3 history: forks co-exist early, but post-cut reads
    /// agree on a prefix at least as long as the reference score.
    #[test]
    fn figure_3_history_satisfies_eventual_prefix() {
        let mut h = History::new();
        // Process i (=0): b0·2·4 (score 2), then b0·1·3 (score 2... the
        // paper's drawing reads l=3 first). We transcribe shapes:
        // i reads: [0,2,4] then [0,1,3] — wait, paper: bt_i evolves; first
        // read returns the l=3 chain b0⌢2⌢4? The figure labels the first
        // boxed read at i "read(), l=3" on chain b0·1 / b0·2·4 drawings.
        // We reproduce the *shape*: early divergent reads, late agreeing
        // reads extending a common branch.
        read(&mut h, 0, 0, 1, chain(&[0, 2, 4])); // score 2
        read(&mut h, 1, 0, 2, chain(&[0, 1])); // score 1 — diverges from i
        read(&mut h, 1, 3, 4, chain(&[0, 1, 3])); // still the losing branch
                                                  // after the cut every process adopted branch 1·3·5:
        read(&mut h, 0, 11, 12, chain(&[0, 1, 3, 5]));
        read(&mut h, 1, 13, 14, chain(&[0, 1, 3, 5, 7]));
        // reference max pre-cut score = 2; post-cut mcps = 3 ≥ 2. Holds.
        let v = check(&h, &LengthScore, LivenessMode::ConvergenceCut(Time(10)));
        assert!(v.holds, "{v}");
    }

    /// The paper's Fig. 4 history: branches never converge.
    #[test]
    fn figure_4_history_violates_eventual_prefix() {
        let mut h = History::new();
        read(&mut h, 0, 0, 1, chain(&[0, 2, 4])); // i sticks to even branch
        read(&mut h, 1, 0, 2, chain(&[0, 1, 3])); // j sticks to odd branch
        read(&mut h, 0, 11, 12, chain(&[0, 2, 4, 6]));
        read(&mut h, 1, 13, 14, chain(&[0, 1, 3, 5]));
        let v = check(&h, &LengthScore, LivenessMode::ConvergenceCut(Time(10)));
        assert!(!v.holds);
        assert!(matches!(
            v.violations[0],
            Violation::DivergentPair { mcps: 0, .. }
        ));
    }

    #[test]
    fn post_cut_divergence_below_reference_detected() {
        let mut h = History::new();
        read(&mut h, 0, 0, 1, chain(&[0, 1, 2, 3])); // reference score 3
        read(&mut h, 0, 11, 12, chain(&[0, 1, 2, 3, 4]));
        read(&mut h, 1, 13, 14, chain(&[0, 1, 2, 5])); // mcps 2 < 3
        let v = check(&h, &LengthScore, LivenessMode::ConvergenceCut(Time(10)));
        assert!(!v.holds);
        assert!(matches!(
            v.violations[0],
            Violation::DivergentPair {
                required: 3,
                mcps: 2,
                ..
            }
        ));
    }

    #[test]
    fn divergence_above_reference_is_tolerated() {
        // Post-cut chains may still fork beyond the required prefix score.
        let mut h = History::new();
        read(&mut h, 0, 0, 1, chain(&[0, 1])); // reference score 1
        read(&mut h, 0, 11, 12, chain(&[0, 1, 2, 3]));
        read(&mut h, 1, 13, 14, chain(&[0, 1, 2, 4])); // mcps 2 ≥ 1
        let v = check(&h, &LengthScore, LivenessMode::ConvergenceCut(Time(10)));
        assert!(v.holds, "{v}");
    }

    #[test]
    fn missing_post_cut_reads_reported() {
        let mut h = History::new();
        read(&mut h, 0, 0, 1, chain(&[0, 1]));
        let v = check(&h, &LengthScore, LivenessMode::ConvergenceCut(Time(10)));
        assert!(!v.holds);
        assert_eq!(
            v.violations,
            vec![Violation::NoReadsAfterCut { cut: Time(10) }]
        );
    }

    #[test]
    fn single_post_cut_read_passes_pairwise_check() {
        let mut h = History::new();
        read(&mut h, 0, 0, 1, chain(&[0, 1]));
        read(&mut h, 0, 11, 12, chain(&[0, 2]));
        // One post-cut read ⇒ no pairs ⇒ holds (pairs quantification).
        let v = check(&h, &LengthScore, LivenessMode::ConvergenceCut(Time(10)));
        assert!(v.holds);
    }
}
